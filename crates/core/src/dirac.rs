//! The Wilson Dirac operator — "the most compute-intensive task" of LQCD
//! (paper, Section II-A).
//!
//! The hopping term, Eq. (1) of the paper:
//!
//! ```text
//! ψ'_x = Dh ψ = Σ_µ { U_{x,µ} (1+γµ) ψ_{x+µ̂}  +  U†_{x−µ̂,µ} (1−γµ) ψ_{x−µ̂} }
//! ```
//!
//! Each of the eight legs spin-projects the neighbour spinor to a half
//! spinor (two spin components), multiplies it by the SU(3) link — forward
//! legs use `U` at the site, backward legs the adjoint of `U` at the
//! neighbour, via the conjugated-FCMLA idiom — and reconstructs into the
//! accumulator. Every complex multiply goes through the engine, so backend
//! choice (FCMLA / real-arithmetic / generic) switches the innermost
//! instruction mix of the entire operator.
//!
//! Site kernels are independent, so outer sites run under Rayon — the
//! thread-level parallelization Grid gets from OpenMP (paper, Section II-A).

use crate::codec::{LINK_SCALARS_FULL, LINK_SCALARS_TWO_ROW};
use crate::complex::Complex;
use crate::field::{spinor_comp, FermionBlock, FermionKind, Field, GaugeKind, HalfFermionKind};
use crate::layout::{Grid, NCOLOR, NSPIN};
use crate::reduce;
use crate::simd::{CVec, SimdEngine};
use crate::stencil::{dir_index, Stencil, StencilEntry};
use crate::tensor::gamma::{proj_table, Coeff};
use crate::tensor::su3::{mat_dag_vec, mat_vec, reconstruct_row2};
use rayon::prelude::*;
use std::sync::Arc;
use sve::SveFloat;

/// Complex components per spinor (`NSPIN × NCOLOR`).
const NCOMP: usize = NSPIN * NCOLOR;

/// Real floating-point operations per lattice site of one hopping-term
/// application (the standard Wilson dslash count the paper benchmarks
/// against).
pub const HOPPING_FLOPS_PER_SITE: u64 = 1320;

/// Real numbers read per site by the hopping term: 8 neighbour spinors
/// (8 × 24) plus 8 links (8 × 18).
pub const HOPPING_READS_PER_SITE: u64 = 8 * 24 + 8 * 18;

/// Real numbers written per site by the hopping term: one output spinor.
pub const HOPPING_WRITES_PER_SITE: u64 = 24;

/// Extra flops per site when the Wilson mass term `(m+4)ψ − ½(·)` is fused
/// into the hopping store loop: one real scale (24) plus one real axpy
/// (2 × 24) on the output spinor.
pub const FUSED_MASS_AXPY_FLOPS_PER_SITE: u64 = 72;

/// Extra flops per site for the fused inner-product accumulation: one
/// conjugated complex FMA (8 flops) per complex component.
pub const FUSED_DOT_FLOPS_PER_SITE: u64 = 96;

/// Apply a projector coefficient to a SIMD word.
#[inline]
pub(crate) fn apply_coeff<E: SveFloat>(eng: &SimdEngine<E>, coeff: Coeff, v: CVec) -> CVec {
    match coeff {
        Coeff::One => v,
        Coeff::MinusOne => eng.neg(v),
        Coeff::I => eng.times_i(v),
        Coeff::MinusI => eng.times_minus_i(v),
    }
}

/// The Wilson fermion operator `M = (m + 4)·1 − ½ Dh` on a fixed gauge
/// background.
pub struct WilsonDirac<E: SveFloat = f64> {
    grid: Arc<Grid<E>>,
    u: Field<GaugeKind, E>,
    stencil: Stencil<E>,
    /// The bare quark mass `m`.
    pub mass: f64,
    /// Two-row compressed link mode: read only the first two rows of every
    /// link and reconstruct the third as the conjugate cross product.
    two_row: bool,
}

impl<E: SveFloat> WilsonDirac<E> {
    /// Build the operator for gauge configuration `u` and bare mass `mass`.
    pub fn new(u: Field<GaugeKind, E>, mass: f64) -> Self {
        let grid = u.grid().clone();
        let stencil = Stencil::new(grid.clone());
        WilsonDirac {
            grid,
            u,
            stencil,
            mass,
            two_row: false,
        }
    }

    /// Build the operator in **two-row compressed** link mode: the dslash
    /// reads only rows 0 and 1 of each SU(3) link (12 scalars instead of 18)
    /// and reconstructs the third row on the fly as the conjugate cross
    /// product of the first two — the in-memory form of the paper-era
    /// two-row gauge compression, trading `8 × 6` link scalars of memory
    /// traffic per site for `8 × 3` extra complex cross products of compute.
    /// For exactly-unitary links the result matches the full-link operator
    /// to rounding (the third row *is* that cross product).
    pub fn new_two_row(u: Field<GaugeKind, E>, mass: f64) -> Self {
        let mut d = Self::new(u, mass);
        d.two_row = true;
        d
    }

    /// Whether links are read in two-row compressed mode.
    pub fn two_row(&self) -> bool {
        self.two_row
    }

    /// The lattice.
    pub fn grid(&self) -> &Arc<Grid<E>> {
        &self.grid
    }

    /// The gauge configuration.
    pub fn gauge(&self) -> &Field<GaugeKind, E> {
        &self.u
    }

    /// The hopping term `Dh ψ` (paper Eq. (1)).
    pub fn hopping(&self, psi: &Field<FermionKind, E>) -> Field<FermionKind, E> {
        self.hopping_impl(psi, false)
    }

    /// The adjoint hopping term `Dh† ψ` — same color structure with the
    /// projector signs swapped.
    pub fn hopping_dag(&self, psi: &Field<FermionKind, E>) -> Field<FermionKind, E> {
        self.hopping_impl(psi, true)
    }

    /// `M ψ = (m + 4) ψ − ½ Dh ψ`.
    pub fn apply(&self, psi: &Field<FermionKind, E>) -> Field<FermionKind, E> {
        let mut out = Field::<FermionKind, E>::zero(self.grid.clone());
        self.apply_into(psi, &mut out);
        out
    }

    /// `M† ψ = (m + 4) ψ − ½ Dh† ψ`.
    pub fn apply_dag(&self, psi: &Field<FermionKind, E>) -> Field<FermionKind, E> {
        let mut out = Field::<FermionKind, E>::zero(self.grid.clone());
        self.apply_dag_into(psi, &mut out);
        out
    }

    /// The normal operator `M† M ψ` — hermitian positive definite, the
    /// operator Conjugate Gradient inverts.
    pub fn mdag_m(&self, psi: &Field<FermionKind, E>) -> Field<FermionKind, E> {
        let mut tmp = Field::<FermionKind, E>::zero(self.grid.clone());
        let mut out = Field::<FermionKind, E>::zero(self.grid.clone());
        self.mdag_m_into(psi, &mut tmp, &mut out);
        out
    }

    /// `out = Dh ψ` without allocating.
    pub fn hopping_into(&self, psi: &Field<FermionKind, E>, out: &mut Field<FermionKind, E>) {
        self.hopping_fused(psi, out, false, None, None);
    }

    /// `out = Dh† ψ` without allocating.
    pub fn hopping_dag_into(&self, psi: &Field<FermionKind, E>, out: &mut Field<FermionKind, E>) {
        self.hopping_fused(psi, out, true, None, None);
    }

    /// `out = M ψ` in a single fused sweep: the `(m+4)ψ − ½(·)` mass axpy
    /// runs per word inside the hopping store loop, so the spinor never
    /// makes the extra `scale` + `axpy` passes through memory. Bit-identical
    /// to [`Self::apply`] (same engine ops per word, different sweep
    /// structure only).
    pub fn apply_into(&self, psi: &Field<FermionKind, E>, out: &mut Field<FermionKind, E>) {
        self.hopping_fused(psi, out, false, Some(self.mass + 4.0), None);
    }

    /// `out = M† ψ` in a single fused sweep.
    pub fn apply_dag_into(&self, psi: &Field<FermionKind, E>, out: &mut Field<FermionKind, E>) {
        self.hopping_fused(psi, out, true, Some(self.mass + 4.0), None);
    }

    /// `out = M† ψ` fused with the reduction `Re ⟨dot_with, out⟩`, which
    /// accumulates inside the same store loop using the deterministic chunk
    /// tree of [`crate::reduce`] — bit-identical to calling
    /// `dot_with.inner(&out).re` afterwards, without the extra sweep.
    pub fn apply_dag_into_dot(
        &self,
        psi: &Field<FermionKind, E>,
        out: &mut Field<FermionKind, E>,
        dot_with: &Field<FermionKind, E>,
    ) -> f64 {
        self.hopping_fused(psi, out, true, Some(self.mass + 4.0), Some(dot_with))
            .re
    }

    /// `out = M† M ψ` using caller-provided storage (`tmp` holds `M ψ`).
    pub fn mdag_m_into(
        &self,
        psi: &Field<FermionKind, E>,
        tmp: &mut Field<FermionKind, E>,
        out: &mut Field<FermionKind, E>,
    ) {
        self.apply_into(psi, tmp);
        self.apply_dag_into(tmp, out);
    }

    /// `out = M† M ψ` returning `Re ⟨ψ, M†M ψ⟩` fused into the second
    /// sweep — the CG curvature term at zero extra memory traffic.
    pub fn mdag_m_into_dot(
        &self,
        psi: &Field<FermionKind, E>,
        tmp: &mut Field<FermionKind, E>,
        out: &mut Field<FermionKind, E>,
    ) -> f64 {
        self.apply_into(psi, tmp);
        self.apply_dag_into_dot(tmp, out, psi)
    }

    fn hopping_impl(&self, psi: &Field<FermionKind, E>, dagger: bool) -> Field<FermionKind, E> {
        let mut out = Field::<FermionKind, E>::zero(self.grid.clone());
        let _span = qcd_trace::span!(
            if dagger { "dirac.hop_dag" } else { "dirac.hop" },
            self.grid.engine().ctx()
        );
        self.hopping_fused(psi, &mut out, dagger, None, None);
        out
    }

    /// The one parallel sweep behind every hopping/apply variant: per
    /// reduction chunk of [`reduce::CHUNK_SITES`] outer sites, compute the
    /// eight-leg stencil accumulator, optionally fuse the `(m+4)ψ − ½(·)`
    /// mass axpy into the store (`mass_axpy = Some(m+4)`), and optionally
    /// accumulate `⟨dot_with, out⟩` with the deterministic chunk tree.
    ///
    /// The fused mass term performs, per word, the exact op sequence of the
    /// unfused path (`scale(-0.5)` then `axpy(m+4, ψ)`), and the fused dot
    /// accumulates in the word order and chunk grouping of
    /// [`Field::inner`] — both therefore match their unfused counterparts
    /// bit for bit.
    fn hopping_fused(
        &self,
        psi: &Field<FermionKind, E>,
        out: &mut Field<FermionKind, E>,
        dagger: bool,
        mass_axpy: Option<f64>,
        dot_with: Option<&Field<FermionKind, E>>,
    ) -> Complex {
        assert!(
            Arc::ptr_eq(psi.grid(), &self.grid),
            "fermion field lives on a different grid"
        );
        assert!(
            Arc::ptr_eq(out.grid(), &self.grid),
            "output field lives on a different grid"
        );
        let eng = self.grid.engine();
        let sites = self.grid.volume() as u64;
        let esize = std::mem::size_of::<E>() as u64;
        let mut flops = HOPPING_FLOPS_PER_SITE;
        let mut reads = 8 * 24 + 8 * self.link_scalars() as u64;
        if mass_axpy.is_some() {
            flops += FUSED_MASS_AXPY_FLOPS_PER_SITE;
            reads += HOPPING_WRITES_PER_SITE;
        }
        if dot_with.is_some() {
            flops += FUSED_DOT_FLOPS_PER_SITE;
            reads += HOPPING_WRITES_PER_SITE;
        }
        qcd_trace::record_sites(sites);
        qcd_trace::record_flops(sites * flops);
        qcd_trace::record_bytes(
            sites * reads * esize,
            sites * HOPPING_WRITES_PER_SITE * esize,
        );
        let word = eng.word_len();
        let stride = out.site_stride();
        let cs = reduce::CHUNK_SITES * stride;
        let mass_dup = mass_axpy.map(|m| eng.dup_real(m));
        let neg_half = eng.dup_real(-0.5);
        let data = out.data_mut();
        let kernel = |ci: usize, chunk: &mut [E]| -> Complex {
            let mut acc_dot = eng.zero();
            for (k, site) in chunk.chunks_exact_mut(stride).enumerate() {
                let osite = ci * reduce::CHUNK_SITES + k;
                let acc = self.site_hopping(psi, osite, dagger);
                for s in 0..NSPIN {
                    for c in 0..NCOLOR {
                        let comp = spinor_comp(s, c);
                        let mut r = acc[s][c];
                        if let Some(m_dup) = mass_dup {
                            let hs = eng.scale(neg_half, r);
                            let pv = eng.load(psi.word(osite, comp));
                            r = eng.axpy_word(m_dup, pv, hs);
                        }
                        eng.store(&mut site[comp * word..(comp + 1) * word], r);
                        if let Some(d) = dot_with {
                            let dv = eng.load(d.word(osite, comp));
                            acc_dot = eng.madd_conj(acc_dot, dv, r);
                        }
                    }
                }
            }
            if dot_with.is_some() {
                eng.reduce_sum(acc_dot)
            } else {
                Complex::ZERO
            }
        };
        match dot_with {
            None => {
                data.par_chunks_mut(cs).enumerate().for_each(|(ci, chunk)| {
                    kernel(ci, chunk);
                });
                Complex::ZERO
            }
            Some(d) => {
                assert!(
                    Arc::ptr_eq(d.grid(), &self.grid),
                    "dot field lives on a different grid"
                );
                let n = reduce::n_chunks(data.len(), cs);
                if rayon::current_num_threads() <= 1 || n <= 1 {
                    let len = data.len();
                    let mut lf = |ci: usize| {
                        let lo = ci * cs;
                        let hi = (lo + cs).min(len);
                        kernel(ci, &mut data[lo..hi])
                    };
                    reduce::reduce_serial(n, &mut lf, &|a, b| a + b)
                } else {
                    let leaves: Vec<Complex> = data
                        .par_chunks_mut(cs)
                        .enumerate()
                        .map(|(ci, chunk)| kernel(ci, chunk))
                        .collect();
                    reduce::combine_tree(&leaves, &|a, b| a + b)
                }
            }
        }
    }

    /// The neighbour stencil (shared with the distributed operator, which
    /// reuses the same legs and lane permutations for its interior sweep).
    pub(crate) fn stencil(&self) -> &Stencil<E> {
        &self.stencil
    }

    /// All eight legs of the hopping term for one outer site.
    pub(crate) fn site_hopping(
        &self,
        psi: &Field<FermionKind, E>,
        osite: usize,
        dagger: bool,
    ) -> [[CVec; NCOLOR]; NSPIN] {
        let eng = self.grid.engine();
        let mut out = [[eng.zero(); NCOLOR]; NSPIN];
        for mu in 0..4 {
            for forward in [true, false] {
                // Paper convention: (1+γµ) on the forward leg, (1−γµ) on the
                // backward leg; the adjoint operator swaps the signs.
                let plus = forward ^ dagger;
                let dir = dir_index(mu, forward);
                let entry = self.stencil.leg(dir, osite);
                let t = proj_table(mu, plus);

                // Spin-project the neighbour spinor into a half spinor.
                let mut h = [[eng.zero(); NCOLOR]; 2];
                for (k, row) in h.iter_mut().enumerate() {
                    let (src, coeff) = t.proj[k];
                    for (c, out_w) in row.iter_mut().enumerate() {
                        let sk = self.stencil.fetch(psi, spinor_comp(k, c), entry);
                        let ss = self.stencil.fetch(psi, spinor_comp(src, c), entry);
                        *out_w = eng.add(sk, apply_coeff(eng, coeff, ss));
                    }
                }

                // Color-multiply the two half-spinor rows.
                let uh: [[CVec; NCOLOR]; 2] = if forward {
                    let uw = self.load_link_local(osite, mu);
                    [mat_vec(eng, &uw, &h[0]), mat_vec(eng, &uw, &h[1])]
                } else {
                    let uw = self.load_link_leg(entry, mu);
                    [mat_dag_vec(eng, &uw, &h[0]), mat_dag_vec(eng, &uw, &h[1])]
                };

                // Reconstruct the full spinor and accumulate.
                for c in 0..NCOLOR {
                    out[0][c] = eng.add(out[0][c], uh[0][c]);
                    out[1][c] = eng.add(out[1][c], uh[1][c]);
                    for k in 0..2 {
                        let (row, coeff) = t.recon[k];
                        out[2 + k][c] = eng.add(out[2 + k][c], apply_coeff(eng, coeff, uh[row][c]));
                    }
                }
            }
        }
        out
    }

    /// Link scalars actually read per link by the dslash (18 full, 12 in
    /// two-row compressed mode).
    #[inline]
    fn link_scalars(&self) -> usize {
        if self.two_row {
            LINK_SCALARS_TWO_ROW
        } else {
            LINK_SCALARS_FULL
        }
    }

    /// Load `U_µ` at this outer site (forward legs). In two-row mode only
    /// rows 0 and 1 are read; the third is reconstructed in registers.
    #[inline]
    pub(crate) fn load_link_local(&self, osite: usize, mu: usize) -> [[CVec; NCOLOR]; NCOLOR] {
        let eng = self.grid.engine();
        if self.two_row {
            let rows: [[CVec; NCOLOR]; 2] = std::array::from_fn(|r| {
                std::array::from_fn(|c| {
                    eng.load(self.u.word(osite, crate::field::gauge_comp(mu, r, c)))
                })
            });
            [rows[0], rows[1], reconstruct_row2(eng, &rows[0], &rows[1])]
        } else {
            std::array::from_fn(|r| {
                std::array::from_fn(|c| {
                    eng.load(self.u.word(osite, crate::field::gauge_comp(mu, r, c)))
                })
            })
        }
    }

    /// Load `U_µ` at the leg's neighbour site, lane-permuted like the
    /// spinor data (backward legs need `U_{x−µ̂,µ}`).
    #[inline]
    pub(crate) fn load_link_leg(&self, entry: StencilEntry, mu: usize) -> [[CVec; NCOLOR]; NCOLOR] {
        if self.two_row {
            let eng = self.grid.engine();
            let rows: [[CVec; NCOLOR]; 2] = std::array::from_fn(|r| {
                std::array::from_fn(|c| {
                    self.stencil
                        .fetch(&self.u, crate::field::gauge_comp(mu, r, c), entry)
                })
            });
            [rows[0], rows[1], reconstruct_row2(eng, &rows[0], &rows[1])]
        } else {
            std::array::from_fn(|r| {
                std::array::from_fn(|c| {
                    self.stencil
                        .fetch(&self.u, crate::field::gauge_comp(mu, r, c), entry)
                })
            })
        }
    }

    // ---- Multi-RHS batched path -------------------------------------------

    /// `out = Dh ψ` for every RHS in the batch.
    pub fn hopping_block_into(&self, psi: &FermionBlock<E>, out: &mut FermionBlock<E>) {
        self.hopping_block_fused(psi, out, false, None, None);
    }

    /// `out = Dh† ψ` for every RHS in the batch.
    pub fn hopping_dag_block_into(&self, psi: &FermionBlock<E>, out: &mut FermionBlock<E>) {
        self.hopping_block_fused(psi, out, true, None, None);
    }

    /// `out = M ψ` for every RHS in one fused sweep — the batched
    /// [`Self::apply_into`]. RHS `j` of the result is bit-identical to
    /// `apply_into` on RHS `j` alone.
    pub fn apply_block_into(&self, psi: &FermionBlock<E>, out: &mut FermionBlock<E>) {
        self.hopping_block_fused(psi, out, false, Some(self.mass + 4.0), None);
    }

    /// `out = M† ψ` for every RHS in one fused sweep.
    pub fn apply_dag_block_into(&self, psi: &FermionBlock<E>, out: &mut FermionBlock<E>) {
        self.hopping_block_fused(psi, out, true, Some(self.mass + 4.0), None);
    }

    /// `out = M† ψ` fused with the per-RHS reduction
    /// `Re ⟨dot_with_j, out_j⟩` — the batched
    /// [`Self::apply_dag_into_dot`], bit-identical per RHS.
    pub fn apply_dag_block_into_dot(
        &self,
        psi: &FermionBlock<E>,
        out: &mut FermionBlock<E>,
        dot_with: &FermionBlock<E>,
    ) -> Vec<f64> {
        self.hopping_block_fused(psi, out, true, Some(self.mass + 4.0), Some(dot_with))
            .iter()
            .map(|z| z.re)
            .collect()
    }

    /// `out = M† M ψ` for every RHS using caller-provided storage.
    pub fn mdag_m_block_into(
        &self,
        psi: &FermionBlock<E>,
        tmp: &mut FermionBlock<E>,
        out: &mut FermionBlock<E>,
    ) {
        self.apply_block_into(psi, tmp);
        self.apply_dag_block_into(tmp, out);
    }

    /// `out = M† M ψ` returning the per-RHS CG curvature terms
    /// `Re ⟨ψ_j, M†M ψ_j⟩` fused into the second sweep — the batched
    /// [`Self::mdag_m_into_dot`], bit-identical per RHS.
    pub fn mdag_m_block_into_dot(
        &self,
        psi: &FermionBlock<E>,
        tmp: &mut FermionBlock<E>,
        out: &mut FermionBlock<E>,
    ) -> Vec<f64> {
        self.apply_block_into(psi, tmp);
        self.apply_dag_block_into_dot(tmp, out, psi)
    }

    /// The batched twin of [`Self::hopping_fused`]: one parallel sweep over
    /// reduction chunks of [`reduce::CHUNK_SITES`] outer sites, computing
    /// the eight-leg stencil for all `N` right-hand sides per site so each
    /// gauge link, stencil entry, and projector table is loaded once and
    /// amortized over the batch. Per RHS the engine-op sequence — projection,
    /// color multiply, reconstruction, fused mass axpy, fused dot — is
    /// exactly that of the single-RHS kernel, and the per-RHS dot partials
    /// combine through the same fixed chunk tree, so RHS `j` of any result
    /// is bit-identical to running the single-RHS path on RHS `j` alone.
    ///
    /// Opens a `dirac.block` trace region; the recorded bytes credit link
    /// data once per site (not once per RHS), which is the measured
    /// arithmetic-intensity gain of the batched layout.
    fn hopping_block_fused(
        &self,
        psi: &FermionBlock<E>,
        out: &mut FermionBlock<E>,
        dagger: bool,
        mass_axpy: Option<f64>,
        dot_with: Option<&FermionBlock<E>>,
    ) -> Vec<Complex> {
        assert!(
            Arc::ptr_eq(psi.grid(), &self.grid),
            "fermion block lives on a different grid"
        );
        assert!(
            Arc::ptr_eq(out.grid(), &self.grid),
            "output block lives on a different grid"
        );
        assert_eq!(
            psi.nrhs(),
            out.nrhs(),
            "fermion blocks hold different batch sizes"
        );
        let nrhs = psi.nrhs();
        let eng = self.grid.engine();
        let _span = qcd_trace::span!("dirac.block", eng.ctx());
        let sites = self.grid.volume() as u64;
        let esize = std::mem::size_of::<E>() as u64;
        let n64 = nrhs as u64;
        let mut flops = HOPPING_FLOPS_PER_SITE;
        let mut reads_per_rhs = 8 * 24;
        if mass_axpy.is_some() {
            flops += FUSED_MASS_AXPY_FLOPS_PER_SITE;
            reads_per_rhs += HOPPING_WRITES_PER_SITE;
        }
        if dot_with.is_some() {
            flops += FUSED_DOT_FLOPS_PER_SITE;
            reads_per_rhs += HOPPING_WRITES_PER_SITE;
        }
        qcd_trace::record_sites(sites * n64);
        qcd_trace::record_flops(sites * n64 * flops);
        qcd_trace::record_bytes(
            sites * (n64 * reads_per_rhs + 8 * self.link_scalars() as u64) * esize,
            sites * n64 * HOPPING_WRITES_PER_SITE * esize,
        );
        let word = eng.word_len();
        let stride = out.site_stride();
        let cs = reduce::CHUNK_SITES * stride;
        let mass_dup = mass_axpy.map(|m| eng.dup_real(m));
        let neg_half = eng.dup_real(-0.5);
        let data = out.data_mut();
        let kernel = |ci: usize, chunk: &mut [E]| -> Vec<Complex> {
            let mut acc = vec![eng.zero(); nrhs * NCOMP];
            let mut acc_dot = vec![eng.zero(); nrhs];
            for (k, site) in chunk.chunks_exact_mut(stride).enumerate() {
                let osite = ci * reduce::CHUNK_SITES + k;
                self.site_hopping_block(psi, osite, dagger, &mut acc);
                for (rhs, dot) in acc_dot.iter_mut().enumerate() {
                    for s in 0..NSPIN {
                        for c in 0..NCOLOR {
                            let comp = spinor_comp(s, c);
                            let mut r = acc[rhs * NCOMP + comp];
                            if let Some(m_dup) = mass_dup {
                                let hs = eng.scale(neg_half, r);
                                let pv = eng.load(psi.word(osite, rhs, comp));
                                r = eng.axpy_word(m_dup, pv, hs);
                            }
                            let off = (rhs * NCOMP + comp) * word;
                            eng.store(&mut site[off..off + word], r);
                            if let Some(d) = dot_with {
                                let dv = eng.load(d.word(osite, rhs, comp));
                                *dot = eng.madd_conj(*dot, dv, r);
                            }
                        }
                    }
                }
            }
            acc_dot.iter().map(|&a| eng.reduce_sum(a)).collect()
        };
        match dot_with {
            None => {
                data.par_chunks_mut(cs).enumerate().for_each(|(ci, chunk)| {
                    kernel(ci, chunk);
                });
                vec![Complex::ZERO; nrhs]
            }
            Some(d) => {
                assert!(
                    Arc::ptr_eq(d.grid(), &self.grid),
                    "dot block lives on a different grid"
                );
                assert_eq!(d.nrhs(), nrhs, "fermion blocks hold different batch sizes");
                let combine = |a: &Vec<Complex>, b: &Vec<Complex>| -> Vec<Complex> {
                    a.iter().zip(b.iter()).map(|(x, y)| *x + *y).collect()
                };
                let n = reduce::n_chunks(data.len(), cs);
                if rayon::current_num_threads() <= 1 || n <= 1 {
                    let len = data.len();
                    let mut lf = |ci: usize| {
                        let lo = ci * cs;
                        let hi = (lo + cs).min(len);
                        kernel(ci, &mut data[lo..hi])
                    };
                    reduce::reduce_serial(n, &mut lf, &|a, b| combine(&a, &b))
                } else {
                    let leaves: Vec<Vec<Complex>> = data
                        .par_chunks_mut(cs)
                        .enumerate()
                        .map(|(ci, chunk)| kernel(ci, chunk))
                        .collect();
                    reduce::combine_tree_ref(&leaves, &combine)
                }
            }
        }
    }

    /// All eight legs of the hopping term for one outer site, all RHS at
    /// once: stencil entry, projector table, and gauge link are resolved
    /// per *leg* and reused across the batch; only the spinor fetches and
    /// color multiplies run per RHS. `acc[rhs * 12 + spinor_comp(s, c)]`
    /// receives the accumulator for RHS `rhs`.
    fn site_hopping_block(
        &self,
        psi: &FermionBlock<E>,
        osite: usize,
        dagger: bool,
        acc: &mut [CVec],
    ) {
        let eng = self.grid.engine();
        let nrhs = psi.nrhs();
        for v in acc.iter_mut() {
            *v = eng.zero();
        }
        for mu in 0..4 {
            for forward in [true, false] {
                let plus = forward ^ dagger;
                let dir = dir_index(mu, forward);
                let entry = self.stencil.leg(dir, osite);
                let t = proj_table(mu, plus);
                // One link load per leg, amortized over the whole batch.
                let uw = if forward {
                    self.load_link_local(osite, mu)
                } else {
                    self.load_link_leg(entry, mu)
                };
                for rhs in 0..nrhs {
                    let fetch = |comp: usize| {
                        let v = eng.load(psi.word(entry.nbr as usize, rhs, comp));
                        self.stencil.permute(v, entry)
                    };
                    let mut h = [[eng.zero(); NCOLOR]; 2];
                    for (k, row) in h.iter_mut().enumerate() {
                        let (src, coeff) = t.proj[k];
                        for (c, out_w) in row.iter_mut().enumerate() {
                            let sk = fetch(spinor_comp(k, c));
                            let ss = fetch(spinor_comp(src, c));
                            *out_w = eng.add(sk, apply_coeff(eng, coeff, ss));
                        }
                    }
                    let uh: [[CVec; NCOLOR]; 2] = if forward {
                        [mat_vec(eng, &uw, &h[0]), mat_vec(eng, &uw, &h[1])]
                    } else {
                        [mat_dag_vec(eng, &uw, &h[0]), mat_dag_vec(eng, &uw, &h[1])]
                    };
                    let a = &mut acc[rhs * NCOMP..(rhs + 1) * NCOMP];
                    for c in 0..NCOLOR {
                        a[spinor_comp(0, c)] = eng.add(a[spinor_comp(0, c)], uh[0][c]);
                        a[spinor_comp(1, c)] = eng.add(a[spinor_comp(1, c)], uh[1][c]);
                        for k in 0..2 {
                            let (row, coeff) = t.recon[k];
                            a[spinor_comp(2 + k, c)] = eng.add(
                                a[spinor_comp(2 + k, c)],
                                apply_coeff(eng, coeff, uh[row][c]),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Site-local gauge multiply: `out(x) = U_µ(x) ψ(x)` (or `U†_µ(x) ψ(x)`),
/// applied to every spin component. A building block of the
/// cshift-composition form of the hopping term used by the distributed
/// implementation.
pub fn mult_gauge<E: SveFloat>(
    u: &Field<GaugeKind, E>,
    mu: usize,
    psi: &Field<FermionKind, E>,
    dagger: bool,
) -> Field<FermionKind, E> {
    assert!(Arc::ptr_eq(u.grid(), psi.grid()));
    let grid = psi.grid().clone();
    let eng = grid.engine();
    let mut out = Field::<FermionKind, E>::zero(grid.clone());
    for osite in 0..grid.osites() {
        let uw: [[CVec; NCOLOR]; NCOLOR] = std::array::from_fn(|r| {
            std::array::from_fn(|c| eng.load(u.word(osite, crate::field::gauge_comp(mu, r, c))))
        });
        for s in 0..NSPIN {
            let v: [CVec; NCOLOR] =
                std::array::from_fn(|c| eng.load(psi.word(osite, spinor_comp(s, c))));
            let r = if dagger {
                mat_dag_vec(eng, &uw, &v)
            } else {
                mat_vec(eng, &uw, &v)
            };
            for c in 0..NCOLOR {
                eng.store(out.word_mut(osite, spinor_comp(s, c)), r[c]);
            }
        }
    }
    out
}

/// Site-local spin projection + reconstruction: `out(x) = (1 ± γµ) ψ(x)`.
pub fn proj_recon<E: SveFloat>(
    mu: usize,
    plus: bool,
    psi: &Field<FermionKind, E>,
) -> Field<FermionKind, E> {
    let grid = psi.grid().clone();
    let eng = grid.engine();
    let t = proj_table(mu, plus);
    let mut out = Field::<FermionKind, E>::zero(grid.clone());
    for osite in 0..grid.osites() {
        for c in 0..NCOLOR {
            let mut h = [eng.zero(); 2];
            for (k, hw) in h.iter_mut().enumerate() {
                let (src, coeff) = t.proj[k];
                let sk = eng.load(psi.word(osite, spinor_comp(k, c)));
                let ss = eng.load(psi.word(osite, spinor_comp(src, c)));
                *hw = eng.add(sk, apply_coeff(eng, coeff, ss));
            }
            eng.store(out.word_mut(osite, spinor_comp(0, c)), h[0]);
            eng.store(out.word_mut(osite, spinor_comp(1, c)), h[1]);
            for k in 0..2 {
                let (row, coeff) = t.recon[k];
                let r = apply_coeff(eng, coeff, h[row]);
                eng.store(out.word_mut(osite, spinor_comp(2 + k, c)), r);
            }
        }
    }
    out
}

/// Spin-project a fermion field to a half-spinor field:
/// `h_k = ψ_k + coeff·ψ_src` for the two independent rows of `(1 ± γµ)`.
/// This is Grid's comms *compressor*: only the half spinor needs to cross
/// the network, halving wire volume before any fp16 compression.
pub fn project_half<E: SveFloat>(
    mu: usize,
    plus: bool,
    psi: &Field<FermionKind, E>,
) -> Field<HalfFermionKind, E> {
    let grid = psi.grid().clone();
    let eng = grid.engine();
    let t = proj_table(mu, plus);
    let mut out = Field::<HalfFermionKind, E>::zero(grid.clone());
    for osite in 0..grid.osites() {
        for k in 0..2 {
            let (src, coeff) = t.proj[k];
            for c in 0..NCOLOR {
                let sk = eng.load(psi.word(osite, spinor_comp(k, c)));
                let ss = eng.load(psi.word(osite, spinor_comp(src, c)));
                let h = eng.add(sk, apply_coeff(eng, coeff, ss));
                eng.store(out.word_mut(osite, k * NCOLOR + c), h);
            }
        }
    }
    out
}

/// Expand a half-spinor field back to the full `(1 ± γµ)`-projected fermion.
pub fn reconstruct_half<E: SveFloat>(
    mu: usize,
    plus: bool,
    h: &Field<HalfFermionKind, E>,
) -> Field<FermionKind, E> {
    let grid = h.grid().clone();
    let eng = grid.engine();
    let t = proj_table(mu, plus);
    let mut out = Field::<FermionKind, E>::zero(grid.clone());
    for osite in 0..grid.osites() {
        for c in 0..NCOLOR {
            let h0 = eng.load(h.word(osite, c));
            let h1 = eng.load(h.word(osite, NCOLOR + c));
            eng.store(out.word_mut(osite, spinor_comp(0, c)), h0);
            eng.store(out.word_mut(osite, spinor_comp(1, c)), h1);
            for k in 0..2 {
                let (row, coeff) = t.recon[k];
                let hv = if row == 0 { h0 } else { h1 };
                let r = apply_coeff(eng, coeff, hv);
                eng.store(out.word_mut(osite, spinor_comp(2 + k, c)), r);
            }
        }
    }
    out
}

/// Site-local gauge multiply on a half-spinor field (`U` or `U†` applied to
/// both half-spinor rows).
pub fn mult_gauge_half<E: SveFloat>(
    u: &Field<GaugeKind, E>,
    mu: usize,
    h: &Field<HalfFermionKind, E>,
    dagger: bool,
) -> Field<HalfFermionKind, E> {
    assert!(Arc::ptr_eq(u.grid(), h.grid()));
    let grid = h.grid().clone();
    let eng = grid.engine();
    let mut out = Field::<HalfFermionKind, E>::zero(grid.clone());
    for osite in 0..grid.osites() {
        let uw: [[CVec; NCOLOR]; NCOLOR] = std::array::from_fn(|r| {
            std::array::from_fn(|c| eng.load(u.word(osite, crate::field::gauge_comp(mu, r, c))))
        });
        for k in 0..2 {
            let v: [CVec; NCOLOR] =
                std::array::from_fn(|c| eng.load(h.word(osite, k * NCOLOR + c)));
            let r = if dagger {
                mat_dag_vec(eng, &uw, &v)
            } else {
                mat_vec(eng, &uw, &v)
            };
            for c in 0..NCOLOR {
                eng.store(out.word_mut(osite, k * NCOLOR + c), r[c]);
            }
        }
    }
    out
}

/// The hopping term assembled from whole-field primitives —
/// `Σµ { U_µ ∘ (1+γµ) ∘ cshift(+µ) + cshift(−µ) ∘ U†_µ ∘ (1−γµ) } ψ` —
/// the formulation whose `cshift` legs generalize to multi-rank halo
/// exchange. Slower than the fused stencil kernel, bit-compatible physics.
pub fn hopping_via_cshift<E: SveFloat>(
    u: &Field<GaugeKind, E>,
    psi: &Field<FermionKind, E>,
) -> Field<FermionKind, E> {
    use crate::cshift::cshift;
    let grid = psi.grid().clone();
    let mut out = Field::<FermionKind, E>::zero(grid);
    for mu in 0..4 {
        // Forward: U_µ(x) (1+γµ) ψ(x+µ̂).
        let fwd = mult_gauge(u, mu, &proj_recon(mu, true, &cshift(psi, mu, 1)), false);
        out.add_assign_field(&fwd);
        // Backward: cshift_{−µ} of U†_µ (1−γµ) ψ.
        let bwd = cshift(
            &mult_gauge(u, mu, &proj_recon(mu, false, psi), true),
            mu,
            -1,
        );
        out.add_assign_field(&bwd);
    }
    out
}

/// Multiply a fermion field by γ5 (diag(1,1,−1,−1) on the spin index).
pub fn gamma5<E: SveFloat>(psi: &Field<FermionKind, E>) -> Field<FermionKind, E> {
    let mut out = psi.clone();
    gamma5_inplace(&mut out);
    out
}

/// Multiply a fermion field by γ5 in place (negate spin components 2, 3) —
/// the allocation-free form the fused even-odd solver uses.
pub fn gamma5_inplace<E: SveFloat>(psi: &mut Field<FermionKind, E>) {
    let grid = psi.grid().clone();
    let eng = grid.engine();
    let word = eng.word_len();
    let stride = psi.site_stride();
    psi.data_mut().par_chunks_mut(stride).for_each(|site| {
        for s in 2..NSPIN {
            for c in 0..NCOLOR {
                let comp = spinor_comp(s, c);
                let w = &mut site[comp * word..(comp + 1) * word];
                let v = eng.load(w);
                let n = eng.neg(v);
                eng.store(w, n);
            }
        }
    });
}

/// Multiply every RHS of a fermion block by γ5 in place — per RHS the exact
/// word ops of [`gamma5_inplace`], so it is bit-identical per RHS.
pub fn gamma5_block_inplace<E: SveFloat>(psi: &mut FermionBlock<E>) {
    let grid = psi.grid().clone();
    let eng = grid.engine();
    let word = eng.word_len();
    let nrhs = psi.nrhs();
    let stride = psi.site_stride();
    psi.data_mut().par_chunks_mut(stride).for_each(|site| {
        for rhs in 0..nrhs {
            for s in 2..NSPIN {
                for c in 0..NCOLOR {
                    let off = (rhs * NCOMP + spinor_comp(s, c)) * word;
                    let w = &mut site[off..off + word];
                    let v = eng.load(w);
                    let n = eng.neg(v);
                    eng.store(w, n);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::field::FermionField;
    use crate::layout::Coor;
    use crate::simd::SimdBackend;
    use crate::tensor::su3::{random_gauge, unit_gauge};
    use sve::VectorLength;

    const L: Coor = [4, 4, 4, 4];

    fn grid(bits: usize, backend: SimdBackend) -> Arc<Grid> {
        Grid::new(L, VectorLength::of(bits), backend)
    }

    fn rel_close(a: &FermionField, b: &FermionField, tol: f64) -> bool {
        let scale = b.norm2().sqrt().max(1.0);
        a.max_abs_diff(b) <= tol * scale
    }

    #[test]
    fn free_field_constant_spinor_is_operator_eigenvector() {
        // Unit gauge, constant ψ: Dh ψ = Σµ [(1+γµ) + (1−γµ)] ψ = 8 ψ,
        // so M ψ = (m + 4) ψ − 4 ψ = m ψ.
        let g = grid(512, SimdBackend::Fcmla);
        let d = WilsonDirac::new(unit_gauge(g.clone()), 0.3);
        let mut psi = FermionField::zero(g.clone());
        for x in g.coords() {
            for comp in 0..12 {
                psi.poke(&x, comp, Complex::new(1.0 + comp as f64, -0.5));
            }
        }
        let hop = d.hopping(&psi);
        let mut want = psi.clone();
        want.scale(8.0);
        assert!(rel_close(&hop, &want, 1e-12), "Dh ψ != 8ψ");
        let m = d.apply(&psi);
        let mut want_m = psi.clone();
        want_m.scale(0.3);
        assert!(rel_close(&m, &want_m, 1e-12), "M ψ != m ψ");
    }

    #[test]
    fn hopping_connects_only_opposite_parities() {
        let g = grid(256, SimdBackend::Fcmla);
        let d = WilsonDirac::new(random_gauge(g.clone(), 1), 0.1);
        // ψ supported on even sites only.
        let mut psi = FermionField::zero(g.clone());
        for x in g.coords() {
            if g.parity(&x) == 0 {
                psi.poke(&x, 0, Complex::ONE);
            }
        }
        let hop = d.hopping(&psi);
        for x in g.coords() {
            let on_even: f64 = (0..12).map(|c| hop.peek(&x, c).norm2()).sum();
            if g.parity(&x) == 0 {
                assert!(on_even < 1e-24, "Dh must vanish on even sites, {x:?}");
            }
        }
    }

    #[test]
    fn gamma5_hermiticity() {
        // γ5 M γ5 = M†: the standard Wilson-operator identity, checked as
        // fields on a random gauge background.
        let g = grid(512, SimdBackend::Fcmla);
        let d = WilsonDirac::new(random_gauge(g.clone(), 2), 0.2);
        let psi = FermionField::random(g.clone(), 3);
        let lhs = gamma5(&d.apply(&gamma5(&psi)));
        let rhs = d.apply_dag(&psi);
        assert!(rel_close(&lhs, &rhs, 1e-12));
    }

    #[test]
    fn adjoint_is_the_true_adjoint() {
        // <φ, M ψ> == <M† φ, ψ> for random fields.
        let g = grid(256, SimdBackend::Fcmla);
        let d = WilsonDirac::new(random_gauge(g.clone(), 4), 0.15);
        let phi = FermionField::random(g.clone(), 5);
        let psi = FermionField::random(g.clone(), 6);
        let a = phi.inner(&d.apply(&psi));
        let b = d.apply_dag(&phi).inner(&psi);
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a:?} vs {b:?}");
    }

    #[test]
    fn mdag_m_is_hermitian_positive() {
        let g = grid(256, SimdBackend::Fcmla);
        let d = WilsonDirac::new(random_gauge(g.clone(), 7), 0.1);
        let psi = FermionField::random(g.clone(), 8);
        let phi = FermionField::random(g.clone(), 9);
        let a = phi.inner(&d.mdag_m(&psi));
        let b = d.mdag_m(&phi).inner(&psi);
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
        let e = psi.inner(&d.mdag_m(&psi));
        assert!(e.re > 0.0);
        assert!(e.im.abs() < 1e-9 * e.re);
    }

    #[test]
    fn all_backends_agree_on_the_hopping_term() {
        // The same physics regardless of instruction strategy — Section
        // V-E's alternative implementation must be a drop-in replacement.
        let reference = {
            let g = grid(512, SimdBackend::Fcmla);
            let d = WilsonDirac::new(random_gauge(g.clone(), 10), 0.1);
            d.hopping(&FermionField::random(g.clone(), 11))
        };
        for backend in [SimdBackend::RealArith, SimdBackend::GenericAutovec] {
            let g = grid(512, backend);
            let d = WilsonDirac::new(random_gauge(g.clone(), 10), 0.1);
            let hop = d.hopping(&FermionField::random(g.clone(), 11));
            let diff: f64 = hop
                .data()
                .iter()
                .zip(reference.data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(diff < 1e-12, "{backend:?} deviates by {diff}");
        }
    }

    #[test]
    fn hopping_term_is_identical_across_vector_lengths() {
        // Site values must agree bitwise across layouts (same per-site
        // arithmetic, only lane placement differs) — this is what the
        // paper's multi-VL ArmIE verification checks.
        let outputs: Vec<FermionField> = [128usize, 512, 2048]
            .iter()
            .map(|&bits| {
                let g = grid(bits, SimdBackend::Fcmla);
                let d = WilsonDirac::new(random_gauge(g.clone(), 12), 0.1);
                d.hopping(&FermionField::random(g.clone(), 13))
            })
            .collect();
        let g0 = outputs[0].grid().clone();
        for x in g0.coords() {
            for comp in 0..12 {
                let a = outputs[0].peek(&x, comp);
                for other in &outputs[1..] {
                    assert_eq!(a, other.peek(&x, comp), "{x:?} comp {comp}");
                }
            }
        }
    }

    #[test]
    fn cshift_composition_matches_the_stencil_kernel() {
        // Two independent formulations of Eq. (1) — the fused stencil
        // kernel and the whole-field cshift composition — must agree.
        for backend in [SimdBackend::Fcmla, SimdBackend::RealArith] {
            let g = grid(512, backend);
            let u = random_gauge(g.clone(), 15);
            let psi = FermionField::random(g.clone(), 16);
            let d = WilsonDirac::new(u.clone(), 0.1);
            let fused = d.hopping(&psi);
            let composed = hopping_via_cshift(&u, &psi);
            assert!(
                rel_close(&fused, &composed, 1e-12),
                "{backend:?}: max diff {}",
                fused.max_abs_diff(&composed)
            );
        }
    }

    #[test]
    fn proj_recon_matches_scalar_gamma_algebra() {
        use crate::tensor::gamma::Gamma;
        let g = grid(256, SimdBackend::Fcmla);
        let psi = FermionField::random(g.clone(), 17);
        for mu in 0..4 {
            for plus in [true, false] {
                let out = proj_recon(mu, plus, &psi);
                let sign = if plus { 1.0 } else { -1.0 };
                for x in g.coords().step_by(13) {
                    for c in 0..3 {
                        let s: [Complex; 4] =
                            std::array::from_fn(|sp| psi.peek(&x, spinor_comp(sp, c)));
                        let gs = Gamma::dir(mu).apply(&s);
                        for sp in 0..4 {
                            let want = s[sp] + gs[sp] * sign;
                            let got = out.peek(&x, spinor_comp(sp, c));
                            assert!((got - want).abs() < 1e-13, "mu={mu} plus={plus}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn half_spinor_project_reconstruct_matches_proj_recon() {
        // project -> reconstruct through the compressed half-spinor field
        // must equal the direct (1 ± γµ) application.
        let g = grid(512, SimdBackend::Fcmla);
        let psi = FermionField::random(g.clone(), 20);
        for mu in 0..4 {
            for plus in [true, false] {
                let via_half = reconstruct_half(mu, plus, &project_half(mu, plus, &psi));
                let direct = proj_recon(mu, plus, &psi);
                assert_eq!(via_half.max_abs_diff(&direct), 0.0, "mu={mu} plus={plus}");
            }
        }
    }

    #[test]
    fn half_spinor_gauge_multiply_commutes_with_reconstruction() {
        // U acting on the half spinor then reconstructing equals
        // reconstructing then applying U to all four spin rows.
        let g = grid(256, SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 21);
        let psi = FermionField::random(g.clone(), 22);
        for mu in 0..4 {
            let h = project_half(mu, true, &psi);
            let a = reconstruct_half(mu, true, &mult_gauge_half(&u, mu, &h, false));
            let b = mult_gauge(&u, mu, &reconstruct_half(mu, true, &h), false);
            assert!(rel_close(&a, &b, 1e-12), "mu={mu}");
        }
    }

    #[test]
    fn half_spinor_field_is_half_the_data() {
        let g = grid(256, SimdBackend::Fcmla);
        let psi = FermionField::random(g.clone(), 23);
        let h = project_half(0, true, &psi);
        assert_eq!(2 * h.data().len(), psi.data().len());
    }

    #[test]
    fn mult_gauge_then_dagger_is_identity() {
        let g = grid(256, SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 18);
        let psi = FermionField::random(g.clone(), 19);
        for mu in 0..4 {
            let round = mult_gauge(&u, mu, &mult_gauge(&u, mu, &psi, false), true);
            assert!(rel_close(&round, &psi, 1e-12), "mu={mu}");
        }
    }

    #[test]
    fn gamma5_is_an_involution() {
        let g = grid(256, SimdBackend::Fcmla);
        let psi = FermionField::random(g.clone(), 14);
        let twice = gamma5(&gamma5(&psi));
        assert_eq!(twice.max_abs_diff(&psi), 0.0);
    }

    #[test]
    fn block_kernels_match_single_rhs_bitwise_per_rhs() {
        // The heart of the batched path's correctness story: every RHS of
        // every block kernel must be bit-identical to the single-RHS fused
        // kernel applied to that RHS alone — including N = 1.
        use crate::field::FermionBlock;
        for nrhs in [1usize, 3] {
            let g = grid(512, SimdBackend::Fcmla);
            let d = WilsonDirac::new(random_gauge(g.clone(), 30), 0.2);
            let fields: Vec<FermionField> = (0..nrhs)
                .map(|i| FermionField::random(g.clone(), 31 + i as u64))
                .collect();
            let block = FermionBlock::from_fields(&fields);
            let mut tmp = FermionBlock::zero(g.clone(), nrhs);
            let mut out = FermionBlock::zero(g.clone(), nrhs);

            // hopping
            d.hopping_block_into(&block, &mut out);
            for (j, f) in fields.iter().enumerate() {
                let mut want = FermionField::zero(g.clone());
                d.hopping_into(f, &mut want);
                assert_eq!(out.rhs_field(j).max_abs_diff(&want), 0.0, "hop rhs {j}");
            }
            // hopping_dag
            d.hopping_dag_block_into(&block, &mut out);
            for (j, f) in fields.iter().enumerate() {
                let mut want = FermionField::zero(g.clone());
                d.hopping_dag_into(f, &mut want);
                assert_eq!(out.rhs_field(j).max_abs_diff(&want), 0.0, "hopdag rhs {j}");
            }
            // apply (fused mass)
            d.apply_block_into(&block, &mut out);
            for (j, f) in fields.iter().enumerate() {
                let mut want = FermionField::zero(g.clone());
                d.apply_into(f, &mut want);
                assert_eq!(out.rhs_field(j).max_abs_diff(&want), 0.0, "apply rhs {j}");
            }
            // mdag_m with fused curvature dot
            let dots = d.mdag_m_block_into_dot(&block, &mut tmp, &mut out);
            for (j, f) in fields.iter().enumerate() {
                let mut ft = FermionField::zero(g.clone());
                let mut fo = FermionField::zero(g.clone());
                let want_dot = d.mdag_m_into_dot(f, &mut ft, &mut fo);
                assert_eq!(tmp.rhs_field(j).max_abs_diff(&ft), 0.0, "tmp rhs {j}");
                assert_eq!(out.rhs_field(j).max_abs_diff(&fo), 0.0, "out rhs {j}");
                assert_eq!(dots[j].to_bits(), want_dot.to_bits(), "dot rhs {j}");
            }
        }
    }

    #[test]
    fn gamma5_block_matches_per_field_bitwise() {
        use crate::field::FermionBlock;
        let g = grid(256, SimdBackend::Fcmla);
        let fields: Vec<FermionField> = (0..3)
            .map(|i| FermionField::random(g.clone(), 40 + i))
            .collect();
        let mut block = FermionBlock::from_fields(&fields);
        gamma5_block_inplace(&mut block);
        for (j, f) in fields.iter().enumerate() {
            let mut want = f.clone();
            gamma5_inplace(&mut want);
            assert_eq!(block.rhs_field(j).max_abs_diff(&want), 0.0, "rhs {j}");
        }
    }

    #[test]
    fn two_row_operator_matches_full_links_to_rounding() {
        // random_gauge produces exactly-unitary links, so the reconstructed
        // third row differs from the stored one only by rounding.
        let g = grid(512, SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 50);
        let full = WilsonDirac::new(u.clone(), 0.15);
        let two = WilsonDirac::new_two_row(u, 0.15);
        assert!(two.two_row() && !full.two_row());
        let psi = FermionField::random(g.clone(), 51);
        let a = full.apply(&psi);
        let b = two.apply(&psi);
        assert!(rel_close(&a, &b, 1e-12), "diff {}", a.max_abs_diff(&b));
        // And through the normal operator (both legs, forward + backward).
        let c = full.mdag_m(&psi);
        let d2 = two.mdag_m(&psi);
        assert!(rel_close(&c, &d2, 1e-11), "diff {}", c.max_abs_diff(&d2));
    }

    #[test]
    fn two_row_block_matches_two_row_single_bitwise() {
        // Compression mode and batching compose: the block kernel in
        // two-row mode is still bit-identical per RHS to the single-RHS
        // two-row kernel.
        use crate::field::FermionBlock;
        let g = grid(256, SimdBackend::Fcmla);
        let two = WilsonDirac::new_two_row(random_gauge(g.clone(), 52), 0.15);
        let fields: Vec<FermionField> = (0..2)
            .map(|i| FermionField::random(g.clone(), 53 + i))
            .collect();
        let block = FermionBlock::from_fields(&fields);
        let mut out = FermionBlock::zero(g.clone(), 2);
        two.apply_block_into(&block, &mut out);
        for (j, f) in fields.iter().enumerate() {
            let mut want = FermionField::zero(g.clone());
            two.apply_into(f, &mut want);
            assert_eq!(out.rhs_field(j).max_abs_diff(&want), 0.0, "rhs {j}");
        }
    }
}
