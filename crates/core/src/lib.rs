// Matrix algebra throughout this crate loops over explicit row/column
// indices; the iterator-with-enumerate form clippy prefers obscures which
// index walks which side of the product.
#![allow(clippy::needless_range_loop)]

//! A Grid-style lattice QCD library with SVE backends — the primary
//! contribution of the reproduced paper, *"SVE-enabling Lattice QCD Codes"*
//! (Meyer et al., IEEE CLUSTER 2018).
//!
//! The paper ports the Grid framework to the ARM Scalable Vector Extension.
//! This crate rebuilds the relevant slice of Grid on top of the [`sve`]
//! functional model, following the port's architecture decision for
//! decision:
//!
//! * **Data layout** ([`layout`], [`field`]): sub-lattices decompose over
//!   *virtual nodes*, one per SIMD complex lane (paper Fig. 1); fields store
//!   ordinary `f64` arrays (SVE sizeless types cannot be members — Section
//!   V-A), interleaved (re,im) as the `FCMLA` instruction expects.
//! * **SIMD abstraction** ([`simd`]): the `vec<T>`/`acle<T>` layer with
//!   three interchangeable lowerings of complex arithmetic — `FCMLA`
//!   (Sections IV-C/D), real-arithmetic (Section V-E), and the
//!   auto-vectorizer's split formulation (Section IV-B) — all bit-tracked by
//!   instruction counters.
//! * **Physics** ([`tensor`], [`dirac`]): SU(3) gauge links, Dirac gamma
//!   algebra with spin projectors, and the Wilson hopping term of Eq. (1),
//!   "the most compute-intensive task" of LQCD.
//! * **Solvers** ([`solver`]): Conjugate Gradient on `M†M` and BiCGStab.
//! * **Comms** ([`comms`]): simulated multi-rank domain decomposition with
//!   halo exchange and optional binary16 wire compression (Section V-B).
//!
//! # Quickstart
//!
//! ```
//! use grid::prelude::*;
//!
//! // A 4^4 lattice on 512-bit SVE silicon, FCMLA complex arithmetic.
//! let g = Grid::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla);
//! let u = random_gauge(g.clone(), 7);
//! let d = WilsonDirac::new(u, 0.2);
//! let b = FermionField::random(g.clone(), 8);
//! let (x, report) = solve_wilson(&d, &b, 1e-8, 1000);
//! assert!(report.residual < 1e-6);
//! # let _ = x;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clover;
pub mod codec;
pub mod comms;
pub mod complex;
pub mod cshift;
pub mod dirac;
pub mod dist;
pub mod dwf;
pub mod eo;
pub mod field;
pub mod gauge;
pub mod layout;
pub mod mixed;
pub mod reduce;
pub mod requests;
pub mod rng;
pub mod simd;
pub mod solver;
pub mod stencil;
pub mod tensor;
pub mod topology;

pub use complex::Complex;
pub use field::{
    gauge_comp, spinor_comp, ComplexField, FermionBlock, FermionField, Field, FieldKind,
    GaugeField, HalfFermionField,
};
pub use layout::{Coor, Grid, NCOLOR, NDIM, NSPIN};
pub use simd::{CVec, SimdBackend, SimdEngine};

/// Everything a downstream application typically needs.
pub mod prelude {
    pub use crate::clover::{field_strength, CloverWilson};
    pub use crate::codec::{
        compress_two_row, decompress_two_row, Precision, LINK_SCALARS_FULL, LINK_SCALARS_TWO_ROW,
    };
    pub use crate::comms::{
        cshift_dist, cshift_dist_gauge, hopping_dist, hopping_dist_half, run_multinode,
        run_multinode_grid, run_multinode_topo, Compression, GaugeWire, HaloMsg, NetworkModel,
        RankCtx,
    };
    pub use crate::cshift::cshift;
    pub use crate::dirac::{
        gamma5, gamma5_block_inplace, gamma5_inplace, hopping_via_cshift, mult_gauge, project_half,
        reconstruct_half, WilsonDirac,
    };
    pub use crate::dist::{
        dist_block_cg, dist_cg, dist_cg_ws, restrict_field, DistWilson, DistWorkspace,
    };
    pub use crate::dwf::{axpy_chiral, cg_dwf, chiral_minus, chiral_plus, DomainWall, Fermion5};
    pub use crate::eo::{parity_project, solve_eo, solve_eo_block};
    pub use crate::field::{block_cg_update_x_r, cg_update_x_r};
    pub use crate::field::{
        gauge_comp, spinor_comp, ComplexField, FermionBlock, FermionField, Field, GaugeField,
    };
    pub use crate::gauge::{
        average_plaquette, average_polyakov_loop, max_unitarity_deviation, random_transform,
        transform_fermion, transform_links, wilson_loop, TransformField,
    };
    pub use crate::layout::Grid;
    pub use crate::mixed::{
        f16_canonical_inner_re, f16_canonical_norm2, f16_site_inner_re_lex, f16_site_norm2_lex,
        ladder_solve, ladder_solve_from, mixed_precision_solve, mixed_precision_solve_from,
        to_precision, to_precision_into, LadderConfig, LadderReport, MixedReport,
        F16_RESIDUAL_FLOOR,
    };
    pub use crate::requests::{solve_cg_requests, solve_eo_requests, SolveOutcome, SolveRequest};
    pub use crate::rng::StreamRng;
    pub use crate::simd::{SimdBackend, SimdEngine};
    pub use crate::solver::{
        bicgstab, bicgstab_from_state, block_cg, block_cg_ws, block_cg_ws_from_state, cg,
        cg_canonical_ws, cg_op, cg_op_from_state, cg_ws, cg_ws_from_state, solve_wilson,
        BicgStabState, BlockCgState, BlockSolveReport, BlockWorkspace, CgState, SolveReport,
        SolverWorkspace,
    };
    pub use crate::tensor::gamma_algebra::{mult_gamma, GammaElement};
    pub use crate::tensor::su3::{
        compress_su3, random_gauge, reconstruct_row2, reconstruct_su3, unit_gauge, TwoRowMatrix,
    };
    pub use crate::topology::{
        fermion_face_bytes, gauge_face_bytes, link_ghost_bytes, FaceGeometry, RankTopology,
    };
    pub use crate::Complex;
    pub use sve::{CostModel, SveCtx, VectorLength};
}
