//! Deterministic fixed-chunk tree reductions.
//!
//! Floating-point addition is not associative, so a reduction whose grouping
//! depends on the number of worker threads returns different bits on
//! different machines. That would break two guarantees this codebase leans
//! on: qcd-io's bit-exact checkpoint resume (PR 2) and the
//! "convergence is identical across vector lengths / backends" test family.
//!
//! The fix used here (and by Grid's `sumD` reductions) is to make the
//! grouping a property of the *data layout*, not of the executor: the
//! iteration space is cut into fixed chunks of [`CHUNK_SITES`] outer sites,
//! each chunk produces one partial in ascending word order, and the partials
//! are combined with a fixed binary-split tree. Threads only change *where*
//! a leaf is evaluated, never which values are added in which order, so the
//! result is bit-identical for 1, 2, or 8 workers — and identical to the
//! serial path, which walks the same tree recursively without allocating.

/// Outer sites per reduction chunk (also the parallel work-unit granularity
/// for the fused solver kernels). Fixed so that reduction trees — and hence
/// solver trajectories — do not depend on thread count or lattice-agnostic
/// tuning knobs.
pub const CHUNK_SITES: usize = 16;

/// Number of fixed-size chunks covering `n` items (at least 1 so empty
/// ranges still have a well-defined tree shape).
pub fn n_chunks(n: usize, chunk: usize) -> usize {
    n.div_ceil(chunk).max(1)
}

/// Combine precomputed per-chunk partials with the fixed binary-split tree
/// (`mid = lo + (hi - lo) / 2`). This is the parallel half of the reduction:
/// leaves come from an order-preserving parallel map, the combine happens
/// here on one thread.
pub fn combine_tree<R: Copy>(leaves: &[R], combine: &impl Fn(R, R) -> R) -> R {
    fn rec<R: Copy>(leaves: &[R], lo: usize, hi: usize, combine: &impl Fn(R, R) -> R) -> R {
        if hi - lo == 1 {
            return leaves[lo];
        }
        let mid = lo + (hi - lo) / 2;
        combine(rec(leaves, lo, mid, combine), rec(leaves, mid, hi, combine))
    }
    assert!(!leaves.is_empty(), "reduction over an empty leaf set");
    rec(leaves, 0, leaves.len(), combine)
}

/// Walk the same tree as [`combine_tree`] but evaluate leaves on demand,
/// in ascending index order, on the calling thread. This is the serial,
/// allocation-free half of the reduction: `leaf(i)` may mutate captured
/// state (e.g. store fused kernel results) because chunks are disjoint and
/// visited left-to-right.
pub fn reduce_serial<R>(
    n: usize,
    leaf: &mut impl FnMut(usize) -> R,
    combine: &impl Fn(R, R) -> R,
) -> R {
    fn rec<R>(
        lo: usize,
        hi: usize,
        leaf: &mut impl FnMut(usize) -> R,
        combine: &impl Fn(R, R) -> R,
    ) -> R {
        if hi - lo == 1 {
            return leaf(lo);
        }
        let mid = lo + (hi - lo) / 2;
        let left = rec(lo, mid, leaf, combine);
        let right = rec(mid, hi, leaf, combine);
        combine(left, right)
    }
    assert!(n > 0, "reduction over an empty range");
    rec(0, n, leaf, combine)
}

/// Deterministic chunk-tree sum over a scalar array laid out in a
/// **layout-independent** order (global lexicographic site order): the same
/// binary-split grouping as [`combine_tree`], leaves of [`CHUNK_SITES`]
/// values summed left to right. Because the grouping depends only on
/// `vals.len()`, a sum over per-site scalars in global lexicographic order
/// is bit-identical at every vector length, thread count — and, for the
/// distributed solver, rank count. This is the reduction the canonical
/// scalars of `dist_cg` and the deflation subsystem (`qcd-deflate`) are
/// built on.
pub fn canonical_sum(vals: &[f64]) -> f64 {
    let n = n_chunks(vals.len(), CHUNK_SITES);
    let mut leaf = |ci: usize| {
        let lo = ci * CHUNK_SITES;
        let hi = (lo + CHUNK_SITES).min(vals.len());
        vals[lo..hi].iter().sum::<f64>()
    };
    reduce_serial(n, &mut leaf, &|a, b| a + b)
}

/// [`combine_tree`] for non-`Copy` partials (e.g. the per-RHS `Vec<f64>`
/// accumulators of the block kernels). Walks the identical binary-split
/// tree (`mid = lo + (hi - lo) / 2`), so element `r` of the result combines
/// the per-chunk partials in exactly the grouping [`combine_tree`] would use
/// for a scalar reduction over the same chunk count — the property the
/// block path's per-RHS bitwise-identity guarantee rests on.
pub fn combine_tree_ref<R: Clone>(leaves: &[R], combine: &impl Fn(&R, &R) -> R) -> R {
    fn rec<R: Clone>(leaves: &[R], lo: usize, hi: usize, combine: &impl Fn(&R, &R) -> R) -> R {
        if hi - lo == 1 {
            return leaves[lo].clone();
        }
        let mid = lo + (hi - lo) / 2;
        let left = rec(leaves, lo, mid, combine);
        let right = rec(leaves, mid, hi, combine);
        combine(&left, &right)
    }
    assert!(!leaves.is_empty(), "reduction over an empty leaf set");
    rec(leaves, 0, leaves.len(), combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_tree_agree_exactly() {
        // Values chosen so grouping matters in f64: mixing magnitudes makes
        // (a+b)+c differ from a+(b+c) in the last bits.
        let leaves: Vec<f64> = (0..37)
            .map(|i| (1.0 + i as f64).powi(7) * if i % 3 == 0 { 1e-13 } else { 1.0 })
            .collect();
        let tree = combine_tree(&leaves, &|a, b| a + b);
        let mut lf = |i: usize| leaves[i];
        let serial = reduce_serial(leaves.len(), &mut lf, &|a, b| a + b);
        assert_eq!(tree.to_bits(), serial.to_bits());
    }

    #[test]
    fn tree_grouping_differs_from_left_fold() {
        let leaves: Vec<f64> = (0..33).map(|i| (0.1f64 + i as f64).exp()).collect();
        let fold: f64 = leaves.iter().sum();
        let tree = combine_tree(&leaves, &|a, b| a + b);
        // Not a correctness requirement, but documents that the tree is a
        // genuinely different (and fixed) grouping.
        assert!((fold - tree).abs() <= 1e-9 * fold.abs());
    }

    #[test]
    fn serial_leaves_run_in_ascending_order() {
        let mut seen = Vec::new();
        let mut lf = |i: usize| {
            seen.push(i);
            i as u64
        };
        let total = reduce_serial(11, &mut lf, &|a, b| a + b);
        assert_eq!(total, (0..11).sum::<u64>());
        assert_eq!(seen, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn ref_tree_matches_scalar_tree_elementwise() {
        // Per-RHS vectors reduced through combine_tree_ref must group each
        // element exactly as combine_tree groups the corresponding scalars.
        let scalar: Vec<Vec<f64>> = (0..2)
            .map(|r| {
                (0..37)
                    .map(|i| {
                        (1.0 + i as f64 + r as f64).powi(7) * if i % 3 == 0 { 1e-13 } else { 1.0 }
                    })
                    .collect()
            })
            .collect();
        let leaves: Vec<Vec<f64>> = (0..37).map(|i| vec![scalar[0][i], scalar[1][i]]).collect();
        let tree = combine_tree_ref(&leaves, &|a, b| {
            a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
        });
        for r in 0..2 {
            let want = combine_tree(&scalar[r], &|a, b| a + b);
            assert_eq!(tree[r].to_bits(), want.to_bits(), "rhs {r}");
        }
    }

    #[test]
    fn n_chunks_covers_the_range() {
        assert_eq!(n_chunks(0, 16), 1);
        assert_eq!(n_chunks(16, 16), 1);
        assert_eq!(n_chunks(17, 16), 2);
        assert_eq!(n_chunks(256, 16), 16);
    }
}
