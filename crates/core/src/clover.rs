//! The clover-improved Wilson operator (Sheikholeslami–Wohlert).
//!
//! Grid ships `WilsonClover` alongside plain Wilson fermions: the O(a)
//! lattice artefacts of Eq. (1) are cancelled by the site-local *clover
//! term* `(c_sw/2) Σ_{µ<ν} σ_µν F_µν`, where `F_µν` is the field strength
//! built from the four plaquette "leaves" around each site (whose shape
//! gives the term its name) and `σ_µν = (i/2)[γµ, γν]` comes from the
//! Clifford algebra of [`crate::tensor::gamma_algebra`]. Computationally it
//! is exactly the paper's favourite pattern — SU(3) matrix times spinor,
//! lowered through the complex-arithmetic backends — applied site-locally.

use crate::complex::Complex;
use crate::dirac::WilsonDirac;
use crate::field::{spinor_comp, FermionField, GaugeField};
use crate::gauge::TransformField;
use crate::layout::{Coor, Grid, NCOLOR, NSPIN};
use crate::simd::CVec;
use crate::tensor::gamma::Coeff;
use crate::tensor::gamma_algebra::{GammaElement, SpinPerm};
use crate::tensor::su3::{dagger, mat_mul_scalar, mat_vec, peek_link, ColorMatrix};
use rayon::prelude::*;
use std::sync::Arc;

/// The six independent planes, in pair order.
pub const PLANES: [(usize, usize); 6] = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];

fn add_mat(a: &mut ColorMatrix, b: &ColorMatrix) {
    for r in 0..NCOLOR {
        for c in 0..NCOLOR {
            a[r][c] += b[r][c];
        }
    }
}

fn shifted(x: &Coor, dims: &Coor, mu: usize, steps: i32) -> Coor {
    let mut y = *x;
    let l = dims[mu] as i32;
    y[mu] = ((y[mu] as i32 + steps).rem_euclid(l)) as usize;
    y
}

/// The clover-leaf sum `Q_µν(x)`: four plaquettes around `x` in the
/// (µ,ν) plane, all taken counter-clockwise starting and ending at `x`.
fn clover_leaves(u: &GaugeField, x: &Coor, mu: usize, nu: usize) -> ColorMatrix {
    let d = u.grid().fdims();
    let xp_mu = shifted(x, &d, mu, 1);
    let xp_nu = shifted(x, &d, nu, 1);
    let xm_mu = shifted(x, &d, mu, -1);
    let xm_nu = shifted(x, &d, nu, -1);
    let xm_mu_p_nu = shifted(&xm_mu, &d, nu, 1);
    let xm_mu_m_nu = shifted(&xm_mu, &d, nu, -1);
    let xp_mu_m_nu = shifted(&xp_mu, &d, nu, -1);

    let mut q = [[Complex::ZERO; NCOLOR]; NCOLOR];
    // Leaf 1: x -> +µ -> +ν -> -µ -> -ν.
    let l1 = mat_mul_scalar(
        &mat_mul_scalar(&peek_link(u, x, mu), &peek_link(u, &xp_mu, nu)),
        &mat_mul_scalar(
            &dagger(&peek_link(u, &xp_nu, mu)),
            &dagger(&peek_link(u, x, nu)),
        ),
    );
    add_mat(&mut q, &l1);
    // Leaf 2: x -> +ν -> -µ -> -ν -> +µ.
    let l2 = mat_mul_scalar(
        &mat_mul_scalar(
            &peek_link(u, x, nu),
            &dagger(&peek_link(u, &xm_mu_p_nu, mu)),
        ),
        &mat_mul_scalar(
            &dagger(&peek_link(u, &xm_mu, nu)),
            &peek_link(u, &xm_mu, mu),
        ),
    );
    add_mat(&mut q, &l2);
    // Leaf 3: x -> -µ -> -ν -> +µ -> +ν.
    let l3 = mat_mul_scalar(
        &mat_mul_scalar(
            &dagger(&peek_link(u, &xm_mu, mu)),
            &dagger(&peek_link(u, &xm_mu_m_nu, nu)),
        ),
        &mat_mul_scalar(&peek_link(u, &xm_mu_m_nu, mu), &peek_link(u, &xm_nu, nu)),
    );
    add_mat(&mut q, &l3);
    // Leaf 4: x -> -ν -> +µ -> +ν -> -µ (closing with U_µ†(x): the link
    // from x+µ back to x).
    let l4 = mat_mul_scalar(
        &mat_mul_scalar(
            &dagger(&peek_link(u, &xm_nu, nu)),
            &peek_link(u, &xm_nu, mu),
        ),
        &mat_mul_scalar(
            &peek_link(u, &xp_mu_m_nu, nu),
            &dagger(&peek_link(u, x, mu)),
        ),
    );
    add_mat(&mut q, &l4);
    q
}

/// The lattice field strength `F_µν(x) = (Q_µν − Q†_µν) / (8i)` — a
/// hermitian color matrix per site, one field per plane (pair order
/// [`PLANES`]).
pub fn field_strength(u: &GaugeField) -> [TransformField; 6] {
    let grid = u.grid().clone();
    let mut out: [TransformField; 6] = std::array::from_fn(|_| TransformField::zero(grid.clone()));
    for x in grid.coords() {
        for (p, &(mu, nu)) in PLANES.iter().enumerate() {
            let q = clover_leaves(u, &x, mu, nu);
            let qd = dagger(&q);
            for r in 0..NCOLOR {
                for c in 0..NCOLOR {
                    // (q - q†) / (8 i) = -i (q - q†) / 8.
                    let v = (q[r][c] - qd[r][c]).times_minus_i().scale(1.0 / 8.0);
                    out[p].poke(&x, r * 3 + c, v);
                }
            }
        }
    }
    out
}

/// `σ_µν = (i/2)[γµ, γν] = i γµ γν` (µ≠ν) as a signed spin permutation —
/// hermitian, so the clover term is hermitian and commutes with γ5.
pub fn sigma_munu(mu: usize, nu: usize) -> SpinPerm {
    use GammaElement::*;
    let base = match (mu, nu) {
        (0, 1) => SigmaXY,
        (0, 2) => SigmaXZ,
        (0, 3) => SigmaXT,
        (1, 2) => SigmaYZ,
        (1, 3) => SigmaYT,
        (2, 3) => SigmaZT,
        _ => panic!("plane must have mu < nu"),
    };
    // Multiply every coefficient by i.
    let mut p = base.perm();
    for c in &mut p.coeff {
        *c = *c * Coeff::I;
    }
    p
}

/// The clover-improved Wilson operator
/// `M = (m + 4) − ½ Dh − (c_sw/2) Σ_{µ<ν} σ_µν F_µν`.
pub struct CloverWilson {
    wilson: WilsonDirac<f64>,
    f: [TransformField; 6],
    /// The Sheikholeslami–Wohlert improvement coefficient.
    pub c_sw: f64,
}

impl CloverWilson {
    /// Build from a gauge configuration, bare mass and `c_sw`.
    pub fn new(u: GaugeField, mass: f64, c_sw: f64) -> Self {
        let f = field_strength(&u);
        CloverWilson {
            wilson: WilsonDirac::new(u, mass),
            f,
            c_sw,
        }
    }

    /// The lattice.
    pub fn grid(&self) -> &Arc<Grid> {
        self.wilson.grid()
    }

    /// The plain Wilson part.
    pub fn wilson(&self) -> &WilsonDirac<f64> {
        &self.wilson
    }

    /// One site of the clover sum `Σ_{µ<ν} σ_µν F_µν ψ`: SU(3)
    /// matrix-vector products through the engine backends plus spin
    /// coefficient ops, accumulated in registers.
    fn site_clover(
        &self,
        psi: &FermionField,
        osite: usize,
        sigmas: &[SpinPerm; 6],
    ) -> [[CVec; NCOLOR]; NSPIN] {
        let eng = self.grid().engine();
        let mut acc = [[eng.zero(); NCOLOR]; NSPIN];
        for (p, sigma) in sigmas.iter().enumerate() {
            // Load F words once per plane.
            let fw: [[CVec; NCOLOR]; NCOLOR] = std::array::from_fn(|r| {
                std::array::from_fn(|c| eng.load(self.f[p].word(osite, r * 3 + c)))
            });
            // F ψ for all four spins.
            let f_psi: [[CVec; NCOLOR]; NSPIN] = std::array::from_fn(|s| {
                let v: [CVec; NCOLOR] =
                    std::array::from_fn(|c| eng.load(psi.word(osite, spinor_comp(s, c))));
                mat_vec(eng, &fw, &v)
            });
            // Spin structure: out[r] += coeff[r] * (Fψ)[src[r]].
            for r in 0..NSPIN {
                let src = sigma.src[r];
                for c in 0..NCOLOR {
                    let term = match sigma.coeff[r] {
                        Coeff::One => f_psi[src][c],
                        Coeff::MinusOne => eng.neg(f_psi[src][c]),
                        Coeff::I => eng.times_i(f_psi[src][c]),
                        Coeff::MinusI => eng.times_minus_i(f_psi[src][c]),
                    };
                    acc[r][c] = eng.add(acc[r][c], term);
                }
            }
        }
        acc
    }

    /// The site-local clover term `Σ_{µ<ν} σ_µν F_µν ψ`, computed in
    /// parallel over outer sites.
    pub fn clover_term(&self, psi: &FermionField) -> FermionField {
        let grid = self.grid().clone();
        let eng = grid.engine();
        let _span = qcd_trace::span!("clover.term", eng.ctx());
        let sites = grid.volume() as u64;
        // Per site: 6 planes x (F matrix 18 reals + matrix-vector products on
        // a full spinor), one spinor read and one written.
        qcd_trace::record_sites(sites);
        qcd_trace::record_bytes(sites * (6 * 18 + 24) * 8, sites * 24 * 8);
        let mut out = FermionField::zero(grid.clone());
        let sigmas: [SpinPerm; 6] = std::array::from_fn(|p| sigma_munu(PLANES[p].0, PLANES[p].1));
        let word = eng.word_len();
        let stride = out.site_stride();
        out.data_mut()
            .par_chunks_mut(stride)
            .enumerate()
            .for_each(|(osite, sw)| {
                let acc = self.site_clover(psi, osite, &sigmas);
                for r in 0..NSPIN {
                    for c in 0..NCOLOR {
                        let comp = spinor_comp(r, c);
                        eng.store(&mut sw[comp * word..(comp + 1) * word], acc[r][c]);
                    }
                }
            });
        out
    }

    /// `out += coef · Σ_{µ<ν} σ_µν F_µν ψ` with the scale-and-add fused
    /// into the site store loop (one `fmla` per word) — the allocation-free
    /// form [`Self::apply_into`] uses, sparing the full-field `scale` and
    /// `add` passes of the unfused formulation. Opens no telemetry span
    /// (span entry allocates); sites and bytes are recorded on the calling
    /// thread and attributed to the enclosing span.
    pub fn clover_term_axpy_into(&self, psi: &FermionField, coef: f64, out: &mut FermionField) {
        let grid = self.grid().clone();
        let eng = grid.engine();
        let sites = grid.volume() as u64;
        // As clover_term, plus the read of the destination spinor.
        qcd_trace::record_sites(sites);
        qcd_trace::record_bytes(sites * (6 * 18 + 2 * 24) * 8, sites * 24 * 8);
        let sigmas: [SpinPerm; 6] = std::array::from_fn(|p| sigma_munu(PLANES[p].0, PLANES[p].1));
        let c_dup = eng.dup_real(coef);
        let word = eng.word_len();
        let stride = out.site_stride();
        out.data_mut()
            .par_chunks_mut(stride)
            .enumerate()
            .for_each(|(osite, sw)| {
                let acc = self.site_clover(psi, osite, &sigmas);
                for r in 0..NSPIN {
                    for c in 0..NCOLOR {
                        let comp = spinor_comp(r, c);
                        let w = &mut sw[comp * word..(comp + 1) * word];
                        let sv = eng.load(w);
                        eng.store(w, eng.axpy_word(c_dup, acc[r][c], sv));
                    }
                }
            });
    }

    /// `M ψ` with the clover improvement.
    pub fn apply(&self, psi: &FermionField) -> FermionField {
        let mut out = FermionField::zero(self.grid().clone());
        self.apply_into(psi, &mut out);
        out
    }

    /// `M† ψ` — the clover term is hermitian and γ5-even, so only the
    /// Wilson part changes.
    pub fn apply_dag(&self, psi: &FermionField) -> FermionField {
        let mut out = FermionField::zero(self.grid().clone());
        self.apply_dag_into(psi, &mut out);
        out
    }

    /// `out = M ψ` in two fused sweeps: the Wilson dslash+mass store loop,
    /// then the clover term fma'd on top.
    pub fn apply_into(&self, psi: &FermionField, out: &mut FermionField) {
        self.wilson.apply_into(psi, out);
        self.clover_term_axpy_into(psi, -0.5 * self.c_sw, out);
    }

    /// `out = M† ψ` in two fused sweeps.
    pub fn apply_dag_into(&self, psi: &FermionField, out: &mut FermionField) {
        self.wilson.apply_dag_into(psi, out);
        self.clover_term_axpy_into(psi, -0.5 * self.c_sw, out);
    }

    /// The normal operator `M†M`.
    pub fn mdag_m(&self, psi: &FermionField) -> FermionField {
        let mut tmp = FermionField::zero(self.grid().clone());
        let mut out = FermionField::zero(self.grid().clone());
        self.mdag_m_into(psi, &mut tmp, &mut out);
        out
    }

    /// `out = M†M ψ` using caller-provided storage (`tmp` holds `M ψ`).
    pub fn mdag_m_into(&self, psi: &FermionField, tmp: &mut FermionField, out: &mut FermionField) {
        self.apply_into(psi, tmp);
        self.apply_dag_into(tmp, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirac::gamma5;
    use crate::simd::SimdBackend;
    use crate::solver::cg_op;
    use crate::tensor::su3::{random_gauge, unit_gauge};
    use sve::VectorLength;

    fn grid() -> Arc<Grid> {
        Grid::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla)
    }

    #[test]
    fn field_strength_vanishes_on_unit_gauge() {
        let g = grid();
        let f = field_strength(&unit_gauge(g.clone()));
        for fp in &f {
            assert!(fp.norm2() < 1e-24, "F must vanish on the free field");
        }
    }

    #[test]
    fn field_strength_is_hermitian() {
        let g = grid();
        let f = field_strength(&random_gauge(g.clone(), 141));
        for fp in &f {
            for x in g.coords().step_by(13) {
                for r in 0..NCOLOR {
                    for c in 0..NCOLOR {
                        let a = fp.peek(&x, r * 3 + c);
                        let b = fp.peek(&x, c * 3 + r).conj();
                        assert!((a - b).abs() < 1e-12, "{x:?} ({r},{c})");
                    }
                }
            }
        }
    }

    #[test]
    fn field_strength_is_gauge_covariant() {
        // F'_µν(x) = g(x) F_µν(x) g†(x).
        use crate::gauge::{peek_transform, random_transform, transform_links};
        let g = grid();
        let u = random_gauge(g.clone(), 142);
        let t = random_transform(g.clone(), 143);
        let f = field_strength(&u);
        let fp = field_strength(&transform_links(&u, &t));
        for x in g.coords().step_by(17) {
            let gx = peek_transform(&t, &x);
            for p in 0..6 {
                let orig: ColorMatrix =
                    std::array::from_fn(|r| std::array::from_fn(|c| f[p].peek(&x, r * 3 + c)));
                let want = mat_mul_scalar(&mat_mul_scalar(&gx, &orig), &dagger(&gx));
                for r in 0..NCOLOR {
                    for c in 0..NCOLOR {
                        let got = fp[p].peek(&x, r * 3 + c);
                        assert!((got - want[r][c]).abs() < 1e-11, "plane {p} {x:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn sigma_munu_is_hermitian() {
        for &(mu, nu) in &PLANES {
            let s = sigma_munu(mu, nu);
            assert_eq!(s.adjoint(), s, "sigma({mu},{nu})");
        }
    }

    #[test]
    fn clover_term_is_hermitian() {
        let g = grid();
        let op = CloverWilson::new(random_gauge(g.clone(), 144), 0.2, 1.0);
        let phi = FermionField::random(g.clone(), 145);
        let psi = FermionField::random(g.clone(), 146);
        let a = phi.inner(&op.clover_term(&psi));
        let b = op.clover_term(&phi).inner(&psi);
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a:?} vs {b:?}");
    }

    #[test]
    fn clover_operator_is_g5_hermitian() {
        let g = grid();
        let op = CloverWilson::new(random_gauge(g.clone(), 147), 0.2, 1.3);
        let psi = FermionField::random(g.clone(), 148);
        let lhs = gamma5(&op.apply(&gamma5(&psi)));
        let rhs = op.apply_dag(&psi);
        assert!(lhs.max_abs_diff(&rhs) < 1e-11);
    }

    #[test]
    fn csw_zero_reduces_to_plain_wilson() {
        let g = grid();
        let u = random_gauge(g.clone(), 149);
        let clover = CloverWilson::new(u.clone(), 0.2, 0.0);
        let wilson = WilsonDirac::new(u, 0.2);
        let psi = FermionField::random(g.clone(), 150);
        assert_eq!(clover.apply(&psi).max_abs_diff(&wilson.apply(&psi)), 0.0);
    }

    #[test]
    fn clover_term_changes_the_operator() {
        let g = grid();
        let u = random_gauge(g.clone(), 151);
        let psi = FermionField::random(g.clone(), 152);
        let with = CloverWilson::new(u.clone(), 0.2, 1.0).apply(&psi);
        let without = WilsonDirac::new(u, 0.2).apply(&psi);
        assert!(with.max_abs_diff(&without) > 1e-3);
    }

    #[test]
    fn cg_inverts_the_clover_normal_operator() {
        let g = grid();
        let op = CloverWilson::new(random_gauge(g.clone(), 153), 0.3, 1.0);
        let b = FermionField::random(g.clone(), 154);
        let (x, report) = cg_op(|v| op.mdag_m(v), &b, 1e-8, 2000);
        assert!(report.converged, "{report:?}");
        let ax = op.mdag_m(&x);
        let mut diff = FermionField::zero(g);
        diff.sub(&ax, &b);
        assert!(diff.norm2() / b.norm2() < 1e-13);
    }

    #[test]
    fn clover_term_is_backend_independent() {
        let reference = {
            let g = grid();
            let op = CloverWilson::new(random_gauge(g.clone(), 155), 0.2, 1.0);
            op.clover_term(&FermionField::random(g.clone(), 156))
        };
        for backend in [SimdBackend::RealArith, SimdBackend::GenericAutovec] {
            let g = Grid::new([4, 4, 4, 4], VectorLength::of(512), backend);
            let op = CloverWilson::new(random_gauge(g.clone(), 155), 0.2, 1.0);
            let out = op.clover_term(&FermionField::random(g.clone(), 156));
            let diff = out
                .data()
                .iter()
                .zip(reference.data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(diff < 1e-12, "{backend:?} deviates by {diff}");
        }
    }
}
