//! Dirac gamma matrices and the Wilson spin projectors.
//!
//! "The γµ are the (constant) Dirac matrices, carrying spinor indices"
//! (paper, Section II-A). We use the chiral basis Grid uses; all entries are
//! `0`, `±1` or `±i`, so applying `(1 ± γµ)` never needs a general complex
//! multiply — just adds, subtracts and `±i` factors, which is why the SIMD
//! layer exposes `TimesI`/`TimesMinusI` as first-class functors.
//!
//! The projection trick: `(1 ± γµ)` has rank 2, so its image is determined
//! by two spinor components (a *half spinor*); the lower two components are
//! reconstructed from the upper two by a fixed `±1`/`±i` relation. The
//! hopping term (paper Eq. (1)) multiplies only half spinors by SU(3)
//! links, halving the color-multiply work. [`project`]/[`reconstruct`]
//! implement the trick; the unit tests prove them equal to the literal
//! `(1 ± γµ)` matrix action for every direction and sign.

use crate::complex::Complex;
use crate::layout::NSPIN;

/// The four space-time gamma matrices plus γ5, as dense 4x4 complex
/// matrices in the chiral basis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gamma {
    /// γ_x (direction 0).
    X,
    /// γ_y (direction 1).
    Y,
    /// γ_z (direction 2).
    Z,
    /// γ_t (direction 3).
    T,
    /// γ5 = γx γy γz γt (chirality).
    Five,
}

impl Gamma {
    /// The gamma matrix for space-time direction `mu` (0..4).
    pub fn dir(mu: usize) -> Gamma {
        match mu {
            0 => Gamma::X,
            1 => Gamma::Y,
            2 => Gamma::Z,
            3 => Gamma::T,
            _ => panic!("direction out of range"),
        }
    }

    /// Dense matrix representation.
    pub fn matrix(self) -> [[Complex; NSPIN]; NSPIN] {
        let o = Complex::ZERO;
        let e = Complex::ONE;
        let i = Complex::I;
        let m = -Complex::ONE;
        let mi = -Complex::I;
        match self {
            Gamma::X => [[o, o, o, i], [o, o, i, o], [o, mi, o, o], [mi, o, o, o]],
            Gamma::Y => [[o, o, o, m], [o, o, e, o], [o, e, o, o], [m, o, o, o]],
            Gamma::Z => [[o, o, i, o], [o, o, o, mi], [mi, o, o, o], [o, i, o, o]],
            Gamma::T => [[o, o, e, o], [o, o, o, e], [e, o, o, o], [o, e, o, o]],
            Gamma::Five => [[e, o, o, o], [o, e, o, o], [o, o, m, o], [o, o, o, m]],
        }
    }

    /// Apply this gamma matrix to a spin 4-vector.
    pub fn apply(self, s: &[Complex; NSPIN]) -> [Complex; NSPIN] {
        let g = self.matrix();
        std::array::from_fn(|r| (0..NSPIN).fold(Complex::ZERO, |acc, c| acc + g[r][c] * s[c]))
    }
}

/// How a half-spinor component is built from (or reconstructed into) full
/// spinor components: `coeff * spinor[index]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Coeff {
    /// `+1`.
    One,
    /// `-1`.
    MinusOne,
    /// `+i`.
    I,
    /// `-i`.
    MinusI,
}

impl Coeff {
    /// Apply to a scalar complex value.
    pub fn apply(self, z: Complex) -> Complex {
        match self {
            Coeff::One => z,
            Coeff::MinusOne => -z,
            Coeff::I => z.times_i(),
            Coeff::MinusI => z.times_minus_i(),
        }
    }
}

/// The spin-projection table for `(1 + sign*γµ)`:
/// half spinor `h_k = s_k + proj[k].1 * s[proj[k].0]` for `k = 0, 1`, and
/// full-spinor reconstruction `r_{2+k} = recon[k].1 * h[recon[k].0]`.
#[derive(Clone, Copy, Debug)]
pub struct ProjTable {
    /// For each of the two half-spinor rows: (source spin index, coefficient).
    pub proj: [(usize, Coeff); 2],
    /// For each of the two reconstructed rows: (half-spinor row, coefficient).
    pub recon: [(usize, Coeff); 2],
}

/// Projection table for direction `mu` and sign `+1`/`-1` (the paper's
/// `(1 + γµ)` forward / `(1 - γµ)` backward legs).
pub fn proj_table(mu: usize, plus: bool) -> ProjTable {
    use Coeff::*;
    match (mu, plus) {
        // (1 + γx): h0 = s0 + i s3, h1 = s1 + i s2 ; r2 = -i h1, r3 = -i h0
        (0, true) => ProjTable {
            proj: [(3, I), (2, I)],
            recon: [(1, MinusI), (0, MinusI)],
        },
        // (1 - γx): h0 = s0 - i s3, h1 = s1 - i s2 ; r2 = +i h1, r3 = +i h0
        (0, false) => ProjTable {
            proj: [(3, MinusI), (2, MinusI)],
            recon: [(1, I), (0, I)],
        },
        // (1 + γy): h0 = s0 - s3, h1 = s1 + s2 ; r2 = h1, r3 = -h0
        (1, true) => ProjTable {
            proj: [(3, MinusOne), (2, One)],
            recon: [(1, One), (0, MinusOne)],
        },
        // (1 - γy): h0 = s0 + s3, h1 = s1 - s2 ; r2 = -h1, r3 = h0
        (1, false) => ProjTable {
            proj: [(3, One), (2, MinusOne)],
            recon: [(1, MinusOne), (0, One)],
        },
        // (1 + γz): h0 = s0 + i s2, h1 = s1 - i s3 ; r2 = -i h0, r3 = +i h1
        (2, true) => ProjTable {
            proj: [(2, I), (3, MinusI)],
            recon: [(0, MinusI), (1, I)],
        },
        // (1 - γz): h0 = s0 - i s2, h1 = s1 + i s3 ; r2 = +i h0, r3 = -i h1
        (2, false) => ProjTable {
            proj: [(2, MinusI), (3, I)],
            recon: [(0, I), (1, MinusI)],
        },
        // (1 + γt): h0 = s0 + s2, h1 = s1 + s3 ; r2 = h0, r3 = h1
        (3, true) => ProjTable {
            proj: [(2, One), (3, One)],
            recon: [(0, One), (1, One)],
        },
        // (1 - γt): h0 = s0 - s2, h1 = s1 - s3 ; r2 = -h0, r3 = -h1
        (3, false) => ProjTable {
            proj: [(2, MinusOne), (3, MinusOne)],
            recon: [(0, MinusOne), (1, MinusOne)],
        },
        _ => panic!("direction out of range"),
    }
}

/// Scalar spin projection: `(1 ± γµ) s` restricted to its two independent
/// rows.
pub fn project(mu: usize, plus: bool, s: &[Complex; NSPIN]) -> [Complex; 2] {
    let t = proj_table(mu, plus);
    std::array::from_fn(|k| {
        let (src, coeff) = t.proj[k];
        s[k] + coeff.apply(s[src])
    })
}

/// Scalar reconstruction: expand a half spinor back to the full `(1 ± γµ) s`.
pub fn reconstruct(mu: usize, plus: bool, h: &[Complex; 2]) -> [Complex; NSPIN] {
    let t = proj_table(mu, plus);
    let mut out = [Complex::ZERO; NSPIN];
    out[0] = h[0];
    out[1] = h[1];
    for k in 0..2 {
        let (row, coeff) = t.recon[k];
        out[2 + k] = coeff.apply(h[row]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spinors() -> Vec<[Complex; NSPIN]> {
        let mut out = Vec::new();
        for k in 0..8 {
            out.push(std::array::from_fn(|s| {
                Complex::new(
                    (s as f64 + 1.0) * 0.5 - k as f64,
                    k as f64 * 0.25 - s as f64,
                )
            }));
        }
        out
    }

    fn mat_mul(a: [[Complex; 4]; 4], b: [[Complex; 4]; 4]) -> [[Complex; 4]; 4] {
        std::array::from_fn(|r| {
            std::array::from_fn(|c| (0..4).fold(Complex::ZERO, |acc, k| acc + a[r][k] * b[k][c]))
        })
    }

    fn approx_eq(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-13
    }

    #[test]
    fn gammas_square_to_identity() {
        for g in [Gamma::X, Gamma::Y, Gamma::Z, Gamma::T, Gamma::Five] {
            let sq = mat_mul(g.matrix(), g.matrix());
            for r in 0..4 {
                for c in 0..4 {
                    let want = if r == c { Complex::ONE } else { Complex::ZERO };
                    assert!(approx_eq(sq[r][c], want), "{g:?}^2 at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn gammas_anticommute() {
        let gs = [Gamma::X, Gamma::Y, Gamma::Z, Gamma::T];
        for (i, &a) in gs.iter().enumerate() {
            for &b in gs.iter().skip(i + 1) {
                let ab = mat_mul(a.matrix(), b.matrix());
                let ba = mat_mul(b.matrix(), a.matrix());
                for r in 0..4 {
                    for c in 0..4 {
                        assert!(
                            approx_eq(ab[r][c] + ba[r][c], Complex::ZERO),
                            "{{{a:?},{b:?}}} != 0 at ({r},{c})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gamma5_is_product_of_all_gammas() {
        let prod = mat_mul(
            mat_mul(Gamma::X.matrix(), Gamma::Y.matrix()),
            mat_mul(Gamma::Z.matrix(), Gamma::T.matrix()),
        );
        let g5 = Gamma::Five.matrix();
        for r in 0..4 {
            for c in 0..4 {
                assert!(approx_eq(prod[r][c], g5[r][c]), "({r},{c})");
            }
        }
    }

    #[test]
    fn gamma5_anticommutes_with_directions() {
        for mu in 0..4 {
            let g = Gamma::dir(mu).matrix();
            let g5 = Gamma::Five.matrix();
            let a = mat_mul(g5, g);
            let b = mat_mul(g, g5);
            for r in 0..4 {
                for c in 0..4 {
                    assert!(approx_eq(a[r][c] + b[r][c], Complex::ZERO));
                }
            }
        }
    }

    #[test]
    fn projector_equals_literal_one_plus_minus_gamma() {
        // The load-bearing identity of the Wilson kernel: for every
        // direction and sign, reconstruct(project(s)) == (1 ± γµ) s.
        for mu in 0..4 {
            for plus in [true, false] {
                for s in spinors() {
                    let h = project(mu, plus, &s);
                    let got = reconstruct(mu, plus, &h);
                    let gs = Gamma::dir(mu).apply(&s);
                    let sign = if plus { 1.0 } else { -1.0 };
                    for r in 0..NSPIN {
                        let want = s[r] + gs[r] * sign;
                        assert!(
                            approx_eq(got[r], want),
                            "mu={mu} plus={plus} row {r}: {:?} vs {want:?}",
                            got[r]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn projectors_are_rank_two() {
        // (1±γµ)^2 = 2 (1±γµ): projecting a reconstructed spinor doubles it.
        for mu in 0..4 {
            for plus in [true, false] {
                for s in spinors() {
                    let once = reconstruct(mu, plus, &project(mu, plus, &s));
                    let twice = reconstruct(mu, plus, &project(mu, plus, &once));
                    for r in 0..NSPIN {
                        assert!(approx_eq(twice[r], once[r] * 2.0), "mu={mu} plus={plus}");
                    }
                }
            }
        }
    }

    #[test]
    fn opposite_projectors_sum_to_twice_identity() {
        // (1+γµ) + (1−γµ) = 2.
        for mu in 0..4 {
            for s in spinors() {
                let p = reconstruct(mu, true, &project(mu, true, &s));
                let m = reconstruct(mu, false, &project(mu, false, &s));
                for r in 0..NSPIN {
                    assert!(approx_eq(p[r] + m[r], s[r] * 2.0));
                }
            }
        }
    }

    #[test]
    fn coeff_algebra() {
        let z = Complex::new(2.0, -3.0);
        assert_eq!(Coeff::One.apply(z), z);
        assert_eq!(Coeff::MinusOne.apply(z), -z);
        assert_eq!(Coeff::I.apply(z), z.times_i());
        assert_eq!(Coeff::MinusI.apply(z), z.times_minus_i());
    }
}
