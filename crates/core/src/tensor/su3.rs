//! SU(3) color algebra.
//!
//! "The gauge matrices carry color indices and are represented by 3 × 3
//! matrices with complex entries" (paper, Section II-A). Scalar routines
//! build and validate gauge configurations; the word-level routines are the
//! color kernels of the hopping term, running on SIMD words so every call
//! processes one matrix-vector product per virtual node.

use crate::complex::Complex;
use crate::field::{gauge_comp, Field, GaugeKind};
use crate::layout::{Coor, Grid, NCOLOR, NDIM};
use crate::rng::{stream_id, uniform};
use crate::simd::{CVec, SimdEngine};
use std::sync::Arc;
use sve::SveFloat;

/// A scalar 3x3 complex matrix.
pub type ColorMatrix = [[Complex; NCOLOR]; NCOLOR];
/// A scalar color 3-vector.
pub type ColorVector = [Complex; NCOLOR];

/// Matrix-vector product `U v` (scalar reference path).
pub fn mat_vec_scalar(u: &ColorMatrix, v: &ColorVector) -> ColorVector {
    std::array::from_fn(|r| (0..NCOLOR).fold(Complex::ZERO, |acc, c| acc + u[r][c] * v[c]))
}

/// Adjoint matrix-vector product `U† v` (scalar reference path).
pub fn mat_dag_vec_scalar(u: &ColorMatrix, v: &ColorVector) -> ColorVector {
    std::array::from_fn(|r| (0..NCOLOR).fold(Complex::ZERO, |acc, c| acc + u[c][r].conj() * v[c]))
}

/// Matrix product `A B` (scalar path).
pub fn mat_mul_scalar(a: &ColorMatrix, b: &ColorMatrix) -> ColorMatrix {
    std::array::from_fn(|r| {
        std::array::from_fn(|c| (0..NCOLOR).fold(Complex::ZERO, |acc, k| acc + a[r][k] * b[k][c]))
    })
}

/// Hermitian conjugate `U†`.
pub fn dagger(u: &ColorMatrix) -> ColorMatrix {
    std::array::from_fn(|r| std::array::from_fn(|c| u[c][r].conj()))
}

/// Determinant of a 3x3 complex matrix.
pub fn det(u: &ColorMatrix) -> Complex {
    u[0][0] * (u[1][1] * u[2][2] - u[1][2] * u[2][1])
        - u[0][1] * (u[1][0] * u[2][2] - u[1][2] * u[2][0])
        + u[0][2] * (u[1][0] * u[2][1] - u[1][1] * u[2][0])
}

/// Deviation from unitarity: `max |U†U - 1|` entry-wise.
pub fn unitarity_defect(u: &ColorMatrix) -> f64 {
    let udu = mat_mul_scalar(&dagger(u), u);
    let mut worst: f64 = 0.0;
    for r in 0..NCOLOR {
        for c in 0..NCOLOR {
            let want = if r == c { Complex::ONE } else { Complex::ZERO };
            worst = worst.max((udu[r][c] - want).abs());
        }
    }
    worst
}

fn cdot(a: &ColorVector, b: &ColorVector) -> Complex {
    (0..NCOLOR).fold(Complex::ZERO, |acc, i| acc + a[i].conj() * b[i])
}

fn vnorm(a: &ColorVector) -> f64 {
    cdot(a, a).re.sqrt()
}

/// Project a (near-)invertible matrix onto SU(3): Gram-Schmidt the first
/// two rows, third row = conjugate cross product (guarantees unitarity and
/// `det = +1`). For a matrix that is already special unitary up to rounding
/// drift this is the standard reunitarization used on long HMC chains: it
/// removes the `O(drift)` defect while moving each entry by `O(drift)`.
pub fn project_su3(m: &ColorMatrix) -> ColorMatrix {
    let mut rows: [ColorVector; 2] = [m[0], m[1]];
    // Normalize row 0.
    let n0 = vnorm(&rows[0]);
    for c in 0..NCOLOR {
        rows[0][c] = rows[0][c].scale(1.0 / n0);
    }
    // Orthogonalize and normalize row 1.
    let overlap = cdot(&rows[0], &rows[1]);
    for c in 0..NCOLOR {
        rows[1][c] -= rows[0][c] * overlap;
    }
    let n1 = vnorm(&rows[1]);
    for c in 0..NCOLOR {
        rows[1][c] = rows[1][c].scale(1.0 / n1);
    }
    // Row 2 = conj(row0 x row1): unitary completion with det = 1.
    let r0 = rows[0];
    let r1 = rows[1];
    let row2: ColorVector = [
        (r0[1] * r1[2] - r0[2] * r1[1]).conj(),
        (r0[2] * r1[0] - r0[0] * r1[2]).conj(),
        (r0[0] * r1[1] - r0[1] * r1[0]).conj(),
    ];
    [rows[0], rows[1], row2]
}

/// The two stored rows of a two-row compressed SU(3) link.
pub type TwoRowMatrix = [ColorVector; 2];

/// Two-row compression of an SU(3) link: keep rows 0 and 1 verbatim (12
/// reals instead of 18). Lossless for special-unitary matrices, whose third
/// row is determined by the first two.
pub fn compress_su3(u: &ColorMatrix) -> TwoRowMatrix {
    [u[0], u[1]]
}

/// Rebuild the full link from its two stored rows: the third row is the
/// conjugate cross product `conj(row0 × row1)` — the same unitary
/// completion [`project_su3`] uses, so for an exactly special-unitary input
/// `reconstruct_su3(&compress_su3(u))` recovers `u` to rounding.
pub fn reconstruct_su3(rows: &TwoRowMatrix) -> ColorMatrix {
    let (r0, r1) = (rows[0], rows[1]);
    let row2: ColorVector = [
        (r0[1] * r1[2] - r0[2] * r1[1]).conj(),
        (r0[2] * r1[0] - r0[0] * r1[2]).conj(),
        (r0[0] * r1[1] - r0[1] * r1[0]).conj(),
    ];
    [rows[0], rows[1], row2]
}

/// A deterministic pseudo-random SU(3) matrix for (seed, stream): two
/// random complex rows pushed through [`project_su3`].
pub fn random_su3(seed: u64, stream: u64) -> ColorMatrix {
    let rows: [ColorVector; 2] = std::array::from_fn(|r| {
        std::array::from_fn(|c| {
            Complex::new(
                uniform(seed, stream.wrapping_mul(64) + (r * 6 + c * 2) as u64),
                uniform(seed, stream.wrapping_mul(64) + (r * 6 + c * 2 + 1) as u64),
            )
        })
    });
    let zero: ColorVector = [Complex::ZERO; NCOLOR];
    project_su3(&[rows[0], rows[1], zero])
}

/// Fill a gauge field with deterministic random SU(3) links (one matrix per
/// site and direction, layout independent).
pub fn random_gauge<E: SveFloat>(grid: Arc<Grid<E>>, seed: u64) -> Field<GaugeKind, E> {
    let mut u = Field::<GaugeKind, E>::zero(grid.clone());
    for x in grid.coords() {
        let gidx = grid.global_index(&x);
        for mu in 0..NDIM {
            let m = random_su3(seed, stream_id(gidx, mu, 0) | 1);
            for r in 0..NCOLOR {
                for c in 0..NCOLOR {
                    u.poke(&x, gauge_comp(mu, r, c), m[r][c]);
                }
            }
        }
    }
    u
}

/// A unit (free-field) gauge configuration: every link the identity.
pub fn unit_gauge<E: SveFloat>(grid: Arc<Grid<E>>) -> Field<GaugeKind, E> {
    let mut u = Field::<GaugeKind, E>::zero(grid.clone());
    for x in grid.coords() {
        for mu in 0..NDIM {
            for r in 0..NCOLOR {
                u.poke(&x, gauge_comp(mu, r, r), Complex::ONE);
            }
        }
    }
    u
}

/// Read one link matrix at a site (scalar/test path).
pub fn peek_link<E: SveFloat>(u: &Field<GaugeKind, E>, x: &Coor, mu: usize) -> ColorMatrix {
    std::array::from_fn(|r| std::array::from_fn(|c| u.peek(x, gauge_comp(mu, r, c))))
}

// ---- word-level kernels (one product per virtual node per call) ----

/// `out[r] = Σ_c u[r][c] * v[c]` over SIMD words: 9 complex multiply-adds.
#[inline]
pub fn mat_vec<E: SveFloat>(
    eng: &SimdEngine<E>,
    u: &[[CVec; NCOLOR]; NCOLOR],
    v: &[CVec; NCOLOR],
) -> [CVec; NCOLOR] {
    std::array::from_fn(|r| {
        let mut acc = eng.mult(u[r][0], v[0]);
        acc = eng.madd(acc, u[r][1], v[1]);
        eng.madd(acc, u[r][2], v[2])
    })
}

/// `out[r] = Σ_c conj(u[c][r]) * v[c]` over SIMD words — the `U†` leg of the
/// hopping term, using the conjugated-FCMLA idiom (paper Eq. (2), second
/// line) instead of materializing the adjoint.
#[inline]
pub fn mat_dag_vec<E: SveFloat>(
    eng: &SimdEngine<E>,
    u: &[[CVec; NCOLOR]; NCOLOR],
    v: &[CVec; NCOLOR],
) -> [CVec; NCOLOR] {
    std::array::from_fn(|r| {
        let mut acc = eng.mult_conj(u[0][r], v[0]);
        acc = eng.madd_conj(acc, u[1][r], v[1]);
        eng.madd_conj(acc, u[2][r], v[2])
    })
}

/// Word-level third-row reconstruction: `row2[c] = conj(r0[a]·r1[b] −
/// r0[b]·r1[a])` with `(a, b)` cycling over colors — 6 complex multiplies
/// per word where loading the row would cost 3 word loads. This is the
/// compute the two-row operator mode trades for gauge bandwidth.
#[inline]
pub fn reconstruct_row2<E: SveFloat>(
    eng: &SimdEngine<E>,
    r0: &[CVec; NCOLOR],
    r1: &[CVec; NCOLOR],
) -> [CVec; NCOLOR] {
    std::array::from_fn(|c| {
        let (a, b) = ((c + 1) % NCOLOR, (c + 2) % NCOLOR);
        eng.conj(eng.sub(eng.mult(r0[a], r1[b]), eng.mult(r0[b], r1[a])))
    })
}

/// `out = a b` over SIMD words: the 3×3 complex matrix product (27
/// multiply-adds), one product per virtual node per call — the plaquette /
/// staple building block of the HMC gauge force.
#[inline]
pub fn mat_mul<E: SveFloat>(
    eng: &SimdEngine<E>,
    a: &[[CVec; NCOLOR]; NCOLOR],
    b: &[[CVec; NCOLOR]; NCOLOR],
) -> [[CVec; NCOLOR]; NCOLOR] {
    std::array::from_fn(|r| {
        std::array::from_fn(|c| {
            let mut acc = eng.mult(a[r][0], b[0][c]);
            acc = eng.madd(acc, a[r][1], b[1][c]);
            eng.madd(acc, a[r][2], b[2][c])
        })
    })
}

/// `out = a b†` over SIMD words, via the conjugated-FCMLA idiom
/// (`conj(b[c][k]) * a[r][k]` — complex multiplication commutes) instead of
/// materializing the adjoint.
#[inline]
pub fn mat_mul_dag<E: SveFloat>(
    eng: &SimdEngine<E>,
    a: &[[CVec; NCOLOR]; NCOLOR],
    b: &[[CVec; NCOLOR]; NCOLOR],
) -> [[CVec; NCOLOR]; NCOLOR] {
    std::array::from_fn(|r| {
        std::array::from_fn(|c| {
            let mut acc = eng.mult_conj(b[c][0], a[r][0]);
            acc = eng.madd_conj(acc, b[c][1], a[r][1]);
            eng.madd_conj(acc, b[c][2], a[r][2])
        })
    })
}

/// `out = a† b` over SIMD words (conjugated-FCMLA on the left factor).
#[inline]
pub fn mat_dag_mul<E: SveFloat>(
    eng: &SimdEngine<E>,
    a: &[[CVec; NCOLOR]; NCOLOR],
    b: &[[CVec; NCOLOR]; NCOLOR],
) -> [[CVec; NCOLOR]; NCOLOR] {
    std::array::from_fn(|r| {
        std::array::from_fn(|c| {
            let mut acc = eng.mult_conj(a[0][r], b[0][c]);
            acc = eng.madd_conj(acc, a[1][r], b[1][c]);
            eng.madd_conj(acc, a[2][r], b[2][c])
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::SimdBackend;
    use sve::VectorLength;

    #[test]
    fn random_su3_is_special_unitary() {
        for stream in 1..64u64 {
            let u = random_su3(11, stream);
            assert!(
                unitarity_defect(&u) < 1e-12,
                "stream {stream}: defect {}",
                unitarity_defect(&u)
            );
            let d = det(&u);
            assert!(
                (d - Complex::ONE).abs() < 1e-12,
                "stream {stream}: det {d:?}"
            );
        }
    }

    #[test]
    fn distinct_streams_give_distinct_matrices() {
        let a = random_su3(11, 1);
        let b = random_su3(11, 2);
        assert!((a[0][0] - b[0][0]).abs() > 1e-6);
    }

    #[test]
    fn scalar_mat_vec_identities() {
        let u = random_su3(3, 5);
        let v: ColorVector = [
            Complex::new(1.0, 2.0),
            Complex::new(-0.5, 0.25),
            Complex::new(0.0, -1.0),
        ];
        // U†(Uv) = v (unitarity).
        let uv = mat_vec_scalar(&u, &v);
        let back = mat_dag_vec_scalar(&u, &uv);
        for c in 0..NCOLOR {
            assert!((back[c] - v[c]).abs() < 1e-12);
        }
        // mat_dag_vec == mat_vec with the explicit adjoint.
        let explicit = mat_vec_scalar(&dagger(&u), &v);
        let implicit = mat_dag_vec_scalar(&u, &v);
        for c in 0..NCOLOR {
            assert!((explicit[c] - implicit[c]).abs() < 1e-13);
        }
    }

    #[test]
    fn word_level_matches_scalar_all_backends() {
        for backend in SimdBackend::all() {
            let eng = SimdEngine::<f64>::new(
                std::sync::Arc::new(sve::SveCtx::new(VectorLength::of(512))),
                backend,
            );
            // Different matrix/vector per lane.
            let mats: Vec<ColorMatrix> = (0..eng.lanes_c())
                .map(|l| random_su3(5, l as u64 + 1))
                .collect();
            let vecs: Vec<ColorVector> = (0..eng.lanes_c())
                .map(|l| {
                    std::array::from_fn(|c| Complex::new(l as f64 + c as f64 * 0.5, 1.0 - c as f64))
                })
                .collect();
            let u_words: [[CVec; 3]; 3] =
                std::array::from_fn(|r| std::array::from_fn(|c| eng.from_fn(|l| mats[l][r][c])));
            let v_words: [CVec; 3] = std::array::from_fn(|c| eng.from_fn(|l| vecs[l][c]));
            let uv = mat_vec(&eng, &u_words, &v_words);
            let udv = mat_dag_vec(&eng, &u_words, &v_words);
            for l in 0..eng.lanes_c() {
                let want = mat_vec_scalar(&mats[l], &vecs[l]);
                let want_dag = mat_dag_vec_scalar(&mats[l], &vecs[l]);
                for r in 0..NCOLOR {
                    assert!(
                        (eng.lane(uv[r], l) - want[r]).abs() < 1e-12,
                        "{backend:?} Uv lane {l} row {r}"
                    );
                    assert!(
                        (eng.lane(udv[r], l) - want_dag[r]).abs() < 1e-12,
                        "{backend:?} U†v lane {l} row {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn project_su3_restores_special_unitarity() {
        // Drift a good matrix by O(1e-6) per entry; the projection must
        // land back on SU(3) and stay within O(drift) of the original.
        let u = random_su3(19, 3);
        let mut drifted = u;
        for r in 0..NCOLOR {
            for c in 0..NCOLOR {
                drifted[r][c] += Complex::new(1e-6 * (r + 1) as f64, -1e-6 * (c as f64 - 1.0));
            }
        }
        assert!(unitarity_defect(&drifted) > 1e-7);
        let fixed = project_su3(&drifted);
        assert!(unitarity_defect(&fixed) < 1e-14);
        assert!((det(&fixed) - Complex::ONE).abs() < 1e-14);
        for r in 0..NCOLOR {
            for c in 0..NCOLOR {
                assert!((fixed[r][c] - u[r][c]).abs() < 1e-5, "moved too far");
            }
        }
        // Idempotent on an exact SU(3) matrix (up to rounding).
        let again = project_su3(&fixed);
        for r in 0..NCOLOR {
            for c in 0..NCOLOR {
                assert!((again[r][c] - fixed[r][c]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn word_level_matmul_matches_scalar_all_backends() {
        for backend in SimdBackend::all() {
            let eng = SimdEngine::<f64>::new(
                std::sync::Arc::new(sve::SveCtx::new(VectorLength::of(256))),
                backend,
            );
            let am: Vec<ColorMatrix> = (0..eng.lanes_c())
                .map(|l| random_su3(7, l as u64 + 1))
                .collect();
            let bm: Vec<ColorMatrix> = (0..eng.lanes_c())
                .map(|l| random_su3(8, l as u64 + 1))
                .collect();
            let aw: [[CVec; 3]; 3] =
                std::array::from_fn(|r| std::array::from_fn(|c| eng.from_fn(|l| am[l][r][c])));
            let bw: [[CVec; 3]; 3] =
                std::array::from_fn(|r| std::array::from_fn(|c| eng.from_fn(|l| bm[l][r][c])));
            let ab = mat_mul(&eng, &aw, &bw);
            let abd = mat_mul_dag(&eng, &aw, &bw);
            let adb = mat_dag_mul(&eng, &aw, &bw);
            for l in 0..eng.lanes_c() {
                let want_ab = mat_mul_scalar(&am[l], &bm[l]);
                let want_abd = mat_mul_scalar(&am[l], &dagger(&bm[l]));
                let want_adb = mat_mul_scalar(&dagger(&am[l]), &bm[l]);
                for r in 0..NCOLOR {
                    for c in 0..NCOLOR {
                        assert!(
                            (eng.lane(ab[r][c], l) - want_ab[r][c]).abs() < 1e-12,
                            "{backend:?} AB lane {l} ({r},{c})"
                        );
                        assert!(
                            (eng.lane(abd[r][c], l) - want_abd[r][c]).abs() < 1e-12,
                            "{backend:?} AB† lane {l} ({r},{c})"
                        );
                        assert!(
                            (eng.lane(adb[r][c], l) - want_adb[r][c]).abs() < 1e-12,
                            "{backend:?} A†B lane {l} ({r},{c})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn two_row_round_trip_is_exact_to_rounding() {
        // Satellite: ‖U − rec(compress(U))‖ ≤ 1e-13 on random SU(3) links.
        for stream in 1..64u64 {
            let u = random_su3(41, stream);
            let back = reconstruct_su3(&compress_su3(&u));
            let mut worst: f64 = 0.0;
            for r in 0..NCOLOR {
                for c in 0..NCOLOR {
                    worst = worst.max((u[r][c] - back[r][c]).abs());
                }
            }
            assert!(worst <= 1e-13, "stream {stream}: error {worst}");
            // Rows 0 and 1 are bit-identical (carried verbatim).
            for r in 0..2 {
                for c in 0..NCOLOR {
                    assert_eq!(u[r][c], back[r][c], "stream {stream} row {r}");
                }
            }
        }
    }

    #[test]
    fn word_level_row2_matches_scalar_all_backends() {
        for backend in SimdBackend::all() {
            let eng = SimdEngine::<f64>::new(
                std::sync::Arc::new(sve::SveCtx::new(VectorLength::of(512))),
                backend,
            );
            let mats: Vec<ColorMatrix> = (0..eng.lanes_c())
                .map(|l| random_su3(13, l as u64 + 1))
                .collect();
            let r0: [CVec; 3] = std::array::from_fn(|c| eng.from_fn(|l| mats[l][0][c]));
            let r1: [CVec; 3] = std::array::from_fn(|c| eng.from_fn(|l| mats[l][1][c]));
            let row2 = reconstruct_row2(&eng, &r0, &r1);
            for l in 0..eng.lanes_c() {
                let want = reconstruct_su3(&compress_su3(&mats[l]))[2];
                for c in 0..NCOLOR {
                    assert!(
                        (eng.lane(row2[c], l) - want[c]).abs() < 1e-13,
                        "{backend:?} lane {l} col {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn gauge_field_fill_and_peek() {
        let grid = Grid::<f64>::new([4, 4, 4, 4], VectorLength::of(256), SimdBackend::Fcmla);
        let u = random_gauge(grid.clone(), 2);
        for x in grid.coords().take(8) {
            for mu in 0..NDIM {
                let link = peek_link(&u, &x, mu);
                assert!(unitarity_defect(&link) < 1e-12, "{x:?} mu={mu}");
            }
        }
        // Layout independence.
        let u2 = random_gauge(
            Grid::<f64>::new([4, 4, 4, 4], VectorLength::of(1024), SimdBackend::Fcmla),
            2,
        );
        let x = [1, 2, 3, 0];
        assert_eq!(peek_link(&u, &x, 1), peek_link(&u2, &x, 1));
    }

    #[test]
    fn unit_gauge_links_are_identity() {
        let grid = Grid::<f64>::new([2, 2, 2, 2], VectorLength::of(128), SimdBackend::Fcmla);
        let u = unit_gauge(grid.clone());
        let link = peek_link(&u, &[1, 0, 1, 0], 2);
        for r in 0..NCOLOR {
            for c in 0..NCOLOR {
                let want = if r == c { Complex::ONE } else { Complex::ZERO };
                assert_eq!(link[r][c], want);
            }
        }
    }
}
