//! Site-local tensor algebra: SU(3) color matrices, spinors and the Dirac
//! gamma matrices (paper, Section II-A).

pub mod gamma;
pub mod gamma_algebra;
pub mod su3;

pub use gamma::{proj_table, project, reconstruct, Coeff, Gamma, ProjTable};
pub use gamma_algebra::{mult_gamma, GammaElement, SpinPerm};
pub use su3::{
    dagger, det, mat_dag_vec, mat_dag_vec_scalar, mat_mul_scalar, mat_vec, mat_vec_scalar,
    peek_link, random_gauge, random_su3, unit_gauge, unitarity_defect, ColorMatrix, ColorVector,
};
