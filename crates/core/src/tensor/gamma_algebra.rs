//! The full Clifford algebra of gamma matrices.
//!
//! Grid exposes every product of gamma matrices as a named algebra element
//! (`Gamma::Algebra::GammaX`, `SigmaXY`, `GammaXGamma5`, ...), because
//! physics code multiplies spinors by them constantly (currents, bilinears,
//! clover terms). In the chiral basis every such element is a *signed spin
//! permutation*: each row has exactly one nonzero entry, `±1` or `±i`.
//! [`SpinPerm`] captures that closed form — products, adjoints and field
//! application never touch a dense 4×4 matrix, and applying an element to a
//! fermion field costs one coefficient op per spin component per color.

use crate::complex::Complex;
use crate::field::{spinor_comp, FermionKind, Field};
use crate::layout::{NCOLOR, NSPIN};
use crate::tensor::gamma::{Coeff, Gamma};
use sve::SveFloat;

impl std::ops::Mul for Coeff {
    type Output = Coeff;

    /// Multiply two fourth-roots-of-unity coefficients.
    fn mul(self, rhs: Coeff) -> Coeff {
        use Coeff::*;
        let to_k = |c: Coeff| match c {
            One => 0u8,
            I => 1,
            MinusOne => 2,
            MinusI => 3,
        };
        match (to_k(self) + to_k(rhs)) % 4 {
            0 => One,
            1 => I,
            2 => MinusOne,
            _ => MinusI,
        }
    }
}

impl Coeff {
    /// Complex conjugate of the coefficient.
    pub fn conj(self) -> Coeff {
        match self {
            Coeff::I => Coeff::MinusI,
            Coeff::MinusI => Coeff::I,
            other => other,
        }
    }

    /// As a scalar complex number.
    pub fn value(self) -> Complex {
        self.apply(Complex::ONE)
    }
}

/// A signed spin permutation: row `r` of the matrix has its only nonzero
/// entry `coeff[r]` in column `src[r]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpinPerm {
    /// Source spin index per output row.
    pub src: [usize; NSPIN],
    /// Coefficient per output row.
    pub coeff: [Coeff; NSPIN],
}

impl SpinPerm {
    /// The identity element.
    pub const IDENTITY: SpinPerm = SpinPerm {
        src: [0, 1, 2, 3],
        coeff: [Coeff::One; 4],
    };

    /// Build from a dense matrix that is a signed permutation (panics
    /// otherwise — all Clifford elements in this basis are).
    pub fn from_matrix(m: &[[Complex; NSPIN]; NSPIN]) -> SpinPerm {
        let mut src = [0; NSPIN];
        let mut coeff = [Coeff::One; NSPIN];
        for r in 0..NSPIN {
            let mut found = None;
            for c in 0..NSPIN {
                let z = m[r][c];
                if z.abs() > 0.5 {
                    assert!(found.is_none(), "row {r} has multiple entries");
                    let k = if (z - Complex::ONE).abs() < 1e-12 {
                        Coeff::One
                    } else if (z + Complex::ONE).abs() < 1e-12 {
                        Coeff::MinusOne
                    } else if (z - Complex::I).abs() < 1e-12 {
                        Coeff::I
                    } else if (z + Complex::I).abs() < 1e-12 {
                        Coeff::MinusI
                    } else {
                        panic!("entry {z:?} is not a fourth root of unity");
                    };
                    found = Some((c, k));
                }
            }
            let (c, k) = found.expect("row without entries");
            src[r] = c;
            coeff[r] = k;
        }
        SpinPerm { src, coeff }
    }

    /// Hermitian conjugate.
    pub fn adjoint(self) -> SpinPerm {
        let mut out = SpinPerm::IDENTITY;
        for r in 0..NSPIN {
            // Entry (r, src[r]) = coeff[r] maps to entry (src[r], r) =
            // conj(coeff[r]).
            out.src[self.src[r]] = r;
            out.coeff[self.src[r]] = self.coeff[r].conj();
        }
        out
    }

    /// Apply to a scalar spin vector.
    pub fn apply(&self, s: &[Complex; NSPIN]) -> [Complex; NSPIN] {
        std::array::from_fn(|r| self.coeff[r].apply(s[self.src[r]]))
    }

    /// Dense matrix form (test/interop path).
    pub fn matrix(&self) -> [[Complex; NSPIN]; NSPIN] {
        let mut m = [[Complex::ZERO; NSPIN]; NSPIN];
        for r in 0..NSPIN {
            m[r][self.src[r]] = self.coeff[r].value();
        }
        m
    }
}

impl std::ops::Mul for SpinPerm {
    type Output = SpinPerm;

    /// Matrix product `self * rhs`.
    fn mul(self, rhs: SpinPerm) -> SpinPerm {
        let mut out = SpinPerm::IDENTITY;
        for r in 0..NSPIN {
            // (A B) row r: A picks column src_a with coeff_a; B's row src_a
            // picks column src_b with coeff_b.
            let (sa, ca) = (self.src[r], self.coeff[r]);
            out.src[r] = rhs.src[sa];
            out.coeff[r] = ca * rhs.coeff[sa];
        }
        out
    }
}

impl std::ops::Neg for SpinPerm {
    type Output = SpinPerm;

    /// Negate (multiply by −1).
    fn neg(self) -> SpinPerm {
        let mut out = self;
        for c in &mut out.coeff {
            *c = *c * Coeff::MinusOne;
        }
        out
    }
}

/// The sixteen basis elements of the Clifford algebra, named as Grid names
/// them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GammaElement {
    /// The identity.
    Identity,
    /// γx.
    GammaX,
    /// γy.
    GammaY,
    /// γz.
    GammaZ,
    /// γt.
    GammaT,
    /// γ5.
    Gamma5,
    /// γx γ5.
    GammaXGamma5,
    /// γy γ5.
    GammaYGamma5,
    /// γz γ5.
    GammaZGamma5,
    /// γt γ5.
    GammaTGamma5,
    /// σxy = γx γy.
    SigmaXY,
    /// σxz = γx γz.
    SigmaXZ,
    /// σxt = γx γt.
    SigmaXT,
    /// σyz = γy γz.
    SigmaYZ,
    /// σyt = γy γt.
    SigmaYT,
    /// σzt = γz γt.
    SigmaZT,
}

impl GammaElement {
    /// All sixteen elements.
    pub fn all() -> [GammaElement; 16] {
        use GammaElement::*;
        [
            Identity,
            GammaX,
            GammaY,
            GammaZ,
            GammaT,
            Gamma5,
            GammaXGamma5,
            GammaYGamma5,
            GammaZGamma5,
            GammaTGamma5,
            SigmaXY,
            SigmaXZ,
            SigmaXT,
            SigmaYZ,
            SigmaYT,
            SigmaZT,
        ]
    }

    /// The signed spin permutation of this element.
    pub fn perm(self) -> SpinPerm {
        use GammaElement::*;
        let g = |gm: Gamma| SpinPerm::from_matrix(&gm.matrix());
        match self {
            Identity => SpinPerm::IDENTITY,
            GammaX => g(Gamma::X),
            GammaY => g(Gamma::Y),
            GammaZ => g(Gamma::Z),
            GammaT => g(Gamma::T),
            Gamma5 => g(Gamma::Five),
            GammaXGamma5 => g(Gamma::X) * g(Gamma::Five),
            GammaYGamma5 => g(Gamma::Y) * g(Gamma::Five),
            GammaZGamma5 => g(Gamma::Z) * g(Gamma::Five),
            GammaTGamma5 => g(Gamma::T) * g(Gamma::Five),
            SigmaXY => g(Gamma::X) * g(Gamma::Y),
            SigmaXZ => g(Gamma::X) * g(Gamma::Z),
            SigmaXT => g(Gamma::X) * g(Gamma::T),
            SigmaYZ => g(Gamma::Y) * g(Gamma::Z),
            SigmaYT => g(Gamma::Y) * g(Gamma::T),
            SigmaZT => g(Gamma::Z) * g(Gamma::T),
        }
    }
}

/// Multiply a fermion field by a Clifford element: one coefficient op
/// (`fneg`/`fcadd`/nothing) per spin component per color — never a dense
/// matrix multiply.
pub fn mult_gamma<E: SveFloat>(
    element: GammaElement,
    psi: &Field<FermionKind, E>,
) -> Field<FermionKind, E> {
    let perm = element.perm();
    let grid = psi.grid().clone();
    let eng = grid.engine();
    let mut out = Field::<FermionKind, E>::zero(grid.clone());
    for osite in 0..grid.osites() {
        for r in 0..NSPIN {
            for c in 0..NCOLOR {
                let v = eng.load(psi.word(osite, spinor_comp(perm.src[r], c)));
                let w = match perm.coeff[r] {
                    Coeff::One => v,
                    Coeff::MinusOne => eng.neg(v),
                    Coeff::I => eng.times_i(v),
                    Coeff::MinusI => eng.times_minus_i(v),
                };
                eng.store(out.word_mut(osite, spinor_comp(r, c)), w);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Grid;
    use crate::simd::SimdBackend;
    use sve::VectorLength;

    fn dense_mul(a: &[[Complex; 4]; 4], b: &[[Complex; 4]; 4]) -> [[Complex; 4]; 4] {
        std::array::from_fn(|r| {
            std::array::from_fn(|c| (0..4).fold(Complex::ZERO, |acc, k| acc + a[r][k] * b[k][c]))
        })
    }

    fn close(a: &[[Complex; 4]; 4], b: &[[Complex; 4]; 4]) -> bool {
        (0..4).all(|r| (0..4).all(|c| (a[r][c] - b[r][c]).abs() < 1e-13))
    }

    #[test]
    fn coeff_group_is_z4() {
        use Coeff::*;
        assert_eq!(I * I, MinusOne);
        assert_eq!(I * MinusI, One);
        assert_eq!(MinusOne * MinusOne, One);
        assert_eq!(I.conj(), MinusI);
        assert_eq!(One.conj(), One);
        for a in [One, I, MinusOne, MinusI] {
            assert_eq!(a * One, a);
            // |c|^2 = 1: c * conj(c) = 1.
            assert_eq!(a * a.conj(), One);
        }
    }

    #[test]
    fn every_gamma_is_a_signed_permutation() {
        for g in [Gamma::X, Gamma::Y, Gamma::Z, Gamma::T, Gamma::Five] {
            let p = SpinPerm::from_matrix(&g.matrix());
            assert!(close(&p.matrix(), &g.matrix()), "{g:?}");
        }
    }

    #[test]
    fn perm_product_matches_dense_product_exhaustively() {
        // All 16 x 16 products agree with dense matrix multiplication.
        for a in GammaElement::all() {
            for b in GammaElement::all() {
                let lhs = (a.perm() * b.perm()).matrix();
                let rhs = dense_mul(&a.perm().matrix(), &b.perm().matrix());
                assert!(close(&lhs, &rhs), "{a:?} * {b:?}");
            }
        }
    }

    #[test]
    fn adjoint_matches_dense_conjugate_transpose() {
        for a in GammaElement::all() {
            let adj = a.perm().adjoint().matrix();
            let dense = a.perm().matrix();
            let want: [[Complex; 4]; 4] =
                std::array::from_fn(|r| std::array::from_fn(|c| dense[c][r].conj()));
            assert!(close(&adj, &want), "{a:?}");
        }
    }

    #[test]
    fn gammas_are_hermitian_and_sigmas_antihermitian() {
        use GammaElement::*;
        for g in [GammaX, GammaY, GammaZ, GammaT, Gamma5] {
            assert_eq!(g.perm().adjoint(), g.perm(), "{g:?} must be hermitian");
        }
        for s in [
            SigmaXY,
            SigmaXZ,
            SigmaXT,
            SigmaYZ,
            SigmaYT,
            SigmaZT,
            GammaXGamma5,
            GammaYGamma5,
            GammaZGamma5,
            GammaTGamma5,
        ] {
            assert_eq!(s.perm().adjoint(), -s.perm(), "{s:?} must be antihermitian");
        }
    }

    #[test]
    fn algebra_squares() {
        use GammaElement::*;
        // γµ² = 1, γ5² = 1, σµν² = −1.
        for g in [GammaX, GammaY, GammaZ, GammaT, Gamma5] {
            assert_eq!(g.perm() * g.perm(), SpinPerm::IDENTITY);
        }
        for s in [SigmaXY, SigmaXZ, SigmaXT, SigmaYZ, SigmaYT, SigmaZT] {
            assert_eq!(s.perm() * s.perm(), -SpinPerm::IDENTITY);
        }
    }

    #[test]
    fn gamma5_is_odd_under_each_direction() {
        use GammaElement::*;
        for (g, g5g) in [
            (GammaX, GammaXGamma5),
            (GammaY, GammaYGamma5),
            (GammaZ, GammaZGamma5),
            (GammaT, GammaTGamma5),
        ] {
            // γµ γ5 as built equals the named element, and γ5 γµ = −γµ γ5.
            assert_eq!(g.perm() * Gamma5.perm(), g5g.perm());
            assert_eq!(Gamma5.perm() * g.perm(), -g5g.perm());
        }
    }

    #[test]
    fn sixteen_elements_are_linearly_independent() {
        // In this basis they are distinct signed permutations; pairwise
        // distinct up to sign is enough to span the 4x4 algebra.
        let all = GammaElement::all();
        for (i, a) in all.iter().enumerate() {
            for b in all.iter().skip(i + 1) {
                assert_ne!(a.perm(), b.perm(), "{a:?} == {b:?}");
                assert_ne!(a.perm(), -b.perm(), "{a:?} == -{b:?}");
            }
        }
    }

    #[test]
    fn field_multiplication_matches_scalar_application() {
        let g = Grid::new([2, 2, 2, 4], VectorLength::of(512), SimdBackend::Fcmla);
        let psi = Field::<FermionKind, f64>::random(g.clone(), 31);
        for element in GammaElement::all() {
            let out = mult_gamma(element, &psi);
            let perm = element.perm();
            for x in g.coords().step_by(3) {
                for c in 0..NCOLOR {
                    let s: [Complex; 4] =
                        std::array::from_fn(|sp| psi.peek(&x, spinor_comp(sp, c)));
                    let want = perm.apply(&s);
                    for sp in 0..NSPIN {
                        let got = out.peek(&x, spinor_comp(sp, c));
                        assert_eq!(got, want[sp], "{element:?} {x:?} spin {sp}");
                    }
                }
            }
        }
    }

    #[test]
    fn field_gamma5_matches_dirac_gamma5() {
        let g = Grid::new([2, 2, 2, 4], VectorLength::of(256), SimdBackend::Fcmla);
        let psi = Field::<FermionKind, f64>::random(g.clone(), 32);
        let a = mult_gamma(GammaElement::Gamma5, &psi);
        let b = crate::dirac::gamma5(&psi);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn gamma_bilinears_are_computable() {
        // <ψ| Γ |ψ> for hermitian Γ is real — a standard physics smoke test
        // of the algebra + inner-product machinery together.
        use GammaElement::*;
        let g = Grid::new([2, 2, 2, 4], VectorLength::of(512), SimdBackend::Fcmla);
        let psi = Field::<FermionKind, f64>::random(g.clone(), 33);
        // Hermitian elements -> real bilinears.
        for element in [Identity, GammaX, GammaT, Gamma5] {
            let bilinear = psi.inner(&mult_gamma(element, &psi));
            assert!(
                bilinear.im.abs() < 1e-9 * bilinear.re.abs().max(1.0),
                "{element:?}: <ψ|Γ|ψ> = {bilinear:?} not real"
            );
        }
        // Antihermitian elements (γµγ5, σµν) -> purely imaginary bilinears.
        for element in [GammaXGamma5, GammaTGamma5, SigmaXY, SigmaZT] {
            let bilinear = psi.inner(&mult_gamma(element, &psi));
            assert!(
                bilinear.re.abs() < 1e-9 * bilinear.im.abs().max(1.0),
                "{element:?}: <ψ|Γ|ψ> = {bilinear:?} not imaginary"
            );
        }
    }
}
