//! Domain-wall fermions — Grid's flagship operator.
//!
//! Grid was built for domain-wall QCD (its headline benchmark is
//! `Benchmark_dwf`, one of the "ready-made tests and benchmarks" behind the
//! paper's Section V-D campaign). The Shamir operator adds a fifth
//! dimension of extent `Ls`: each slice carries a 4-D Wilson operator at
//! negative mass `−M5`, and slices couple through the chiral projectors
//! `P± = (1 ± γ5)/2`, with the physical quark mass `m_f` entering only at
//! the 5-D boundary:
//!
//! ```text
//! (D ψ)_s = (D_W(−M5) + 1) ψ_s − P₋ ψ_{s+1} − P₊ ψ_{s−1}
//! (D ψ)_0      : P₊ leg wraps to s = Ls−1 with factor −m_f → +m_f P₊ ψ_{Ls−1}
//! (D ψ)_{Ls−1} : P₋ leg wraps to s = 0     with factor −m_f → +m_f P₋ ψ_0
//! ```
//!
//! Computationally this is `Ls` independent Wilson hopping terms (the
//! paper's Eq. (1) kernel) plus cheap slice-local chiral projections —
//! which is exactly why wide vectors pay off for domain-wall QCD.

use crate::dirac::{gamma5, WilsonDirac};
use crate::field::{spinor_comp, FermionField, GaugeField};
use crate::layout::NCOLOR;
use crate::solver::SolveReport;
use crate::Complex;
use rayon::prelude::*;

/// Chiral projection `P₊ ψ = (ψ + γ5 ψ)/2`.
pub fn chiral_plus(psi: &FermionField) -> FermionField {
    let mut out = gamma5(psi);
    out.add_assign_field(psi);
    out.scale(0.5);
    out
}

/// Chiral projection `P₋ ψ = (ψ − γ5 ψ)/2`.
pub fn chiral_minus(psi: &FermionField) -> FermionField {
    let g = gamma5(psi);
    let mut out = psi.clone();
    out.axpy_inplace(-1.0, &g);
    out.scale(0.5);
    out
}

/// `out += coef · P± x` without materializing the projection: γ5 is
/// `diag(1,1,−1,−1)` on spin, so `P₊` keeps spin rows 0,1 and `P₋` keeps
/// rows 2,3 exactly — the kept components take one fused `fmla` per word
/// and the dropped ones are untouched. This is the 5-D hopping leg of the
/// domain-wall operator as a single allocation-free parallel sweep.
pub fn axpy_chiral(out: &mut FermionField, coef: f64, x: &FermionField, plus: bool) {
    let grid = out.grid().clone();
    let eng = grid.engine();
    let word = eng.word_len();
    let stride = out.site_stride();
    let c_dup = eng.dup_real(coef);
    let spins = if plus { 0..2 } else { 2..4 };
    let xd = x.data();
    out.data_mut()
        .par_chunks_mut(stride)
        .enumerate()
        .for_each(|(site, sw)| {
            let base = site * stride;
            for s in spins.clone() {
                for c in 0..NCOLOR {
                    let comp = spinor_comp(s, c);
                    let w = &mut sw[comp * word..(comp + 1) * word];
                    let off = base + comp * word;
                    let xv = eng.load(&xd[off..off + word]);
                    let sv = eng.load(w);
                    eng.store(w, eng.axpy_word(c_dup, xv, sv));
                }
            }
        });
}

/// A 5-D fermion: `Ls` four-dimensional spinor fields.
#[derive(Clone)]
pub struct Fermion5 {
    /// The 4-D slices, `s = 0 .. Ls`.
    pub slices: Vec<FermionField>,
}

impl Fermion5 {
    /// A zero 5-D fermion with `ls` slices.
    pub fn zero(grid: std::sync::Arc<crate::Grid>, ls: usize) -> Self {
        Fermion5 {
            slices: (0..ls).map(|_| FermionField::zero(grid.clone())).collect(),
        }
    }

    /// Deterministic random content (per-slice seeds derived from `seed`).
    pub fn random(grid: std::sync::Arc<crate::Grid>, ls: usize, seed: u64) -> Self {
        Fermion5 {
            slices: (0..ls)
                .map(|s| FermionField::random(grid.clone(), seed.wrapping_add(s as u64 * 7919)))
                .collect(),
        }
    }

    /// Number of 5th-dimension slices.
    pub fn ls(&self) -> usize {
        self.slices.len()
    }

    /// Global squared norm over all slices.
    pub fn norm2(&self) -> f64 {
        self.slices.iter().map(|f| f.norm2()).sum()
    }

    /// Global inner product over all slices.
    pub fn inner(&self, other: &Fermion5) -> Complex {
        self.slices
            .iter()
            .zip(&other.slices)
            .fold(Complex::ZERO, |acc, (a, b)| acc + a.inner(b))
    }

    /// `self += a * x` slice-wise.
    pub fn axpy_inplace(&mut self, a: f64, x: &Fermion5) {
        for (s, xs) in self.slices.iter_mut().zip(&x.slices) {
            s.axpy_inplace(a, xs);
        }
    }

    /// `self = x + a * self` slice-wise.
    pub fn aypx(&mut self, a: f64, x: &Fermion5) {
        for (s, xs) in self.slices.iter_mut().zip(&x.slices) {
            s.aypx(a, xs);
        }
    }

    /// `self = x - y` slice-wise.
    pub fn sub(&mut self, x: &Fermion5, y: &Fermion5) {
        for ((s, xs), ys) in self.slices.iter_mut().zip(&x.slices).zip(&y.slices) {
            s.sub(xs, ys);
        }
    }

    /// Fused `self += a * x` returning the new `|self|²`, slice-wise (one
    /// pass per slice, partial norms summed in slice order so the result is
    /// deterministic).
    pub fn axpy_norm2(&mut self, a: f64, x: &Fermion5) -> f64 {
        self.slices
            .iter_mut()
            .zip(&x.slices)
            .map(|(s, xs)| s.axpy_norm2(a, xs))
            .sum()
    }

    /// Maximum absolute difference across all slices.
    pub fn max_abs_diff(&self, other: &Fermion5) -> f64 {
        self.slices
            .iter()
            .zip(&other.slices)
            .map(|(a, b)| a.max_abs_diff(b))
            .fold(0.0, f64::max)
    }
}

/// The Shamir domain-wall operator.
pub struct DomainWall {
    wilson: WilsonDirac<f64>,
    /// 5th-dimension extent.
    pub ls: usize,
    /// Domain-wall height (the Wilson operator runs at mass `−M5`).
    pub m5: f64,
    /// Physical quark mass (the 5-D boundary coupling).
    pub mf: f64,
}

impl DomainWall {
    /// Build from a gauge configuration, `Ls`, domain-wall height `m5` and
    /// quark mass `mf`.
    pub fn new(u: GaugeField, ls: usize, m5: f64, mf: f64) -> Self {
        assert!(ls >= 2, "domain-wall fermions need Ls >= 2");
        DomainWall {
            wilson: WilsonDirac::new(u, -m5),
            ls,
            m5,
            mf,
        }
    }

    /// The underlying 4-D Wilson operator (at mass `−M5`).
    pub fn wilson(&self) -> &WilsonDirac<f64> {
        &self.wilson
    }

    fn apply_impl_into(&self, psi: &Fermion5, out: &mut Fermion5, dagger: bool) {
        assert_eq!(psi.ls(), self.ls);
        assert_eq!(out.ls(), self.ls);
        let ls = self.ls;
        // 5-D hopping projectors: the adjoint swaps P₋ and P₊ (they are
        // hermitian and the shift direction reverses).
        let (up_plus, dn_plus) = if dagger { (true, false) } else { (false, true) };
        for s in 0..ls {
            let slice = &mut out.slices[s];
            // 4-D part: (D_W + 1) ψ_s, slice-diagonal; the Wilson mass axpy
            // is fused into the hopping sweep.
            if dagger {
                self.wilson.apply_dag_into(&psi.slices[s], slice);
            } else {
                self.wilson.apply_into(&psi.slices[s], slice);
            }
            slice.axpy_inplace(1.0, &psi.slices[s]);

            // Up leg (needs slice s+1): −P ψ_{s+1}, wrapping with −m_f.
            let (up_idx, up_coef) = if s + 1 == ls {
                (0, self.mf)
            } else {
                (s + 1, -1.0)
            };
            axpy_chiral(slice, up_coef, &psi.slices[up_idx], up_plus);
            // Down leg (needs slice s−1): −P ψ_{s−1}, wrapping with −m_f.
            let (dn_idx, dn_coef) = if s == 0 {
                (ls - 1, self.mf)
            } else {
                (s - 1, -1.0)
            };
            axpy_chiral(slice, dn_coef, &psi.slices[dn_idx], dn_plus);
        }
    }

    /// `D ψ`.
    pub fn apply(&self, psi: &Fermion5) -> Fermion5 {
        let mut out = Fermion5::zero(psi.slices[0].grid().clone(), psi.ls());
        self.apply_into(psi, &mut out);
        out
    }

    /// `D† ψ`.
    pub fn apply_dag(&self, psi: &Fermion5) -> Fermion5 {
        let mut out = Fermion5::zero(psi.slices[0].grid().clone(), psi.ls());
        self.apply_dag_into(psi, &mut out);
        out
    }

    /// `out = D ψ` without allocating.
    pub fn apply_into(&self, psi: &Fermion5, out: &mut Fermion5) {
        self.apply_impl_into(psi, out, false);
    }

    /// `out = D† ψ` without allocating.
    pub fn apply_dag_into(&self, psi: &Fermion5, out: &mut Fermion5) {
        self.apply_impl_into(psi, out, true);
    }

    /// The normal operator `D†D`.
    pub fn ddag_d(&self, psi: &Fermion5) -> Fermion5 {
        let grid = psi.slices[0].grid().clone();
        let mut tmp = Fermion5::zero(grid.clone(), psi.ls());
        let mut out = Fermion5::zero(grid, psi.ls());
        self.ddag_d_into(psi, &mut tmp, &mut out);
        out
    }

    /// `out = D†D ψ` using caller-provided storage (`tmp` holds `D ψ`).
    pub fn ddag_d_into(&self, psi: &Fermion5, tmp: &mut Fermion5, out: &mut Fermion5) {
        self.apply_into(psi, tmp);
        self.apply_dag_into(tmp, out);
    }
}

/// Apply the 5-D reflection `R5: s → Ls−1−s` composed with slice-wise γ5 —
/// the unitary involution behind domain-wall Γ5-hermiticity,
/// `D† = (R5 γ5) D (R5 γ5)`.
pub fn r5_gamma5(psi: &Fermion5) -> Fermion5 {
    Fermion5 {
        slices: psi.slices.iter().rev().map(gamma5).collect(),
    }
}

/// Conjugate Gradient on the domain-wall normal equations `D†D x = b`.
///
/// Runs allocation-free in steady state: the `D ψ` intermediate and the
/// operator output live in two preallocated 5-D workspaces reused across
/// iterations, the residual update is the fused `axpy_norm2` sweep, and no
/// per-iteration telemetry span is opened (span entry allocates; the
/// solve-level span still collects flops and bytes).
pub fn cg_dwf(op: &DomainWall, b: &Fermion5, tol: f64, max_iter: usize) -> (Fermion5, SolveReport) {
    let b_norm2 = b.norm2();
    assert!(b_norm2 > 0.0, "CG needs a nonzero right-hand side");
    let grid = b.slices[0].grid().clone();
    let span = qcd_trace::span!("solver.cg_dwf", grid.engine().ctx());
    let ls = b.ls();
    let mut x = Fermion5::zero(grid.clone(), ls);
    let mut r = b.clone();
    let mut p = r.clone();
    let mut tmp = Fermion5::zero(grid.clone(), ls);
    let mut ap = Fermion5::zero(grid.clone(), ls);
    let mut r2 = r.norm2();
    let target = tol * tol * b_norm2;
    let mut history = Vec::with_capacity(max_iter + 1);
    history.push((r2 / b_norm2).sqrt());
    let mut monitor = qcd_metrics::HealthMonitor::new("solver.cg_dwf");
    monitor.replay(&history);
    let mut iterations = 0;
    while iterations < max_iter && r2 > target {
        op.ddag_d_into(&p, &mut tmp, &mut ap);
        let p_ap = p.inner(&ap).re;
        assert!(p_ap > 0.0, "operator not HPD?");
        let alpha = r2 / p_ap;
        x.axpy_inplace(alpha, &p);
        let r2_new = r.axpy_norm2(-alpha, &ap);
        p.aypx(r2_new / r2, &r);
        r2 = r2_new;
        iterations += 1;
        let rel = (r2 / b_norm2).sqrt();
        history.push(rel);
        monitor.observe(rel);
    }
    // True residual check, reusing the workspaces and the spent residual.
    op.ddag_d_into(&x, &mut tmp, &mut ap);
    r.sub(b, &ap);
    let residual = (r.norm2() / b_norm2).sqrt();
    let (capped, _kept) = qcd_metrics::bound_history(
        &history,
        &monitor.flagged_iterations(),
        crate::solver::HISTORY_CAP,
    );
    qcd_metrics::histogram("solver.cg_dwf.iterations").record(iterations as u64);
    qcd_metrics::counter("solver.solves").inc();
    (
        x,
        SolveReport {
            iterations,
            residual,
            converged: r2 <= target,
            history: capped,
            health: monitor.into_events(),
            telemetry: span.finish(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::SimdBackend;
    use crate::tensor::su3::random_gauge;
    use crate::Grid;
    use std::sync::Arc;
    use sve::VectorLength;

    fn setup(ls: usize) -> (DomainWall, Arc<Grid>) {
        let g = Grid::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 161);
        (DomainWall::new(u, ls, 1.8, 0.04), g)
    }

    #[test]
    fn chiral_projectors_are_projectors() {
        let g = Grid::new([2, 2, 2, 4], VectorLength::of(256), SimdBackend::Fcmla);
        let psi = FermionField::random(g.clone(), 162);
        let p = chiral_plus(&psi);
        let m = chiral_minus(&psi);
        // P² = P.
        assert!(chiral_plus(&p).max_abs_diff(&p) < 1e-13);
        assert!(chiral_minus(&m).max_abs_diff(&m) < 1e-13);
        // P₊ P₋ = 0.
        assert!(chiral_plus(&m).norm2() < 1e-24);
        // P₊ + P₋ = 1.
        let mut sum = p.clone();
        sum.add_assign_field(&m);
        assert!(sum.max_abs_diff(&psi) < 1e-13);
        // γ5 P₊ = P₊.
        assert!(gamma5(&p).max_abs_diff(&p) < 1e-13);
    }

    #[test]
    fn operator_is_linear_over_slices() {
        let (op, g) = setup(4);
        let a = Fermion5::random(g.clone(), 4, 163);
        let b = Fermion5::random(g.clone(), 4, 164);
        let mut combo = a.clone();
        combo.axpy_inplace(2.0, &b);
        let lhs = op.apply(&combo);
        let mut rhs = op.apply(&a);
        rhs.axpy_inplace(2.0, &op.apply(&b));
        assert!(lhs.max_abs_diff(&rhs) < 1e-10);
    }

    #[test]
    fn adjoint_is_the_true_adjoint() {
        let (op, g) = setup(4);
        let phi = Fermion5::random(g.clone(), 4, 165);
        let psi = Fermion5::random(g.clone(), 4, 166);
        let a = phi.inner(&op.apply(&psi));
        let b = op.apply_dag(&phi).inner(&psi);
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a:?} vs {b:?}");
    }

    #[test]
    fn r5_gamma5_hermiticity() {
        // D† = (R5 γ5) D (R5 γ5): the domain-wall form of γ5-hermiticity.
        let (op, g) = setup(6);
        let psi = Fermion5::random(g.clone(), 6, 167);
        let lhs = r5_gamma5(&op.apply(&r5_gamma5(&psi)));
        let rhs = op.apply_dag(&psi);
        assert!(
            lhs.max_abs_diff(&rhs) < 1e-11,
            "diff {}",
            lhs.max_abs_diff(&rhs)
        );
    }

    #[test]
    fn r5_gamma5_is_an_involution() {
        let g = Grid::new([2, 2, 2, 4], VectorLength::of(256), SimdBackend::Fcmla);
        let psi = Fermion5::random(g.clone(), 4, 168);
        assert_eq!(r5_gamma5(&r5_gamma5(&psi)).max_abs_diff(&psi), 0.0);
    }

    #[test]
    fn cg_inverts_the_normal_operator() {
        let (op, g) = setup(4);
        let b = Fermion5::random(g.clone(), 4, 169);
        let (x, report) = cg_dwf(&op, &b, 1e-8, 3000);
        assert!(report.converged, "{report:?}");
        let ax = op.ddag_d(&x);
        let mut diff = Fermion5::zero(g, 4);
        diff.sub(&ax, &b);
        assert!((diff.norm2() / b.norm2()).sqrt() < 1e-7);
    }

    #[test]
    fn mass_term_couples_only_the_boundary() {
        // Changing m_f must change only the s=0 and s=Ls−1 output slices
        // (for input supported on the boundary slices' neighbours... simplest:
        // compare full operators on the same input).
        let g = Grid::new([2, 2, 2, 4], VectorLength::of(256), SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 170);
        let psi = Fermion5::random(g.clone(), 4, 171);
        let a = DomainWall::new(u.clone(), 4, 1.8, 0.04).apply(&psi);
        let b = DomainWall::new(u, 4, 1.8, 0.9).apply(&psi);
        assert!(a.slices[0].max_abs_diff(&b.slices[0]) > 1e-6);
        assert!(a.slices[3].max_abs_diff(&b.slices[3]) > 1e-6);
        for s in 1..3 {
            assert_eq!(
                a.slices[s].max_abs_diff(&b.slices[s]),
                0.0,
                "bulk slice {s}"
            );
        }
    }

    #[test]
    fn instruction_count_scales_linearly_in_ls() {
        let g = Grid::new([2, 2, 2, 4], VectorLength::of(512), SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 172);
        let mut counts = Vec::new();
        for ls in [2usize, 4, 8] {
            let op = DomainWall::new(u.clone(), ls, 1.8, 0.04);
            let psi = Fermion5::random(g.clone(), ls, 173);
            g.engine().ctx().counters().reset();
            let _ = op.apply(&psi);
            counts.push(g.engine().ctx().counters().total() as f64 / ls as f64);
        }
        // Per-slice cost is Ls-independent (within a few percent).
        for w in counts.windows(2) {
            assert!((w[0] - w[1]).abs() < 0.05 * w[0], "{counts:?}");
        }
    }
}
