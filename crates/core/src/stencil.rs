//! Nearest-neighbour stencil over the virtual-node layout.
//!
//! With the Fig. 1 decomposition, a stencil leg from outer site `o` in
//! direction `±µ` lands either (a) inside the same virtual-node block —
//! neighbour outer site, identical lanes — or (b) across the block
//! boundary — wrapped outer site, plus a *lane permutation* rotating the
//! virtual-node grid by one step in `µ`. The permutation is the same for
//! every boundary site of a given direction, so the stencil stores at most
//! eight tables ("permutations of vector elements" are one of the
//! machine-specific operations of Grid's abstraction layer, Section II-C).

use crate::field::{Field, FieldKind};
use crate::layout::{delex, lex, Coor, Grid, NDIM};
use crate::simd::CVec;
use std::sync::Arc;
use sve::SveFloat;

/// One stencil leg: which outer site supplies the data and whether its
/// lanes must be permuted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StencilEntry {
    /// Source outer site.
    pub nbr: u32,
    /// Index into [`Stencil::perm_table`], or `None` when lanes align.
    pub perm: Option<u8>,
}

/// Direction encoding: `mu * 2` = forward (`x + µ̂`), `mu * 2 + 1` =
/// backward (`x - µ̂`).
pub fn dir_index(mu: usize, forward: bool) -> usize {
    mu * 2 + usize::from(!forward)
}

/// Precomputed neighbour tables for all eight directions.
pub struct Stencil<E: SveFloat = f64> {
    grid: Arc<Grid<E>>,
    /// `entries[dir][osite]`.
    entries: Vec<Vec<StencilEntry>>,
    /// Lane-permutation tables; `perms[dir]` is `Some` only if direction
    /// `dir` crosses a split dimension.
    perms: Vec<Option<Vec<usize>>>,
    /// The same tables expanded to element indices (one entry per f64
    /// lane), precomputed so [`Stencil::fetch`] permutes without
    /// allocating.
    eperms: Vec<Option<Vec<usize>>>,
}

impl<E: SveFloat> Stencil<E> {
    /// Build the stencil for `grid`.
    pub fn new(grid: Arc<Grid<E>>) -> Self {
        let rdims = grid.rdims();
        let sl = grid.simd_layout();
        let lanes_c = grid.lanes_c();
        let mut entries = Vec::with_capacity(2 * NDIM);
        let mut perms = Vec::with_capacity(2 * NDIM);
        for mu in 0..NDIM {
            for forward in [true, false] {
                // Lane permutation: out lane (vnode n) sources lane of the
                // vnode one step further along ±µ.
                let table: Vec<usize> = (0..lanes_c)
                    .map(|l| {
                        let mut n = delex(l, &sl);
                        n[mu] = if forward {
                            (n[mu] + 1) % sl[mu]
                        } else {
                            (n[mu] + sl[mu] - 1) % sl[mu]
                        };
                        lex(&n, &sl)
                    })
                    .collect();
                let is_identity = table.iter().enumerate().all(|(i, &t)| i == t);
                let perm_id = if is_identity {
                    None
                } else {
                    Some(entries.len() as u8)
                };
                let legs: Vec<StencilEntry> = (0..grid.osites())
                    .map(|o| {
                        let mut i = delex(o, &rdims);
                        let crossing = if forward {
                            let cross = i[mu] + 1 == rdims[mu];
                            i[mu] = (i[mu] + 1) % rdims[mu];
                            cross
                        } else {
                            let cross = i[mu] == 0;
                            i[mu] = (i[mu] + rdims[mu] - 1) % rdims[mu];
                            cross
                        };
                        StencilEntry {
                            nbr: lex(&i, &rdims) as u32,
                            perm: if crossing { perm_id } else { None },
                        }
                    })
                    .collect();
                entries.push(legs);
                perms.push(if is_identity { None } else { Some(table) });
            }
        }
        let eperms = perms
            .iter()
            .map(|p| p.as_deref().map(|t| grid.engine().expand_perm(t)))
            .collect();
        Stencil {
            grid,
            entries,
            perms,
            eperms,
        }
    }

    /// The grid this stencil indexes.
    pub fn grid(&self) -> &Arc<Grid<E>> {
        &self.grid
    }

    /// The leg for (`dir`, `osite`).
    #[inline]
    pub fn leg(&self, dir: usize, osite: usize) -> StencilEntry {
        self.entries[dir][osite]
    }

    /// A permutation table by id.
    pub fn perm_table(&self, id: u8) -> &[usize] {
        self.perms[id as usize]
            .as_deref()
            .expect("permutation id refers to an identity direction")
    }

    /// Fetch one component word through a stencil leg: load the neighbour's
    /// word and permute lanes if the leg crosses a virtual-node boundary.
    #[inline]
    pub fn fetch<K: FieldKind>(
        &self,
        field: &Field<K, E>,
        comp: usize,
        entry: StencilEntry,
    ) -> CVec {
        let v = self
            .grid
            .engine()
            .load(field.word(entry.nbr as usize, comp));
        self.permute(v, entry)
    }

    /// Apply a leg's lane permutation to an already-loaded word — the
    /// [`Stencil::fetch`] tail for containers that are not [`Field`]s (the
    /// multi-RHS block path loads its own words, then permutes through
    /// here so its dataflow matches `fetch` exactly).
    #[inline]
    pub fn permute(&self, v: CVec, entry: StencilEntry) -> CVec {
        match entry.perm {
            None => v,
            Some(id) => self.grid.engine().permute_elems(
                v,
                self.eperms[id as usize]
                    .as_deref()
                    .expect("permutation id refers to an identity direction"),
            ),
        }
    }

    /// All `(outer site, lane)` pairs of the slice `x[d] = idx`, in global
    /// coordinate (lex) order — the canonical face ordering both ends of a
    /// halo exchange agree on. The transverse ordering is independent of
    /// `idx`, so entry `i` of one rank's `x[d] = L−1` face lines up with
    /// entry `i` of its neighbour's `x[d] = 0` face.
    pub fn face_sites(&self, d: usize, idx: usize) -> Vec<(usize, usize)> {
        self.grid
            .coords()
            .filter(|x| x[d] == idx)
            .map(|x| self.grid.coor_to_osite_lane(&x))
            .collect()
    }

    /// Whether outer site `osite` holds any lane whose site sits on the
    /// local lattice boundary along `d` (`x[d] = 0` or `x[d] = L−1`). When
    /// `d` is split across ranks these are exactly the outer sites whose
    /// `±d` legs wrap around the local lattice and must be patched with
    /// halo data — the *boundary pass* of the overlapped dslash; every
    /// other outer site is pure interior work.
    pub fn osite_touches_face(&self, osite: usize, d: usize) -> bool {
        let rdims = self.grid.rdims();
        let i = delex(osite, &rdims);
        i[d] == 0 || i[d] + 1 == rdims[d]
    }

    /// Scalar oracle: the global coordinate supplying data for global site
    /// `x` through direction `dir`.
    pub fn neighbour_coor(&self, x: &Coor, dir: usize) -> Coor {
        let mu = dir / 2;
        let forward = dir.is_multiple_of(2);
        let f = self.grid.fdims();
        let mut y = *x;
        y[mu] = if forward {
            (y[mu] + 1) % f[mu]
        } else {
            (y[mu] + f[mu] - 1) % f[mu]
        };
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::field::ComplexField;
    use crate::simd::SimdBackend;
    use sve::VectorLength;

    fn grid(bits: usize) -> Arc<Grid> {
        Grid::new([4, 4, 4, 8], VectorLength::of(bits), SimdBackend::Fcmla)
    }

    /// Tag each site with its global index so fetches are verifiable.
    fn tagged(grid: &Arc<Grid>) -> ComplexField {
        let mut f = ComplexField::zero(grid.clone());
        for x in grid.coords() {
            f.poke(&x, 0, Complex::new(grid.global_index(&x) as f64, 0.0));
        }
        f
    }

    #[test]
    fn every_leg_fetches_the_correct_global_site() {
        for bits in [128, 256, 512, 1024, 2048] {
            let g = grid(bits);
            let st = Stencil::new(g.clone());
            let f = tagged(&g);
            for dir in 0..8 {
                for x in g.coords() {
                    let (osite, lane) = g.coor_to_osite_lane(&x);
                    let fetched = st.fetch(&f, 0, st.leg(dir, osite));
                    let got = g.engine().lane(fetched, lane).re as usize;
                    let want = g.global_index(&st.neighbour_coor(&x, dir));
                    assert_eq!(got, want, "vl={bits} dir={dir} x={x:?}");
                }
            }
        }
    }

    #[test]
    fn interior_legs_have_no_permutation() {
        let g = grid(512);
        let st = Stencil::new(g.clone());
        // Site strictly inside a virtual-node block in every direction.
        let rd = g.rdims();
        if rd.iter().all(|&r| r >= 3) {
            let x = [1, 1, 1, 1];
            let (osite, _) = g.coor_to_osite_lane(&x);
            for dir in 0..8 {
                assert_eq!(st.leg(dir, osite).perm, None);
            }
        }
    }

    #[test]
    fn boundary_legs_permute_only_in_split_dimensions() {
        let g = grid(512); // lanes_c = 4: two dimensions are split
        let st = Stencil::new(g.clone());
        let sl = g.simd_layout();
        for mu in 0..NDIM {
            let dir = dir_index(mu, true);
            let has_perm = (0..g.osites()).any(|o| st.leg(dir, o).perm.is_some());
            assert_eq!(has_perm, sl[mu] > 1, "mu={mu} sl={sl:?}");
        }
    }

    #[test]
    fn forward_then_backward_is_identity() {
        let g = grid(1024);
        let st = Stencil::new(g.clone());
        let f = tagged(&g);
        // cshift-style round trip through raw legs, per site.
        for x in g.coords().step_by(7) {
            let fwd = st.neighbour_coor(&x, dir_index(2, true));
            let back = st.neighbour_coor(&fwd, dir_index(2, false));
            assert_eq!(back, x);
        }
        drop(f);
    }

    #[test]
    fn vl128_never_permutes() {
        let g = Grid::<f64>::new([4, 4, 4, 4], VectorLength::of(128), SimdBackend::Fcmla);
        let st = Stencil::new(g.clone());
        for dir in 0..8 {
            for o in 0..g.osites() {
                assert_eq!(st.leg(dir, o).perm, None);
            }
        }
    }
}
