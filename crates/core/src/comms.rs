//! Simulated multi-process domain decomposition.
//!
//! "For the coarsest level a set of sub-lattices is distributed over (a very
//! large number of) different processes, e.g., different MPI ranks" (paper,
//! Section II-A). Here ranks are threads: the global lattice is split over
//! an explicit [`RankTopology`] (1 to 4 split dimensions), each rank owns a
//! local [`Grid`], and nearest-neighbour halo exchange runs over *bounded*
//! channels so a slow rank exerts backpressure instead of growing queues
//! without bound. Boundary data can optionally be compressed to binary16 on
//! the wire — the paper's only use of fp16: "this data type is used only for
//! data compression upon data exchange over the communications network"
//! (Section V-B).
//!
//! Two exchange styles coexist:
//!
//! * the blocking [`RankCtx::exchange_dim`] (send both faces, wait for
//!   both), which the `cshift`-composed operators below use, and
//! * the split [`RankCtx::post_face_send`] / [`RankCtx::wait_face_into`]
//!   pair, which lets a caller post its face sends, overlap interior
//!   compute while the halos are in flight, and only then block on the
//!   faces it needs — the comms/compute overlap the distributed operator
//!   ([`DistWilson`](crate::dist::DistWilson)) is built on. Message flight
//!   time is simulated by a [`NetworkModel`], so the *exposed* wait time
//!   (`comms.wait`) can be compared against the total flight time to
//!   measure how much communication the interior sweep actually hid.
//!
//! Halo payloads travel as [`HaloMsg`] buffers that are recycled through a
//! per-rank shell pool ([`HaloMsg::encode_into_shell`] /
//! [`HaloMsg::decode_into`]), so the steady state of a distributed solve
//! performs no allocation in the comms layer.

use crate::cshift::cshift;
use crate::dirac::{mult_gauge, proj_recon};
use crate::field::{FermionField, Field, FieldKind, GaugeField};
use crate::layout::{Coor, Grid, NDIM};
use crate::simd::SimdBackend;
use crate::topology::RankTopology;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::{Duration, Instant};
use sve::VectorLength;

/// The dimension the legacy 1-D rank grid splits (time).
pub const SPLIT_DIM: usize = 3;

/// Capacity of every halo channel: at most this many face messages may be
/// in flight per (dimension, direction, rank pair) before the sender
/// blocks. Two is the lockstep maximum — a rank can run at most one dslash
/// ahead of its neighbour, so one face from the previous sweep plus one
/// from the current sweep may be queued.
pub const FACES_IN_FLIGHT: usize = 2;

/// Shells kept per rank for reuse; beyond this, returned buffers are freed.
const SHELL_POOL_CAP: usize = 16;

/// Relative rounding grain of a binary16 wire scalar (`2⁻¹¹`, RTNE).
///
/// This constant anchors the **lossy-wire accuracy contract** of
/// [`Compression::F16`]: each halo scalar a sweep reads from the wire is
/// within `F16_WIRE_EPS` of the sender's value, so a distributed solve
/// over a compressed wire applies a perturbed operator `Ã` with
/// `‖Ã − A‖ ≤ O(F16_WIRE_EPS)` concentrated on the face sites. The solve
/// converges against its own recurrence exactly as over an uncompressed
/// wire, and its solution agrees with the uncompressed-wire solution to
/// `O(κ(A) · F16_WIRE_EPS)` in relative norm — pinned by
/// `tests/f16_wire_contract.rs`. Residual targets *below* the contract
/// bound require the uncompressed wire (or an outer correction loop such
/// as [`crate::mixed::ladder_solve`] running its defect at full
/// precision).
pub const F16_WIRE_EPS: f64 = 4.8828125e-4;

/// Wire format for halo buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Compression {
    /// Full double precision on the wire.
    None,
    /// Compress to IEEE binary16, quartering the wire volume
    /// (8 bytes → 2 bytes per real), at [`F16_WIRE_EPS`] ≈ 2⁻¹¹ relative
    /// error per scalar — see the accuracy contract on that constant.
    F16,
}

/// Wire format for gauge-link halos. SU(3) links can drop their third row
/// on the wire — the receiver rebuilds it as the conjugate cross product of
/// the first two (the shared [`codec`](crate::codec) two-row path), cutting
/// gauge halo volume by a third before any scalar compression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GaugeWire {
    /// All nine complex entries per link (18 scalars).
    Full,
    /// First two rows only (12 scalars); third row reconstructed on unpack.
    TwoRow,
}

/// A halo message.
#[derive(Clone, Debug)]
pub enum HaloMsg {
    /// Uncompressed payload.
    F64(Vec<f64>),
    /// binary16-compressed payload.
    F16(Vec<u16>),
}

impl HaloMsg {
    /// Encode a buffer under the chosen compression. The binary16 rounding
    /// is the shared [`codec`](crate::codec) path, so wire halos and
    /// `qcd-io` on-disk records compress identically.
    pub fn encode(data: &[f64], compression: Compression) -> HaloMsg {
        HaloMsg::encode_into_shell(data, compression, None)
    }

    /// Encode reusing a spent message's buffer when its variant matches the
    /// requested compression — in the steady state of a halo loop no
    /// allocation happens here, the shell's capacity is simply refilled.
    pub fn encode_into_shell(
        data: &[f64],
        compression: Compression,
        shell: Option<HaloMsg>,
    ) -> HaloMsg {
        match compression {
            Compression::None => {
                let mut v = match shell {
                    Some(HaloMsg::F64(v)) => v,
                    _ => Vec::with_capacity(data.len()),
                };
                v.clear();
                v.extend_from_slice(data);
                HaloMsg::F64(v)
            }
            Compression::F16 => {
                let mut v = match shell {
                    Some(HaloMsg::F16(v)) => v,
                    _ => Vec::with_capacity(data.len()),
                };
                crate::codec::compress_f16_into(data, &mut v);
                HaloMsg::F16(v)
            }
        }
    }

    /// Decode back to doubles (the shared codec's exact expansion).
    pub fn decode(&self) -> Vec<f64> {
        match self {
            HaloMsg::F64(v) => v.clone(),
            HaloMsg::F16(v) => crate::codec::decompress_f16(v),
        }
    }

    /// Decode into a caller-owned buffer without allocating. Panics if the
    /// buffer length does not match the message's scalar count — halo faces
    /// have a fixed shape, so a mismatch is a protocol error.
    pub fn decode_into(&self, out: &mut [f64]) {
        match self {
            HaloMsg::F64(v) => {
                assert_eq!(
                    v.len(),
                    out.len(),
                    "halo payload does not fit the face buffer"
                );
                out.copy_from_slice(v);
            }
            HaloMsg::F16(v) => crate::codec::decompress_f16_into(v, out),
        }
    }

    /// Scalars carried by this message.
    pub fn scalars(&self) -> usize {
        match self {
            HaloMsg::F64(v) => v.len(),
            HaloMsg::F16(v) => v.len(),
        }
    }

    /// Wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        match self {
            HaloMsg::F64(v) => v.len() * 8,
            HaloMsg::F16(v) => v.len() * 2,
        }
    }
}

/// A latency/bandwidth model for the simulated interconnect. Each posted
/// face is stamped with a modeled flight time; the receiver's
/// [`RankCtx::wait_face_msg`] refuses to hand the message over before the
/// flight completes, so a rank that does *not* overlap compute with its
/// halos pays the full flight time as exposed `comms.wait`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    latency_ns: u64,
    gbytes_per_s: f64,
}

impl NetworkModel {
    /// Zero-latency, infinite-bandwidth wire: messages are ready the moment
    /// they are sent. The default for correctness tests.
    pub fn instant() -> NetworkModel {
        NetworkModel {
            latency_ns: 0,
            gbytes_per_s: f64::INFINITY,
        }
    }

    /// A generic modern interconnect: 1.5 µs per-message latency and
    /// 12.5 GB/s per-link bandwidth (≈100 Gb/s class fabric).
    pub fn interconnect() -> NetworkModel {
        NetworkModel {
            latency_ns: 1_500,
            gbytes_per_s: 12.5,
        }
    }

    /// An explicit latency/bandwidth point.
    pub fn custom(latency_ns: u64, gbytes_per_s: f64) -> NetworkModel {
        assert!(gbytes_per_s > 0.0, "bandwidth must be positive");
        NetworkModel {
            latency_ns,
            gbytes_per_s,
        }
    }

    /// Modeled flight time of one message: latency plus transfer time
    /// (1 GB/s is exactly 1 byte/ns, so `bytes / gbytes_per_s` is ns).
    pub fn flight_ns(&self, wire_bytes: usize) -> u64 {
        self.latency_ns + (wire_bytes as f64 / self.gbytes_per_s) as u64
    }
}

/// One in-flight face: the payload plus when the modeled network delivers
/// it.
struct FaceMsg {
    msg: HaloMsg,
    ready_at: Instant,
    flight_ns: u64,
}

/// One hop of the rank-order allgather ring: the originating rank's id
/// plus its slab.
type RingSlab = (usize, Vec<f64>);

/// Channel endpoints to the two neighbours along one split dimension.
struct DimLinks {
    send_next: Sender<FaceMsg>,
    recv_prev: Receiver<FaceMsg>,
    send_prev: Sender<FaceMsg>,
    recv_next: Receiver<FaceMsg>,
}

/// Per-rank communication context: the local lattice, its placement in the
/// global one, and channels to nearest neighbours along every split
/// dimension — "parallelization ... is achieved by a domain decomposition
/// in 1 to 4 dimensions" (paper, Section II-A).
pub struct RankCtx {
    /// This rank's linear id.
    pub rank: usize,
    /// The rank grid (one entry per dimension; product = total ranks).
    pub rank_grid: Coor,
    /// This rank's coordinate in the rank grid.
    pub rank_coor: Coor,
    /// Total ranks.
    pub nranks: usize,
    /// Global lattice extents.
    pub global_dims: Coor,
    /// The rank-local lattice.
    pub grid: Arc<Grid>,
    /// Global coordinate of the local origin.
    pub offset: Coor,
    links: [Option<DimLinks>; NDIM],
    /// Total bytes this rank has put on the wire in *face* messages (halo
    /// payloads; allreduce traffic is counted in `reduce_bytes`).
    pub sent_bytes: Cell<usize>,
    topology: RankTopology,
    net: NetworkModel,
    /// When true (the default), every face send/recv opens a
    /// `comms.send`/`comms.recv`/`comms.wait` span and logs a flight-
    /// recorder event. The distributed hot path turns this off to keep its
    /// steady state allocation-free; the counters and the `comms.wait`
    /// histogram below always update regardless.
    detail: Cell<bool>,
    wait_hist: qcd_metrics::Histogram,
    wait_ns: Cell<u64>,
    flight_ns: Cell<u64>,
    /// When this rank last posted a face send: the start of its overlap
    /// window. Exposed wait is measured against this local stamp so the
    /// metric stays meaningful when rank threads timeshare cores.
    last_post: Cell<Instant>,
    reduce_bytes: Cell<usize>,
    shells: RefCell<Vec<HaloMsg>>,
    ring: Option<(Sender<RingSlab>, Receiver<RingSlab>)>,
}

impl RankCtx {
    /// Translate a local coordinate to the global one.
    pub fn to_global(&self, local: &Coor) -> Coor {
        std::array::from_fn(|d| local[d] + self.offset[d])
    }

    /// The rank topology this context lives in.
    pub fn topology(&self) -> RankTopology {
        self.topology
    }

    /// The interconnect model stamping flight times on this rank's sends.
    pub fn net(&self) -> NetworkModel {
        self.net
    }

    /// Whether per-face spans and flight-recorder events are emitted.
    pub fn detail_spans(&self) -> bool {
        self.detail.get()
    }

    /// Enable/disable per-face spans and flight events (see `detail`).
    pub fn set_detail_spans(&self, on: bool) {
        self.detail.set(on);
    }

    /// Nanoseconds of modeled flight time this rank failed to hide behind
    /// its own compute (exposed, non-overlapped communication time). Each
    /// received face contributes `flight − (time since this rank last
    /// posted a send)`, floored at zero: the overlap window opens when the
    /// rank posts its own faces, and whatever portion of the modeled
    /// flight outlives that window is exposed. Measuring against the
    /// rank's *local* post stamp (rather than real blocked wall time)
    /// keeps the metric meaningful when rank threads timeshare cores and
    /// channel waits are dominated by scheduler skew.
    pub fn wait_ns(&self) -> u64 {
        self.wait_ns.get()
    }

    /// Total modeled flight nanoseconds of every face this rank received
    /// (what the comms would cost with zero overlap).
    pub fn flight_ns(&self) -> u64 {
        self.flight_ns.get()
    }

    /// Bytes this rank contributed to allreduce/allgather traffic (kept
    /// separate from `sent_bytes` so face bytes stay pinned to the halo
    /// wire model).
    pub fn reduce_bytes(&self) -> usize {
        self.reduce_bytes.get()
    }

    /// Reset `sent_bytes`, `reduce_bytes` and the wait/flight clocks.
    pub fn reset_comm_counters(&self) {
        self.sent_bytes.set(0);
        self.reduce_bytes.set(0);
        self.wait_ns.set(0);
        self.flight_ns.set(0);
    }

    fn take_shell(&self) -> Option<HaloMsg> {
        self.shells.borrow_mut().pop()
    }

    fn recycle_shell(&self, msg: HaloMsg) {
        let mut pool = self.shells.borrow_mut();
        if pool.len() < SHELL_POOL_CAP {
            pool.push(msg);
        }
    }

    fn dim_links(&self, d: usize) -> &DimLinks {
        self.links[d]
            .as_ref()
            .expect("dimension is not split across ranks")
    }

    /// Post one face send along split dimension `d` without waiting for
    /// anything: the payload is encoded into a recycled shell, stamped with
    /// the modeled flight time, and queued toward the `+d` neighbour
    /// (`toward_next`) or the `−d` neighbour. Returns immediately — the
    /// caller overlaps interior compute and later collects the matching
    /// face with [`wait_face_into`](RankCtx::wait_face_into).
    pub fn post_face_send(
        &self,
        d: usize,
        toward_next: bool,
        data: &[f64],
        compression: Compression,
    ) {
        let links = self.dim_links(d);
        let msg = HaloMsg::encode_into_shell(data, compression, self.take_shell());
        let bytes = msg.wire_bytes();
        let flight = self.net.flight_ns(bytes);
        let detail = self.detail.get();
        {
            let _span = detail.then(|| qcd_trace::span!("comms.send"));
            qcd_trace::record_wire_bytes(bytes as u64);
        }
        if detail && qcd_metrics::flight_enabled() {
            qcd_metrics::record_event(
                "comms",
                if toward_next {
                    "send.next"
                } else {
                    "send.prev"
                },
                &[
                    ("dim", d as f64),
                    ("bytes", bytes as f64),
                    ("flight_ns", flight as f64),
                ],
            );
        }
        self.sent_bytes.set(self.sent_bytes.get() + bytes);
        let now = Instant::now();
        self.last_post.set(now);
        let face = FaceMsg {
            msg,
            ready_at: now + Duration::from_nanos(flight),
            flight_ns: flight,
        };
        let tx = if toward_next {
            &links.send_next
        } else {
            &links.send_prev
        };
        assert!(tx.send(face).is_ok(), "neighbour hung up");
    }

    /// Block until the face from the `+d` (`from_next`) or `−d` neighbour
    /// lands, honouring the modeled flight time. The *exposed* wait it
    /// records is `flight − (time since this rank last posted a send)`,
    /// floored at zero — the portion of the modeled flight the rank's own
    /// compute since [`post_face_send`](RankCtx::post_face_send) did not
    /// hide. It accumulates in [`wait_ns`](RankCtx::wait_ns) and the
    /// `comms.wait` histogram, while the face's full modeled flight time
    /// accumulates in [`flight_ns`](RankCtx::flight_ns) — their ratio is
    /// the overlap efficiency. The exposure is measured against the local
    /// post stamp rather than real blocked wall time so it survives rank
    /// threads timesharing cores, where channel waits reflect scheduler
    /// skew instead of the modeled fabric.
    pub fn wait_face_msg(&self, d: usize, from_next: bool) -> HaloMsg {
        let links = self.dim_links(d);
        let rx = if from_next {
            &links.recv_next
        } else {
            &links.recv_prev
        };
        let detail = self.detail.get();
        let start = Instant::now();
        let face = {
            let _span = detail.then(|| qcd_trace::span!("comms.wait"));
            let face = match rx.try_recv() {
                Ok(face) => face,
                Err(_) => rx.recv().expect("neighbour hung up"),
            };
            while Instant::now() < face.ready_at {
                std::hint::spin_loop();
            }
            face
        };
        // `duration_since` saturates to zero if the post stamp is newer.
        let hidden = start.duration_since(self.last_post.get()).as_nanos() as u64;
        let waited = face.flight_ns.saturating_sub(hidden);
        self.wait_ns.set(self.wait_ns.get() + waited);
        self.flight_ns.set(self.flight_ns.get() + face.flight_ns);
        self.wait_hist.record(waited);
        if detail {
            let _span = qcd_trace::span!("comms.recv");
            qcd_trace::record_wire_bytes(face.msg.wire_bytes() as u64);
            if qcd_metrics::flight_enabled() {
                qcd_metrics::record_event(
                    "comms",
                    if from_next { "recv.next" } else { "recv.prev" },
                    &[
                        ("dim", d as f64),
                        ("bytes", face.msg.wire_bytes() as f64),
                        ("wait_ns", waited as f64),
                    ],
                );
            }
        }
        face.msg
    }

    /// [`wait_face_msg`](RankCtx::wait_face_msg), decoded into a reusable
    /// face buffer; the message shell goes back to the pool. The whole path
    /// is allocation-free in the steady state.
    pub fn wait_face_into(&self, d: usize, from_next: bool, out: &mut [f64]) {
        let msg = self.wait_face_msg(d, from_next);
        msg.decode_into(out);
        self.recycle_shell(msg);
    }

    /// Exchange halo slices with both neighbours along split dimension `d`
    /// (periodic ring): sends `to_next` toward the +d neighbour and
    /// `to_prev` toward the −d neighbour; returns `(from_prev, from_next)`.
    ///
    /// This is the blocking composition of [`post_face_send`] and
    /// [`wait_face_msg`]: no compute is overlapped, so the full modeled
    /// flight time shows up as exposed wait.
    ///
    /// [`post_face_send`]: RankCtx::post_face_send
    /// [`wait_face_msg`]: RankCtx::wait_face_msg
    pub fn exchange_dim(
        &self,
        d: usize,
        to_next: &[f64],
        to_prev: &[f64],
        compression: Compression,
    ) -> (Vec<f64>, Vec<f64>) {
        let _span = qcd_trace::span!("comms.exchange");
        self.post_face_send(d, true, to_next, compression);
        self.post_face_send(d, false, to_prev, compression);
        let prev_msg = self.wait_face_msg(d, false);
        let next_msg = self.wait_face_msg(d, true);
        let from_prev = prev_msg.decode();
        let from_next = next_msg.decode();
        self.recycle_shell(prev_msg);
        self.recycle_shell(next_msg);
        (from_prev, from_next)
    }

    /// Legacy single-dimension exchange along the default split (time).
    pub fn exchange(
        &self,
        to_next: &[f64],
        to_prev: &[f64],
        compression: Compression,
    ) -> (Vec<f64>, Vec<f64>) {
        self.exchange_dim(SPLIT_DIM, to_next, to_prev, compression)
    }

    /// Ring allgather: `visit` sees every rank's slab exactly once (own
    /// slab first, then the others as they circulate the ring, R−1 hops).
    /// The returned buffer is a same-length slab the caller reuses for the
    /// next allgather, making the steady state allocation-free. Traffic is
    /// counted in [`reduce_bytes`](RankCtx::reduce_bytes), not
    /// `sent_bytes`. With one rank this degenerates to a single `visit`.
    pub fn ring_allgather(&self, slab: Vec<f64>, mut visit: impl FnMut(usize, &[f64])) -> Vec<f64> {
        visit(self.rank, &slab);
        let Some((tx, rx)) = self.ring.as_ref() else {
            return slab;
        };
        let _span = self
            .detail
            .get()
            .then(|| qcd_trace::span!("comms.allgather"));
        self.reduce_bytes
            .set(self.reduce_bytes.get() + slab.len() * 8);
        tx.send((self.rank, slab)).expect("ring neighbour hung up");
        let mut keep = None;
        for hop in 1..self.nranks {
            let (src, s) = rx.recv().expect("ring neighbour hung up");
            visit(src, &s);
            if hop + 1 < self.nranks {
                self.reduce_bytes.set(self.reduce_bytes.get() + s.len() * 8);
                tx.send((src, s)).expect("ring neighbour hung up");
            } else {
                keep = Some(s);
            }
        }
        keep.expect("ring allgather ran zero hops")
    }
}

/// Run `f` on every rank of an explicit [`RankTopology`] (threads),
/// splitting `global_dims` per the topology's rank grid and stamping every
/// face message with `net`'s modeled flight time. Returns per-rank results
/// in linear rank order.
pub fn run_multinode_topo<T: Send>(
    global_dims: Coor,
    topo: RankTopology,
    vl: VectorLength,
    backend: SimdBackend,
    net: NetworkModel,
    f: impl Fn(&RankCtx) -> T + Sync,
) -> Vec<T> {
    let _span = qcd_trace::span!("comms.run_multinode");
    let rank_grid = topo.rank_grid();
    let nranks = topo.nranks();
    let local_dims = topo.local_dims(&global_dims);

    // One forward and one backward channel per (dimension, rank): the
    // forward channel at (d, r) carries r -> next_d(r), so rank r receives
    // "from prev" on the forward channel of prev_d(r). All channels are
    // bounded to FACES_IN_FLIGHT — a rank that runs ahead blocks on send.
    let mk = |n: usize| -> Vec<(Sender<FaceMsg>, Receiver<FaceMsg>)> {
        (0..n).map(|_| bounded(FACES_IN_FLIGHT)).collect()
    };
    let fwd: [Vec<(Sender<FaceMsg>, Receiver<FaceMsg>)>; NDIM] =
        std::array::from_fn(|_| mk(nranks));
    let bwd: [Vec<(Sender<FaceMsg>, Receiver<FaceMsg>)>; NDIM] =
        std::array::from_fn(|_| mk(nranks));
    // A rank-order ring for allgathers: channel r carries r -> (r+1) % R.
    let ring: Vec<_> = (0..nranks)
        .map(|_| bounded::<RingSlab>(FACES_IN_FLIGHT))
        .collect();

    let mut ctxs: Vec<RankCtx> = (0..nranks)
        .map(|r| {
            let rank_coor = topo.rank_coor(r);
            let offset = topo.offset(r, &global_dims);
            let links: [Option<DimLinks>; NDIM] = std::array::from_fn(|d| {
                if rank_grid[d] > 1 {
                    let prev = topo.neighbour(r, d, false);
                    Some(DimLinks {
                        send_next: fwd[d][r].0.clone(),
                        recv_prev: fwd[d][prev].1.clone(),
                        send_prev: bwd[d][prev].0.clone(),
                        recv_next: bwd[d][r].1.clone(),
                    })
                } else {
                    None
                }
            });
            RankCtx {
                rank: r,
                rank_grid,
                rank_coor,
                nranks,
                global_dims,
                grid: Grid::new(local_dims, vl, backend),
                offset,
                links,
                sent_bytes: Cell::new(0),
                topology: topo,
                net,
                detail: Cell::new(true),
                wait_hist: qcd_metrics::histogram("comms.wait"),
                wait_ns: Cell::new(0),
                flight_ns: Cell::new(0),
                last_post: Cell::new(Instant::now()),
                reduce_bytes: Cell::new(0),
                shells: RefCell::new(Vec::with_capacity(SHELL_POOL_CAP)),
                ring: (nranks > 1)
                    .then(|| (ring[r].0.clone(), ring[(r + nranks - 1) % nranks].1.clone())),
            }
        })
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = ctxs
            .iter_mut()
            .map(|ctx| {
                let f = &f;
                scope.spawn(move || f(ctx))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Run `f` on a full rank grid (threads), splitting `global_dims` by
/// `rank_grid` (entry `d` = ranks along dimension `d`) over an instant
/// network. Returns per-rank results in linear rank order.
pub fn run_multinode_grid<T: Send>(
    global_dims: Coor,
    rank_grid: Coor,
    vl: VectorLength,
    backend: SimdBackend,
    f: impl Fn(&RankCtx) -> T + Sync,
) -> Vec<T> {
    run_multinode_topo(
        global_dims,
        RankTopology::new(rank_grid),
        vl,
        backend,
        NetworkModel::instant(),
        f,
    )
}

/// Run `f` on `nranks` ranks, splitting `global_dims` along the time
/// direction (the common 1-D decomposition). Returns per-rank results in
/// rank order.
pub fn run_multinode<T: Send>(
    global_dims: Coor,
    nranks: usize,
    vl: VectorLength,
    backend: SimdBackend,
    f: impl Fn(&RankCtx) -> T + Sync,
) -> Vec<T> {
    let mut rank_grid = [1; NDIM];
    rank_grid[SPLIT_DIM] = nranks;
    run_multinode_grid(global_dims, rank_grid, vl, backend, f)
}

/// Serialize one slice (`x[d] = idx`) of a field, iterating the remaining
/// coordinates in global lex order (deterministic on both ends of the
/// wire).
fn pack_slice<K: FieldKind>(field: &Field<K>, d: usize, idx: usize) -> Vec<f64> {
    let grid = field.grid();
    let dims = grid.fdims();
    let mut out = Vec::with_capacity(grid.volume() / dims[d] * K::NCOMP * 2);
    for coor in grid.coords() {
        if coor[d] != idx {
            continue;
        }
        for comp in 0..K::NCOMP {
            let v = field.peek(&coor, comp);
            out.push(v.re);
            out.push(v.im);
        }
    }
    out
}

/// Write a packed slice into `field` at `x[d] = idx`.
fn unpack_slice<K: FieldKind>(field: &mut Field<K>, d: usize, idx: usize, data: &[f64]) {
    let grid = field.grid().clone();
    let mut it = data.iter();
    for coor in grid.coords() {
        if coor[d] != idx {
            continue;
        }
        for comp in 0..K::NCOMP {
            let re = *it.next().expect("slice underrun");
            let im = *it.next().expect("slice underrun");
            field.poke(&coor, comp, crate::complex::Complex::new(re, im));
        }
    }
    assert!(it.next().is_none(), "slice overrun");
}

/// Distributed circular shift: local [`cshift`] plus a halo exchange when
/// the shifted dimension is split across ranks.
pub fn cshift_dist<K: FieldKind>(
    ctx: &RankCtx,
    f: &Field<K>,
    mu: usize,
    disp: i32,
    compression: Compression,
) -> Field<K> {
    let _span = qcd_trace::span!("comms.cshift_dist");
    let mut out = cshift(f, mu, disp);
    if ctx.rank_grid[mu] == 1 {
        return out;
    }
    let l = ctx.grid.fdims()[mu];
    if disp == 1 {
        // out(.., x_mu = l-1) needs f(.., x_mu = 0) of the +mu neighbour:
        // every rank sends its own leading slice toward -mu.
        let mine = pack_slice(f, mu, 0);
        let (_ignored, from_next) = ctx.exchange_dim(mu, &[], &mine, compression);
        unpack_slice(&mut out, mu, l - 1, &from_next);
    } else {
        // out(.., x_mu = 0) needs f(.., x_mu = l-1) of the -mu neighbour.
        let mine = pack_slice(f, mu, l - 1);
        let (from_prev, _ignored) = ctx.exchange_dim(mu, &mine, &[], compression);
        unpack_slice(&mut out, mu, 0, &from_prev);
    }
    out
}

/// Distributed circular shift of a gauge field with a selectable link wire
/// format: under [`GaugeWire::TwoRow`] only the first two rows of each link
/// cross the network (24 of 36 complex components per site) and the third
/// row is reconstructed on unpack. [`HaloMsg::wire_bytes`] and the comms
/// telemetry counters see the *compressed* stream, so bytes-on-wire
/// accounting is truthful for every (wire, compression) combination.
pub fn cshift_dist_gauge(
    ctx: &RankCtx,
    u: &GaugeField,
    mu: usize,
    disp: i32,
    wire: GaugeWire,
    compression: Compression,
) -> GaugeField {
    let _span = qcd_trace::span!("comms.cshift_dist");
    let mut out = cshift(u, mu, disp);
    if ctx.rank_grid[mu] == 1 {
        return out;
    }
    // `pack_slice` emits links in the codec's layout (18 scalars per link,
    // row-major, re/im interleaved), so the shared two-row codec applies
    // directly to the packed stream.
    let shrink = |data: Vec<f64>| match wire {
        GaugeWire::Full => data,
        GaugeWire::TwoRow => {
            crate::codec::compress_two_row(&data).expect("gauge slice holds whole links")
        }
    };
    let expand = |data: Vec<f64>| match wire {
        GaugeWire::Full => data,
        GaugeWire::TwoRow => {
            crate::codec::decompress_two_row(&data).expect("two-row slice holds whole links")
        }
    };
    let l = ctx.grid.fdims()[mu];
    if disp == 1 {
        let mine = shrink(pack_slice(u, mu, 0));
        let (_ignored, from_next) = ctx.exchange_dim(mu, &[], &mine, compression);
        unpack_slice(&mut out, mu, l - 1, &expand(from_next));
    } else {
        let mine = shrink(pack_slice(u, mu, l - 1));
        let (from_prev, _ignored) = ctx.exchange_dim(mu, &mine, &[], compression);
        unpack_slice(&mut out, mu, 0, &expand(from_prev));
    }
    out
}

/// Distributed Wilson hopping term via the cshift composition, with halo
/// exchange (optionally fp16-compressed) on the split-direction legs.
pub fn hopping_dist(
    ctx: &RankCtx,
    u: &GaugeField,
    psi: &FermionField,
    compression: Compression,
) -> FermionField {
    let grid = psi.grid().clone();
    let _span = qcd_trace::span!("comms.hopping_dist", grid.engine().ctx());
    let mut out = FermionField::zero(grid.clone());
    for mu in 0..4 {
        let fwd_src = cshift_dist(ctx, psi, mu, 1, compression);
        let fwd = mult_gauge(u, mu, &proj_recon(mu, true, &fwd_src), false);
        out.add_assign_field(&fwd);
        let bwd_pre = mult_gauge(u, mu, &proj_recon(mu, false, psi), true);
        let bwd = cshift_dist(ctx, &bwd_pre, mu, -1, compression);
        out.add_assign_field(&bwd);
    }
    out
}

/// Distributed Wilson hopping term with Grid's spin-projection compressor:
/// only *half spinors* cross the network (6 complex components instead of
/// 12), optionally fp16-compressed on top — together an 8x wire-volume
/// reduction over plain double-precision full spinors.
pub fn hopping_dist_half(
    ctx: &RankCtx,
    u: &GaugeField,
    psi: &FermionField,
    compression: Compression,
) -> FermionField {
    use crate::dirac::{mult_gauge_half, project_half, reconstruct_half};
    let grid = psi.grid().clone();
    let _span = qcd_trace::span!("comms.hopping_dist_half", grid.engine().ctx());
    let mut out = FermionField::zero(grid.clone());
    for mu in 0..4 {
        // Forward: shift the projected half spinor, then U, then expand.
        let h = project_half(mu, true, psi);
        let hs = cshift_dist(ctx, &h, mu, 1, compression);
        let fwd = reconstruct_half(mu, true, &mult_gauge_half(u, mu, &hs, false));
        out.add_assign_field(&fwd);
        // Backward: project, U†, shift the half spinor, then expand.
        let h = project_half(mu, false, psi);
        let uh = mult_gauge_half(u, mu, &h, true);
        let uhs = cshift_dist(ctx, &uh, mu, -1, compression);
        let bwd = reconstruct_half(mu, false, &uhs);
        out.add_assign_field(&bwd);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::dirac::WilsonDirac;
    use crate::rng::{stream_id, uniform};
    use crate::tensor::su3::random_gauge;

    const GLOBAL: Coor = [4, 4, 4, 8];
    const VL: VectorLength = VectorLength::of(256);

    /// Build rank-local fields whose content matches the global-seeded
    /// fields site by site.
    fn local_fermion(ctx: &RankCtx, seed: u64) -> FermionField {
        let mut f = FermionField::zero(ctx.grid.clone());
        for local in ctx.grid.coords() {
            let g = ctx.to_global(&local);
            let gidx = crate::layout::lex(&g, &ctx.global_dims);
            for comp in 0..12 {
                f.poke(
                    &local,
                    comp,
                    Complex::new(
                        uniform(seed, stream_id(gidx, comp, 0)),
                        uniform(seed, stream_id(gidx, comp, 1)),
                    ),
                );
            }
        }
        f
    }

    fn local_gauge(ctx: &RankCtx, seed: u64) -> GaugeField {
        use crate::field::gauge_comp;
        use crate::tensor::su3::random_su3;
        let mut u = GaugeField::zero(ctx.grid.clone());
        for local in ctx.grid.coords() {
            let g = ctx.to_global(&local);
            let gidx = crate::layout::lex(&g, &ctx.global_dims);
            for mu in 0..4 {
                let m = random_su3(seed, stream_id(gidx, mu, 0) | 1);
                for r in 0..3 {
                    for c in 0..3 {
                        u.poke(&local, gauge_comp(mu, r, c), m[r][c]);
                    }
                }
            }
        }
        u
    }

    #[test]
    fn halo_msg_round_trips() {
        let data = vec![1.5, -2.25, 0.0, 1024.0];
        let none = HaloMsg::encode(&data, Compression::None);
        assert_eq!(none.decode(), data);
        assert_eq!(none.wire_bytes(), 32);
        let f16 = HaloMsg::encode(&data, Compression::F16);
        assert_eq!(f16.decode(), data); // all values exact in binary16
        assert_eq!(f16.wire_bytes(), 8);
    }

    #[test]
    fn decode_into_matches_decode_without_allocating_a_fresh_vec() {
        let data = vec![1.5, -2.25, 0.0, 1024.0, -0.375];
        for comp in [Compression::None, Compression::F16] {
            let msg = HaloMsg::encode(&data, comp);
            let mut out = vec![f64::NAN; data.len()];
            msg.decode_into(&mut out);
            assert_eq!(out, msg.decode(), "{comp:?}");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn decode_into_rejects_a_mis_sized_face_buffer() {
        let msg = HaloMsg::encode(&[1.0, 2.0], Compression::None);
        let mut out = [0.0; 3];
        msg.decode_into(&mut out);
    }

    #[test]
    fn encode_into_shell_reuses_the_spent_buffer() {
        let data = vec![0.5; 64];
        let msg = HaloMsg::encode_into_shell(&data, Compression::None, None);
        let HaloMsg::F64(v) = &msg else {
            panic!("uncompressed encode must yield F64")
        };
        let ptr = v.as_ptr();
        // Re-encoding through the spent shell must reuse its allocation.
        let msg2 = HaloMsg::encode_into_shell(&data, Compression::None, Some(msg));
        let HaloMsg::F64(v2) = &msg2 else {
            panic!("uncompressed encode must yield F64")
        };
        assert_eq!(v2.as_ptr(), ptr, "shell buffer was not reused");
        // A variant mismatch falls back to a fresh buffer of the right kind.
        let msg3 = HaloMsg::encode_into_shell(&data, Compression::F16, Some(msg2));
        assert!(matches!(msg3, HaloMsg::F16(_)));
        assert_eq!(msg3.scalars(), data.len());
    }

    #[test]
    fn wire_format_is_compatible_with_the_shared_codec() {
        // The halo wire format and the qcd-io on-disk format must be the
        // *same* fp16 compression path: identical bit patterns scalar by
        // scalar, under both the u16 and the little-endian byte view.
        use crate::codec::{decode_f64s, encode_f64s, Precision};
        let data: Vec<f64> = (0..257)
            .map(|i| (i as f64 - 128.0) * 0.173 + 1.0e-6)
            .collect();
        let msg = HaloMsg::encode(&data, Compression::F16);
        let bytes = encode_f64s(&data, Precision::F16);
        let HaloMsg::F16(bits) = &msg else {
            panic!("F16 compression must produce an F16 message");
        };
        assert_eq!(bits.len() * 2, bytes.len());
        for (i, b) in bits.iter().enumerate() {
            assert_eq!(
                *b,
                u16::from_le_bytes([bytes[2 * i], bytes[2 * i + 1]]),
                "scalar {i} diverges between wire and disk codecs"
            );
        }
        // And both decode paths reproduce the same doubles.
        assert_eq!(msg.decode(), decode_f64s(&bytes, Precision::F16).unwrap());
        // The uncompressed wire path is bit-exact.
        let none = HaloMsg::encode(&data, Compression::None);
        assert_eq!(none.decode(), data);
    }

    #[test]
    fn f16_wire_is_4x_smaller_with_bounded_error() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 - 500.0) * 0.37).collect();
        let msg = HaloMsg::encode(&data, Compression::F16);
        assert_eq!(msg.wire_bytes() * 4, data.len() * 8);
        for (orig, got) in data.iter().zip(msg.decode()) {
            let rel = if orig.abs() > 1e-10 {
                ((orig - got) / orig).abs()
            } else {
                (orig - got).abs()
            };
            assert!(rel < 5e-4, "{orig} -> {got}");
        }
    }

    #[test]
    fn distributed_cshift_matches_global() {
        let nranks = 2;
        let global_grid = Grid::new(GLOBAL, VL, SimdBackend::Fcmla);
        let global_f = FermionField::random(global_grid.clone(), 31);
        let global_shift = cshift(&global_f, SPLIT_DIM, 1);

        let locals = run_multinode(GLOBAL, nranks, VL, SimdBackend::Fcmla, |ctx| {
            let f = local_fermion(ctx, 31);
            let s = cshift_dist(ctx, &f, SPLIT_DIM, 1, Compression::None);
            (ctx.offset, s)
        });
        for (offset, local) in &locals {
            for lx in local.grid().coords() {
                let gx: Coor = std::array::from_fn(|d| lx[d] + offset[d]);
                for comp in [0usize, 5, 11] {
                    assert_eq!(
                        local.peek(&lx, comp),
                        global_shift.peek(&gx, comp),
                        "{gx:?} comp {comp}"
                    );
                }
            }
        }
    }

    #[test]
    fn distributed_hopping_matches_single_rank() {
        for nranks in [1usize, 2, 4] {
            let global_grid = Grid::new(GLOBAL, VL, SimdBackend::Fcmla);
            let d = WilsonDirac::new(random_gauge(global_grid.clone(), 41), 0.1);
            let psi = FermionField::random(global_grid.clone(), 42);
            let reference = d.hopping(&psi);

            let locals = run_multinode(GLOBAL, nranks, VL, SimdBackend::Fcmla, |ctx| {
                let u = local_gauge(ctx, 41);
                let f = local_fermion(ctx, 42);
                (ctx.offset, hopping_dist(ctx, &u, &f, Compression::None))
            });
            for (offset, local) in &locals {
                for lx in local.grid().coords() {
                    let gx: Coor = std::array::from_fn(|d| lx[d] + offset[d]);
                    for comp in 0..12 {
                        let a = local.peek(&lx, comp);
                        let b = reference.peek(&gx, comp);
                        assert!(
                            (a - b).abs() < 1e-12,
                            "nranks={nranks} {gx:?} comp {comp}: {a:?} vs {b:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn compressed_halos_introduce_only_f16_error() {
        let nranks = 2;
        let global_grid = Grid::new(GLOBAL, VL, SimdBackend::Fcmla);
        let d = WilsonDirac::new(random_gauge(global_grid.clone(), 51), 0.1);
        let psi = FermionField::random(global_grid.clone(), 52);
        let reference = d.hopping(&psi);

        let locals = run_multinode(GLOBAL, nranks, VL, SimdBackend::Fcmla, |ctx| {
            let u = local_gauge(ctx, 51);
            let f = local_fermion(ctx, 52);
            let h = hopping_dist(ctx, &u, &f, Compression::F16);
            (ctx.offset, h, ctx.sent_bytes.get())
        });
        let mut worst: f64 = 0.0;
        for (offset, local, sent) in &locals {
            assert!(*sent > 0, "compression path must actually send bytes");
            for lx in local.grid().coords() {
                let gx: Coor = std::array::from_fn(|d| lx[d] + offset[d]);
                for comp in 0..12 {
                    let a = local.peek(&lx, comp);
                    let b = reference.peek(&gx, comp);
                    worst = worst.max((a - b).abs());
                }
            }
        }
        // Interior untouched; boundary error bounded by f16 epsilon times
        // the data scale (|spinor| <= 1, SU(3) row norm 1, 8 legs).
        assert!(worst > 0.0, "f16 must actually round something");
        assert!(worst < 0.05, "worst error {worst} exceeds f16 budget");
    }

    #[test]
    fn half_spinor_exchange_matches_full_spinor_exchange() {
        let nranks = 2;
        let global_grid = Grid::new(GLOBAL, VL, SimdBackend::Fcmla);
        let d = WilsonDirac::new(random_gauge(global_grid.clone(), 71), 0.1);
        let psi = FermionField::random(global_grid.clone(), 72);
        let reference = d.hopping(&psi);

        let locals = run_multinode(GLOBAL, nranks, VL, SimdBackend::Fcmla, |ctx| {
            let u = local_gauge(ctx, 71);
            let f = local_fermion(ctx, 72);
            let h = hopping_dist_half(ctx, &u, &f, Compression::None);
            (ctx.offset, h, ctx.sent_bytes.get())
        });
        for (offset, local, _) in &locals {
            for lx in local.grid().coords().step_by(3) {
                let gx: Coor = std::array::from_fn(|d| lx[d] + offset[d]);
                for comp in 0..12 {
                    let a = local.peek(&lx, comp);
                    let b = reference.peek(&gx, comp);
                    assert!((a - b).abs() < 1e-11, "{gx:?} comp {comp}");
                }
            }
        }
    }

    #[test]
    fn spin_projection_halves_the_wire_volume() {
        let volume = |half: bool, comp: Compression| -> usize {
            run_multinode(GLOBAL, 2, VL, SimdBackend::Fcmla, |ctx| {
                let u = local_gauge(ctx, 73);
                let f = local_fermion(ctx, 74);
                if half {
                    let _ = hopping_dist_half(ctx, &u, &f, comp);
                } else {
                    let _ = hopping_dist(ctx, &u, &f, comp);
                }
                ctx.sent_bytes.get()
            })
            .into_iter()
            .sum()
        };
        let full_f64 = volume(false, Compression::None);
        let half_f64 = volume(true, Compression::None);
        let half_f16 = volume(true, Compression::F16);
        assert_eq!(
            full_f64,
            2 * half_f64,
            "spin projection must halve wire volume"
        );
        assert_eq!(half_f64, 4 * half_f16, "fp16 must quarter it again");
        assert_eq!(full_f64, 8 * half_f16, "combined: 8x reduction");
    }

    #[test]
    fn two_row_gauge_halo_matches_full_wire() {
        // A two-row gauge halo must reproduce the full-wire shift to the
        // SU(3) reconstruction bound: links are unitary, so rebuilding the
        // third row as the conjugate cross product is exact to rounding.
        let nranks = 2;
        let shifted = |wire: GaugeWire| {
            run_multinode(GLOBAL, nranks, VL, SimdBackend::Fcmla, |ctx| {
                let u = local_gauge(ctx, 91);
                cshift_dist_gauge(ctx, &u, SPLIT_DIM, 1, wire, Compression::None)
            })
        };
        let full = shifted(GaugeWire::Full);
        let two_row = shifted(GaugeWire::TwoRow);
        let mut worst: f64 = 0.0;
        for (a, b) in full.iter().zip(&two_row) {
            for lx in a.grid().coords() {
                for comp in 0..36 {
                    worst = worst.max((a.peek(&lx, comp) - b.peek(&lx, comp)).abs());
                }
            }
        }
        assert!(worst <= 1e-13, "two-row halo error {worst}");
        // Rows 0 and 1 never leave f64, so away from the reconstructed row
        // the shift is bit-identical.
        for (a, b) in full.iter().zip(&two_row) {
            for lx in a.grid().coords().step_by(3) {
                for mu in 0..4 {
                    for r in 0..2 {
                        for c in 0..3 {
                            let comp = crate::field::gauge_comp(mu, r, c);
                            assert_eq!(a.peek(&lx, comp), b.peek(&lx, comp));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn gauge_halo_bytes_on_wire_are_pinned_per_face() {
        // GLOBAL = [4,4,4,8] over 2 time ranks: each rank's halo face is
        // 4*4*4 = 64 sites. Per site a gauge halo carries 4 links:
        //   full f64:    4 * 18 scalars * 8 B = 576 B/site
        //   two-row f64: 4 * 12 scalars * 8 B = 384 B/site
        //   two-row f16: 4 * 12 scalars * 2 B =  96 B/site
        // Each rank sends exactly one face per shift, so `sent_bytes` and
        // the wire telemetry must pin to these values exactly.
        let face_sites = GLOBAL[0] * GLOBAL[1] * GLOBAL[2];
        let sent = |wire: GaugeWire, comp: Compression| -> Vec<usize> {
            run_multinode(GLOBAL, 2, VL, SimdBackend::Fcmla, |ctx| {
                let u = local_gauge(ctx, 93);
                let _ = cshift_dist_gauge(ctx, &u, SPLIT_DIM, 1, wire, comp);
                ctx.sent_bytes.get()
            })
        };
        for (wire, comp, bytes_per_site) in [
            (GaugeWire::Full, Compression::None, 576),
            (GaugeWire::TwoRow, Compression::None, 384),
            (GaugeWire::TwoRow, Compression::F16, 96),
        ] {
            for (rank, got) in sent(wire, comp).iter().enumerate() {
                assert_eq!(
                    *got,
                    face_sites * bytes_per_site,
                    "rank {rank} {wire:?}/{comp:?}"
                );
            }
        }
    }

    #[test]
    fn wire_volume_shrinks_4x_under_f16() {
        let volumes: Vec<usize> = [Compression::None, Compression::F16]
            .iter()
            .map(|&comp| {
                let locals = run_multinode(GLOBAL, 2, VL, SimdBackend::Fcmla, |ctx| {
                    let f = local_fermion(ctx, 61);
                    let _ = cshift_dist(ctx, &f, SPLIT_DIM, 1, comp);
                    ctx.sent_bytes.get()
                });
                locals.into_iter().sum()
            })
            .collect();
        assert_eq!(volumes[0], 4 * volumes[1]);
    }

    #[test]
    fn blocking_exchange_exposes_the_modeled_flight_time_as_wait() {
        // 50 µs latency, 1 GB/s: a blocking cshift exchange overlaps
        // nothing, so every received face's flight time must show up as
        // exposed wait.
        let stats = run_multinode_topo(
            GLOBAL,
            RankTopology::one_dim(2),
            VL,
            SimdBackend::Fcmla,
            NetworkModel::custom(50_000, 1.0),
            |ctx| {
                ctx.reset_comm_counters();
                let face = vec![1.0; 24];
                let _ = ctx.exchange(&face, &face, Compression::None);
                (ctx.wait_ns(), ctx.flight_ns())
            },
        );
        for (rank, (wait, flight)) in stats.iter().enumerate() {
            assert!(*flight >= 2 * 50_000, "rank {rank}: flight {flight}");
            // Exposure is measured against the rank's own post stamp, so
            // only the (sub-latency) encode time between posting and
            // waiting can shave anything off; half is a generous floor.
            assert!(
                *wait >= 25_000,
                "rank {rank}: blocking exchange must expose the latency, waited {wait} ns"
            );
        }
    }

    #[test]
    fn ring_allgather_delivers_every_ranks_slab_exactly_once() {
        let nranks = 4;
        let seen = run_multinode(GLOBAL, nranks, VL, SimdBackend::Fcmla, |ctx| {
            let slab = vec![ctx.rank as f64; 3];
            let mut seen = vec![0u32; ctx.nranks];
            let ret = ctx.ring_allgather(slab, |src, s| {
                assert_eq!(s.len(), 3);
                assert!(s.iter().all(|&x| x == src as f64), "slab mislabelled");
                seen[src] += 1;
            });
            // The returned buffer is slab-shaped, ready for reuse.
            assert_eq!(ret.len(), 3);
            assert!(ctx.reduce_bytes() > 0);
            assert_eq!(
                ctx.sent_bytes.get(),
                0,
                "allgather must not count as face bytes"
            );
            seen
        });
        for (rank, counts) in seen.iter().enumerate() {
            assert!(
                counts.iter().all(|&c| c == 1),
                "rank {rank} visits {counts:?}"
            );
        }
    }

    #[test]
    fn split_send_wait_pair_matches_the_blocking_exchange() {
        // post_face_send + wait_face_into must move exactly the same
        // payloads as exchange_dim, through reusable face buffers.
        let nranks = 2;
        let face = GLOBAL[0] * GLOBAL[1] * GLOBAL[2];
        let results = run_multinode(GLOBAL, nranks, VL, SimdBackend::Fcmla, |ctx| {
            let mine: Vec<f64> = (0..face).map(|i| (ctx.rank * face + i) as f64).collect();
            let mut from_prev = vec![0.0; face];
            let mut from_next = vec![0.0; face];
            for _round in 0..3 {
                ctx.post_face_send(SPLIT_DIM, true, &mine, Compression::None);
                ctx.post_face_send(SPLIT_DIM, false, &mine, Compression::None);
                ctx.wait_face_into(SPLIT_DIM, false, &mut from_prev);
                ctx.wait_face_into(SPLIT_DIM, true, &mut from_next);
            }
            (ctx.rank, from_prev, from_next)
        });
        for (rank, from_prev, from_next) in &results {
            let other = (rank + 1) % nranks;
            assert_eq!(from_prev[0], (other * face) as f64);
            assert_eq!(from_next[0], (other * face) as f64);
            assert_eq!(from_prev[face - 1], (other * face + face - 1) as f64);
        }
    }
}

#[cfg(test)]
mod grid_decomposition_tests {
    use super::*;
    use crate::dirac::WilsonDirac;
    use crate::tensor::su3::random_gauge;
    use crate::FermionField;

    const GLOBAL: Coor = [4, 4, 4, 8];
    const VL: sve::VectorLength = sve::VectorLength::of(256);

    /// Assemble rank-local fields from a shared global field.
    fn scatter(ctx: &RankCtx, u: &GaugeField, psi: &FermionField) -> (GaugeField, FermionField) {
        let mut lu = GaugeField::zero(ctx.grid.clone());
        let mut lf = FermionField::zero(ctx.grid.clone());
        for lx in ctx.grid.coords() {
            let gx = ctx.to_global(&lx);
            for comp in 0..36 {
                lu.poke(&lx, comp, u.peek(&gx, comp));
            }
            for comp in 0..12 {
                lf.poke(&lx, comp, psi.peek(&gx, comp));
            }
        }
        (lu, lf)
    }

    fn check_hopping(rank_grid: Coor) {
        let gg = Grid::new(GLOBAL, VL, SimdBackend::Fcmla);
        let u = random_gauge(gg.clone(), 81);
        let psi = FermionField::random(gg.clone(), 82);
        let want = WilsonDirac::new(u.clone(), 0.1).hopping(&psi);
        let locals = run_multinode_grid(GLOBAL, rank_grid, VL, SimdBackend::Fcmla, |ctx| {
            let (lu, lf) = scatter(ctx, &u, &psi);
            (ctx.offset, hopping_dist(ctx, &lu, &lf, Compression::None))
        });
        for (offset, local) in &locals {
            for lx in local.grid().coords().step_by(5) {
                let gx: Coor = std::array::from_fn(|d| lx[d] + offset[d]);
                for comp in 0..12 {
                    let a = local.peek(&lx, comp);
                    let b = want.peek(&gx, comp);
                    assert!(
                        (a - b).abs() < 1e-12,
                        "{rank_grid:?} {gx:?} comp {comp}: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_dimensional_rank_grid() {
        check_hopping([1, 1, 2, 2]);
    }

    #[test]
    fn three_dimensional_rank_grid() {
        check_hopping([2, 2, 1, 2]);
    }

    #[test]
    fn four_dimensional_rank_grid() {
        // "domain decomposition in 1 to 4 dimensions" (paper, Section II-A):
        // the full 4-D decomposition, 16 ranks.
        check_hopping([2, 2, 2, 2]);
    }

    #[test]
    fn spatial_only_decomposition() {
        check_hopping([4, 1, 1, 1]);
    }

    #[test]
    fn rank_grid_coordinates_cover_the_lattice() {
        let counts = run_multinode_grid(GLOBAL, [2, 1, 2, 2], VL, SimdBackend::Fcmla, |ctx| {
            assert_eq!(ctx.nranks, 8);
            (ctx.rank, ctx.rank_coor, ctx.offset, ctx.grid.volume())
        });
        let total: usize = counts.iter().map(|c| c.3).sum();
        assert_eq!(total, GLOBAL.iter().product::<usize>());
        // Offsets are all distinct.
        let mut offsets: Vec<_> = counts.iter().map(|c| c.2).collect();
        offsets.sort();
        offsets.dedup();
        assert_eq!(offsets.len(), 8);
    }
}
