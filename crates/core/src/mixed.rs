//! Mixed-precision solving — the payoff of the SIMD layer's precision
//! genericity.
//!
//! "Conversion of floating-point precision" is one of the machine-specific
//! operations Grid's abstraction layer provides per architecture (paper,
//! Section II-C), and SVE supports "vectorized 16-, 32-, 64-bit
//! floating-point operations, including ... conversion of precision"
//! (Section III-A). The production use of that machinery is the
//! mixed-precision defect-correction solver: run the expensive Krylov
//! iterations in single precision — twice the SIMD lanes per vector, twice
//! the virtual nodes — and restore full double-precision accuracy with a
//! cheap outer correction loop.
//!
//! Single precision doubles `lanes_c`, so the f32 lattice has a *different
//! virtual-node decomposition* than the f64 one — converting a field is a
//! genuine re-layout, exactly as in Grid (separate `GridF`/`GridD`).

use crate::dirac::WilsonDirac;
use crate::field::{Field, FieldKind};
use crate::layout::Grid;
use crate::solver::{cg_ws, SolverWorkspace};
use crate::FermionField;
use std::sync::Arc;
use sve::{Opcode, SveFloat};

/// Convert a field into a preallocated field of another precision (and its
/// grid's layout). The per-scalar conversions are accounted as vectorized
/// `fcvt` on the target context.
pub fn to_precision_into<K: FieldKind, E1: SveFloat, E2: SveFloat>(
    f: &Field<K, E1>,
    out: &mut Field<K, E2>,
) {
    assert_eq!(f.grid().fdims(), out.grid().fdims(), "lattices must match");
    for x in f.grid().coords() {
        for comp in 0..K::NCOMP {
            out.poke(&x, comp, f.peek(&x, comp));
        }
    }
    // One fcvt per vector of scalars converted (2 per complex).
    let scalars = (f.grid().volume() * K::NCOMP * 2) as u64;
    let grid2 = out.grid();
    let per_vec = grid2.engine().word_len() as u64;
    grid2
        .engine()
        .ctx()
        .counters()
        .bump_n(Opcode::Fcvt, scalars.div_ceil(per_vec));
}

/// Convert a field to another precision (and its grid's layout), allocating
/// the destination.
pub fn to_precision<K: FieldKind, E1: SveFloat, E2: SveFloat>(
    f: &Field<K, E1>,
    grid2: &Arc<Grid<E2>>,
) -> Field<K, E2> {
    let mut out = Field::<K, E2>::zero(grid2.clone());
    to_precision_into(f, &mut out);
    out
}

/// Report of a mixed-precision solve.
#[derive(Clone, Debug)]
pub struct MixedReport {
    /// Outer (double-precision) defect-correction steps.
    pub outer_iterations: usize,
    /// Total inner (single-precision) CG iterations.
    pub inner_iterations: usize,
    /// Final true relative residual in double precision.
    pub residual: f64,
    /// Whether the target tolerance was reached.
    pub converged: bool,
    /// Vector instructions retired on the f32 context.
    pub f32_instructions: u64,
    /// Vector instructions retired on the f64 context during the solve
    /// (approximate: counter delta on the operator's context).
    pub f64_instructions: u64,
}

/// Mixed-precision defect-correction solve of `M x = b`: inner CG on the
/// single-precision normal equations, outer double-precision residual
/// correction — Grid's `MixedPrecisionConjugateGradient` scheme.
pub fn mixed_precision_solve(
    op: &WilsonDirac<f64>,
    b: &FermionField,
    tol: f64,
    inner_tol: f64,
    max_outer: usize,
    max_inner: usize,
) -> (FermionField, MixedReport) {
    let x0 = FermionField::zero(b.grid().clone());
    mixed_precision_solve_from(op, b, x0, tol, inner_tol, max_outer, max_inner)
}

/// Mixed-precision defect correction from an arbitrary initial guess `x0` —
/// the resume entry point: a checkpoint of a mixed solve is just the
/// current double-precision iterate, because the outer loop recomputes the
/// defect from scratch each round (defect correction is self-correcting,
/// so restarting from a saved `x` loses no accuracy, only the inner
/// iterations already spent).
pub fn mixed_precision_solve_from(
    op: &WilsonDirac<f64>,
    b: &FermionField,
    x0: FermionField,
    tol: f64,
    inner_tol: f64,
    max_outer: usize,
    max_inner: usize,
) -> (FermionField, MixedReport) {
    let grid64 = b.grid().clone();
    let _span = qcd_trace::span!("solver.mixed", grid64.engine().ctx());
    let grid32 = Grid::<f32>::new(grid64.fdims(), grid64.vl(), grid64.engine().backend());
    let f64_before = grid64.engine().ctx().counters().total();

    // Single-precision replica of the operator.
    let u32 = to_precision(op.gauge(), &grid32);
    let op32 = WilsonDirac::<f32>::new(u32, op.mass);

    let b_norm2 = b.norm2();
    assert!(b_norm2 > 0.0, "mixed solve needs a nonzero right-hand side");
    let mut x = x0;
    let mut outer = 0;
    let mut inner_total = 0;
    let mut residual = 1.0;

    // All outer-loop buffers and the inner solver's workspace are hoisted
    // out of the restart loop: the defect-correction rounds reuse the same
    // storage end to end.
    let mut ax = FermionField::zero(grid64.clone());
    let mut r = FermionField::zero(grid64.clone());
    let mut d64 = FermionField::zero(grid64.clone());
    let mut r32 = Field::<crate::field::FermionKind, f32>::zero(grid32.clone());
    let mut rhs32 = Field::<crate::field::FermionKind, f32>::zero(grid32.clone());
    let mut ws32 = SolverWorkspace::<f32>::new(grid32.clone());

    while outer < max_outer {
        // Double-precision defect (fused subtract-and-norm sweep).
        op.apply_into(&x, &mut ax);
        residual = (r.sub_norm2(b, &ax) / b_norm2).sqrt();
        if residual <= tol {
            break;
        }
        // Inner solve M d = r in single precision (normal equations),
        // through the persistent workspace.
        to_precision_into(&r, &mut r32);
        op32.apply_dag_into(&r32, &mut rhs32);
        let (d32, inner_report) = cg_ws(&op32, &rhs32, &mut ws32, inner_tol, max_inner);
        inner_total += inner_report.iterations;
        // Prolongate and correct.
        to_precision_into(&d32, &mut d64);
        x.add_assign_field(&d64);
        outer += 1;
    }

    let f32_instructions = grid32.engine().ctx().counters().total();
    let f64_instructions = grid64.engine().ctx().counters().total() - f64_before;
    (
        x,
        MixedReport {
            outer_iterations: outer,
            inner_iterations: inner_total,
            residual,
            converged: residual <= tol,
            f32_instructions,
            f64_instructions,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::SimdBackend;
    use crate::solver::{cg, solve_wilson};
    use crate::tensor::su3::random_gauge;
    use sve::VectorLength;

    fn setup() -> (WilsonDirac<f64>, FermionField) {
        let g = Grid::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 121);
        let b = FermionField::random(g.clone(), 122);
        (WilsonDirac::new(u, 0.3), b)
    }

    #[test]
    fn f32_lattice_has_twice_the_virtual_nodes() {
        let vl = VectorLength::of(512);
        let g64 = Grid::<f64>::new([4, 4, 4, 4], vl, SimdBackend::Fcmla);
        let g32 = Grid::<f32>::new([4, 4, 4, 4], vl, SimdBackend::Fcmla);
        assert_eq!(g32.lanes_c(), 2 * g64.lanes_c());
        assert_eq!(2 * g32.osites(), g64.osites());
    }

    #[test]
    fn precision_round_trip_is_f32_exact() {
        let vl = VectorLength::of(512);
        let g64 = Grid::<f64>::new([4, 4, 4, 4], vl, SimdBackend::Fcmla);
        let g32 = Grid::<f32>::new([4, 4, 4, 4], vl, SimdBackend::Fcmla);
        let f = FermionField::random(g64.clone(), 7);
        let f32v = to_precision(&f, &g32);
        let back = to_precision(&f32v, &g64);
        // Error bounded by f32 epsilon relative to each value.
        for x in g64.coords().step_by(7) {
            for comp in 0..12 {
                let a = f.peek(&x, comp);
                let b = back.peek(&x, comp);
                assert!((a - b).abs() <= 1.2e-7 * a.abs().max(1e-3));
            }
        }
        // And converting twice is idempotent (f32 values are exact in f64).
        let again = to_precision(&to_precision(&back, &g32), &g64);
        assert_eq!(again.max_abs_diff(&back), 0.0);
    }

    #[test]
    fn single_precision_wilson_operator_works() {
        // The whole operator stack runs at f32 on its own layout.
        let g32 = Grid::<f32>::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla);
        let u = random_gauge(g32.clone(), 123);
        let op = WilsonDirac::<f32>::new(u, 0.3);
        let b = Field::<crate::field::FermionKind, f32>::random(g32.clone(), 124);
        let (x, report) = cg(&op, &b, 1e-4, 1000);
        assert!(report.converged, "{report:?}");
        assert!(report.residual < 1e-3);
        let _ = x;
    }

    #[test]
    fn mixed_solve_reaches_double_precision_accuracy() {
        // The inner solver is single precision (can't go below ~1e-6), yet
        // defect correction drives the f64 residual to 1e-10.
        let (op, b) = setup();
        let (x, report) = mixed_precision_solve(&op, &b, 1e-10, 1e-4, 30, 500);
        assert!(report.converged, "{report:?}");
        assert!(report.residual <= 1e-10, "residual {}", report.residual);
        assert!(report.outer_iterations >= 2, "needs multiple corrections");
        // Verify against the plain double solve.
        let (x_ref, _) = solve_wilson(&op, &b, 1e-10, 3000);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&x, &x_ref);
        assert!((diff.norm2() / x_ref.norm2()).sqrt() < 1e-8);
    }

    #[test]
    fn mixed_solve_resumed_from_an_iterate_still_converges() {
        // Kill a mixed solve after a couple of outer rounds, keep only the
        // f64 iterate (the mixed checkpoint payload), resume from it: same
        // final accuracy, strictly fewer additional outer rounds than a
        // cold start.
        let (op, b) = setup();
        let (x_partial, partial) = mixed_precision_solve(&op, &b, 1e-4, 1e-4, 2, 500);
        assert!(partial.outer_iterations <= 2);
        let (x, resumed) = mixed_precision_solve_from(&op, &b, x_partial, 1e-10, 1e-4, 30, 500);
        assert!(resumed.converged, "{resumed:?}");
        assert!(resumed.residual <= 1e-10);
        let (_, cold) = mixed_precision_solve(&op, &b, 1e-10, 1e-4, 30, 500);
        assert!(
            resumed.outer_iterations < cold.outer_iterations,
            "resume must reuse the checkpointed progress ({} vs {})",
            resumed.outer_iterations,
            cold.outer_iterations
        );
        let (x_ref, _) = solve_wilson(&op, &b, 1e-10, 3000);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&x, &x_ref);
        assert!((diff.norm2() / x_ref.norm2()).sqrt() < 1e-8);
    }

    #[test]
    fn bulk_of_the_work_runs_in_single_precision() {
        let (op, b) = setup();
        let (_, report) = mixed_precision_solve(&op, &b, 1e-9, 1e-4, 30, 500);
        assert!(
            report.f32_instructions > 4 * report.f64_instructions,
            "f32 {} vs f64 {}",
            report.f32_instructions,
            report.f64_instructions
        );
        assert!(report.inner_iterations > 10 * report.outer_iterations);
    }
}
