//! Mixed-precision solving — the payoff of the SIMD layer's precision
//! genericity.
//!
//! "Conversion of floating-point precision" is one of the machine-specific
//! operations Grid's abstraction layer provides per architecture (paper,
//! Section II-C), and SVE supports "vectorized 16-, 32-, 64-bit
//! floating-point operations, including ... conversion of precision"
//! (Section III-A). The production use of that machinery is the
//! mixed-precision defect-correction solver: run the expensive Krylov
//! iterations in single precision — twice the SIMD lanes per vector, twice
//! the virtual nodes — and restore full double-precision accuracy with a
//! cheap outer correction loop.
//!
//! Single precision doubles `lanes_c`, so the f32 lattice has a *different
//! virtual-node decomposition* than the f64 one — converting a field is a
//! genuine re-layout, exactly as in Grid (separate `GridF`/`GridD`).

use crate::dirac::WilsonDirac;
use crate::field::{cg_update_x_r, FermionKind, Field, FieldKind};
use crate::layout::Grid;
use crate::reduce;
use crate::solver::{cg_canonical_ws, cg_ws, SolverWorkspace};
use crate::FermionField;
use qcd_metrics::{HealthEvent, HealthMonitor};
use rayon::prelude::*;
use std::sync::Arc;
use sve::{Opcode, SveFloat, F16};

/// Convert a field into a preallocated field of another precision (and its
/// grid's layout). The per-scalar conversions are accounted as vectorized
/// `fcvt` on the target context.
pub fn to_precision_into<K: FieldKind, E1: SveFloat, E2: SveFloat>(
    f: &Field<K, E1>,
    out: &mut Field<K, E2>,
) {
    assert_eq!(f.grid().fdims(), out.grid().fdims(), "lattices must match");
    for x in f.grid().coords() {
        for comp in 0..K::NCOMP {
            out.poke(&x, comp, f.peek(&x, comp));
        }
    }
    // One fcvt per vector of scalars converted (2 per complex).
    let scalars = (f.grid().volume() * K::NCOMP * 2) as u64;
    let grid2 = out.grid();
    let per_vec = grid2.engine().word_len() as u64;
    grid2
        .engine()
        .ctx()
        .counters()
        .bump_n(Opcode::Fcvt, scalars.div_ceil(per_vec));
}

/// Convert a field to another precision (and its grid's layout), allocating
/// the destination.
pub fn to_precision<K: FieldKind, E1: SveFloat, E2: SveFloat>(
    f: &Field<K, E1>,
    grid2: &Arc<Grid<E2>>,
) -> Field<K, E2> {
    let mut out = Field::<K, E2>::zero(grid2.clone());
    to_precision_into(f, &mut out);
    out
}

/// Report of a mixed-precision solve.
#[derive(Clone, Debug)]
pub struct MixedReport {
    /// Outer (double-precision) defect-correction steps.
    pub outer_iterations: usize,
    /// Total inner (single-precision) CG iterations.
    pub inner_iterations: usize,
    /// Final true relative residual in double precision.
    pub residual: f64,
    /// Whether the target tolerance was reached.
    pub converged: bool,
    /// Vector instructions retired on the f32 context.
    pub f32_instructions: u64,
    /// Vector instructions retired on the f64 context during the solve
    /// (approximate: counter delta on the operator's context).
    pub f64_instructions: u64,
}

/// Mixed-precision defect-correction solve of `M x = b`: inner CG on the
/// single-precision normal equations, outer double-precision residual
/// correction — Grid's `MixedPrecisionConjugateGradient` scheme.
pub fn mixed_precision_solve(
    op: &WilsonDirac<f64>,
    b: &FermionField,
    tol: f64,
    inner_tol: f64,
    max_outer: usize,
    max_inner: usize,
) -> (FermionField, MixedReport) {
    let x0 = FermionField::zero(b.grid().clone());
    mixed_precision_solve_from(op, b, x0, tol, inner_tol, max_outer, max_inner)
}

/// Mixed-precision defect correction from an arbitrary initial guess `x0` —
/// the resume entry point: a checkpoint of a mixed solve is just the
/// current double-precision iterate, because the outer loop recomputes the
/// defect from scratch each round (defect correction is self-correcting,
/// so restarting from a saved `x` loses no accuracy, only the inner
/// iterations already spent).
pub fn mixed_precision_solve_from(
    op: &WilsonDirac<f64>,
    b: &FermionField,
    x0: FermionField,
    tol: f64,
    inner_tol: f64,
    max_outer: usize,
    max_inner: usize,
) -> (FermionField, MixedReport) {
    let grid64 = b.grid().clone();
    let _span = qcd_trace::span!("solver.mixed", grid64.engine().ctx());
    let grid32 = Grid::<f32>::new(grid64.fdims(), grid64.vl(), grid64.engine().backend());
    let f64_before = grid64.engine().ctx().counters().total();

    // Single-precision replica of the operator.
    let u32 = to_precision(op.gauge(), &grid32);
    let op32 = WilsonDirac::<f32>::new(u32, op.mass);

    let b_norm2 = b.norm2();
    assert!(b_norm2 > 0.0, "mixed solve needs a nonzero right-hand side");
    let mut x = x0;
    let mut outer = 0;
    let mut inner_total = 0;
    let mut residual = 1.0;

    // All outer-loop buffers and the inner solver's workspace are hoisted
    // out of the restart loop: the defect-correction rounds reuse the same
    // storage end to end.
    let mut ax = FermionField::zero(grid64.clone());
    let mut r = FermionField::zero(grid64.clone());
    let mut d64 = FermionField::zero(grid64.clone());
    let mut r32 = Field::<crate::field::FermionKind, f32>::zero(grid32.clone());
    let mut rhs32 = Field::<crate::field::FermionKind, f32>::zero(grid32.clone());
    let mut ws32 = SolverWorkspace::<f32>::new(grid32.clone());

    while outer < max_outer {
        // Double-precision defect (fused subtract-and-norm sweep).
        op.apply_into(&x, &mut ax);
        residual = (r.sub_norm2(b, &ax) / b_norm2).sqrt();
        if residual <= tol {
            break;
        }
        // Inner solve M d = r in single precision (normal equations),
        // through the persistent workspace.
        to_precision_into(&r, &mut r32);
        op32.apply_dag_into(&r32, &mut rhs32);
        let (d32, inner_report) = cg_ws(&op32, &rhs32, &mut ws32, inner_tol, max_inner);
        inner_total += inner_report.iterations;
        // Prolongate and correct.
        to_precision_into(&d32, &mut d64);
        x.add_assign_field(&d64);
        outer += 1;
    }

    let f32_instructions = grid32.engine().ctx().counters().total();
    let f64_instructions = grid64.engine().ctx().counters().total() - f64_before;
    (
        x,
        MixedReport {
            outer_iterations: outer,
            inner_iterations: inner_total,
            residual,
            converged: residual <= tol,
            f32_instructions,
            f64_instructions,
        },
    )
}

// ---------------------------------------------------------------------------
// Binary16 canonical reductions (f32 scalar accumulation)
// ---------------------------------------------------------------------------

/// Relative-residual floor of the binary16 compute tier: the f16 unit
/// roundoff `2⁻¹⁰`  ≈ 9.8 × 10⁻⁴. A recurrence residual driven below this
/// level is dominated by representation noise of the iterate and stops
/// carrying information, so an inner f16 cycle exits here and hands the
/// true residual back to the f32 tier (a *reliable update*).
pub const F16_RESIDUAL_FLOOR: f64 = 9.765625e-4;

/// Scatter the per-site scalar `Σ_comp |f(x)|²` of a binary16 field into
/// `out` in global lexicographic site order, accumulating each site in
/// **f32**: the square of any f16 value is exact in f32 (11-bit mantissas
/// square into at most 22 bits), so only the component-order additions
/// round — in a fixed order that depends on neither the SIMD layout nor
/// the worker count. [`reduce::canonical_sum`] over `out` therefore returns
/// the same bits at every vector length and thread count, the same regime
/// as [`Field::site_norm2_lex`] at f64/f32.
pub fn f16_site_norm2_lex<K: FieldKind>(f: &Field<K, F16>, out: &mut [f64]) {
    let grid = f.grid();
    assert_eq!(out.len(), grid.volume(), "scatter buffer != volume");
    let fdims = grid.fdims();
    out.par_chunks_mut(reduce::CHUNK_SITES)
        .enumerate()
        .for_each(|(ci, chunk)| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                let x = crate::layout::delex(ci * reduce::CHUNK_SITES + k, &fdims);
                let (osite, lane) = grid.coor_to_osite_lane(&x);
                let li = 2 * lane;
                let mut s = 0.0f32;
                for comp in 0..K::NCOMP {
                    let w = f.word(osite, comp);
                    let (re, im) = (w[li].to_f32(), w[li + 1].to_f32());
                    s += re * re + im * im;
                }
                *slot = s as f64;
            }
        });
}

/// Scatter the per-site scalar `Re Σ_comp conj(a)·b` of two binary16
/// fields in global lexicographic site order, accumulating each site in
/// f32 (products of f16 values are exact in f32; see
/// [`f16_site_norm2_lex`]).
pub fn f16_site_inner_re_lex<K: FieldKind>(a: &Field<K, F16>, b: &Field<K, F16>, out: &mut [f64]) {
    let grid = a.grid();
    assert_eq!(grid.fdims(), b.grid().fdims(), "lattices must match");
    assert_eq!(out.len(), grid.volume(), "scatter buffer != volume");
    let fdims = grid.fdims();
    out.par_chunks_mut(reduce::CHUNK_SITES)
        .enumerate()
        .for_each(|(ci, chunk)| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                let x = crate::layout::delex(ci * reduce::CHUNK_SITES + k, &fdims);
                let (osite, lane) = grid.coor_to_osite_lane(&x);
                let (bsite, blane) = b.grid().coor_to_osite_lane(&x);
                let (li, bi) = (2 * lane, 2 * blane);
                let mut s = 0.0f32;
                for comp in 0..K::NCOMP {
                    let aw = a.word(osite, comp);
                    let bw = b.word(bsite, comp);
                    s += aw[li].to_f32() * bw[bi].to_f32()
                        + aw[li + 1].to_f32() * bw[bi + 1].to_f32();
                }
                *slot = s as f64;
            }
        });
}

/// `|f|²` of a binary16 field through the canonical reduction with f32
/// per-site accumulation. `buf` is the caller-held scatter buffer
/// (`volume` entries) so hot loops allocate nothing.
pub fn f16_canonical_norm2<K: FieldKind>(f: &Field<K, F16>, buf: &mut [f64]) -> f64 {
    f16_site_norm2_lex(f, buf);
    reduce::canonical_sum(buf)
}

/// `Re ⟨a, b⟩` of two binary16 fields through the canonical reduction with
/// f32 per-site accumulation.
pub fn f16_canonical_inner_re<K: FieldKind>(
    a: &Field<K, F16>,
    b: &Field<K, F16>,
    buf: &mut [f64],
) -> f64 {
    f16_site_inner_re_lex(a, b, buf);
    reduce::canonical_sum(buf)
}

// ---------------------------------------------------------------------------
// The three-level precision ladder
// ---------------------------------------------------------------------------

/// Configuration of the three-level reliable-update ladder
/// ([`ladder_solve`]). The defaults of [`LadderConfig::new`] are the
/// production recipe; [`LadderConfig::f32_only`] is the two-level
/// comparison baseline (identical outer/middle structure, binary16 tier
/// disabled).
#[derive(Clone, Debug)]
pub struct LadderConfig {
    /// Target relative residual of the outer double-precision system.
    pub tol: f64,
    /// Per-outer-round target of the f32 middle level, relative to the
    /// round's normal-equation right-hand side.
    pub inner_tol: f64,
    /// Per-cycle target of the binary16 tier on its *normalized* residual
    /// system. Production values sit above [`F16_RESIDUAL_FLOOR`]; a value
    /// below the floor asks the f16 recurrence for more than it can
    /// represent, stalls it, and exercises the health-driven fallback.
    pub f16_cycle_tol: f64,
    /// Outer defect-correction round budget.
    pub max_outer: usize,
    /// Iteration budget per inner cycle (f16) or per middle round (f32).
    pub max_inner: usize,
    /// Reliable-update cycles per outer round before the round is handed
    /// to the f32 tier regardless of progress.
    pub max_cycles: usize,
    /// Whether the binary16 tier starts enabled. The ladder may demote
    /// itself (f16 → f32) at runtime; [`LadderReport::f16_active_at_exit`]
    /// reports the final state so a resume can carry it over.
    pub use_f16: bool,
    /// Stall window of the inner-tier health monitor.
    pub stall_window: usize,
    /// Divergence factor of the inner-tier health monitor.
    pub divergence_factor: f64,
}

impl LadderConfig {
    /// Production three-level recipe targeting `tol`.
    pub fn new(tol: f64) -> Self {
        LadderConfig {
            tol,
            inner_tol: 1e-4,
            f16_cycle_tol: 3.90625e-3, // 2⁻⁸: four f16 bits above the floor
            max_outer: 30,
            max_inner: 500,
            max_cycles: 8,
            use_f16: true,
            stall_window: qcd_metrics::DEFAULT_STALL_WINDOW,
            divergence_factor: qcd_metrics::DEFAULT_DIVERGENCE_FACTOR,
        }
    }

    /// The two-level baseline: same outer/middle structure, f16 tier off.
    pub fn f32_only(tol: f64) -> Self {
        LadderConfig {
            use_f16: false,
            ..LadderConfig::new(tol)
        }
    }
}

/// Report of a [`ladder_solve`].
#[derive(Clone, Debug)]
pub struct LadderReport {
    /// Outer (double-precision) defect-correction rounds.
    pub outer_iterations: usize,
    /// Total binary16 inner-CG iterations.
    pub f16_iterations: usize,
    /// Total f32 CG iterations (fallback rounds and f32-only ladders).
    pub f32_iterations: usize,
    /// Reliable updates performed: f32 residual recomputations closing an
    /// f16 cycle.
    pub reliable_updates: usize,
    /// Health-driven tier demotions (f16 → f32).
    pub tier_fallbacks: usize,
    /// Whether the binary16 tier was still enabled when the solve ended.
    /// Pass this back via [`LadderConfig::use_f16`] when resuming from a
    /// checkpointed iterate so the continuation replays the same tiers.
    pub f16_active_at_exit: bool,
    /// Final true relative residual in double precision.
    pub residual: f64,
    /// Whether the target tolerance was reached.
    pub converged: bool,
    /// Outer relative residuals, entry 0 = before the first correction.
    /// Every entry is a canonical reduction: bit-identical across vector
    /// lengths and thread counts.
    pub outer_history: Vec<f64>,
    /// Concatenated inner-tier relative-residual histories (f16 cycles in
    /// order, then any f32 rounds), likewise canonical.
    pub inner_history: Vec<f64>,
    /// Health events the inner-tier monitors raised.
    pub health: Vec<HealthEvent>,
    /// Vector instructions retired on the binary16 context.
    pub f16_instructions: u64,
    /// Vector instructions retired on the f32 context.
    pub f32_instructions: u64,
    /// Vector instructions retired on the f64 context during the solve.
    pub f64_instructions: u64,
}

/// Scratch for one binary16 inner cycle, hoisted across all cycles.
struct F16Tier {
    op: WilsonDirac<F16>,
    b: Field<FermionKind, F16>,
    x: Field<FermionKind, F16>,
    r: Field<FermionKind, F16>,
    p: Field<FermionKind, F16>,
    ws: SolverWorkspace<F16>,
}

/// One binary16 inner-CG cycle on the normalized residual system
/// `A†A e = ŝ`, with canonical f32-accumulated steering scalars. Appends
/// per-iteration relative residuals to `history` and feeds them to
/// `monitor`; returns `(iterations, aborted)` where `aborted` means the
/// monitor raised an episode (stall / divergence / non-finite) and the
/// caller must demote the tier.
#[allow(clippy::too_many_arguments)]
fn f16_cycle(
    t: &mut F16Tier,
    site_buf: &mut [f64],
    tol: f64,
    max_iter: usize,
    monitor: &mut HealthMonitor,
    history: &mut Vec<f64>,
) -> (usize, bool) {
    // x = 0, r = p = b  (computed as b − A·0 so no copy primitive is needed).
    t.x.scale(0.0);
    t.op.mdag_m_into(&t.x, &mut t.ws.tmp, &mut t.ws.ap);
    t.r.sub(&t.b, &t.ws.ap);
    t.p.sub(&t.b, &t.ws.ap);
    let b2 = f16_canonical_norm2(&t.b, site_buf);
    if b2.is_nan() || b2 <= 0.0 {
        // The residual underflowed binary16 entirely: nothing to solve at
        // this tier.
        monitor.observe(f64::NAN);
        return (0, true);
    }
    let mut r2 = f16_canonical_norm2(&t.r, site_buf);
    history.push((r2 / b2).sqrt());
    let events_at_entry = monitor.events().len();
    monitor.observe(*history.last().unwrap());

    let mut iterations = 0;
    let mut aborted = false;
    while iterations < max_iter && r2 > tol * tol * b2 {
        t.op.mdag_m_into(&t.p, &mut t.ws.tmp, &mut t.ws.ap);
        let p_ap = f16_canonical_inner_re(&t.p, &t.ws.ap, site_buf);
        if p_ap.is_nan() || p_ap <= 0.0 {
            // Curvature lost to binary16 noise — surface it as a
            // non-finite episode and demote.
            monitor.observe(f64::NAN);
            aborted = true;
            break;
        }
        let alpha = r2 / p_ap;
        // The fused sweep's returned |r|² is layout-dependent; discard it
        // and recompute canonically (f32-accumulated) so the trajectory is
        // VL- and thread-invariant.
        let _ = cg_update_x_r(&mut t.x, &mut t.r, alpha, &t.p, &t.ws.ap);
        let r2_new = f16_canonical_norm2(&t.r, site_buf);
        let beta = r2_new / r2;
        t.p.aypx(beta, &t.r);
        r2 = r2_new;
        iterations += 1;
        history.push((r2 / b2).sqrt());
        monitor.observe(*history.last().unwrap());
        if monitor.events().len() > events_at_entry {
            aborted = true;
            break;
        }
    }
    (iterations, aborted)
}

/// Three-level reliable-update mixed-precision solve of `M x = b`:
/// f64 outer defect correction ↔ f32 middle ↔ binary16 inner CG.
///
/// Each outer round converts the double-precision defect to f32 and solves
/// the normal-equation correction system at the lowest tier that still
/// makes progress. With the binary16 tier enabled, the f32 residual is
/// **normalized to unit norm** (binary16 spans only ±65504 with ~2⁻¹¹
/// relative grain, so the raw residual of a late round would denormalize),
/// converted down, and attacked by an inner f16 CG whose steering scalars
/// are canonical f32-accumulated reductions. The cycle exits at
/// [`LadderConfig::f16_cycle_tol`] or at the [`F16_RESIDUAL_FLOOR`]; the
/// correction is promoted back and the **reliable update** recomputes the
/// true f32 residual before the next cycle. A [`HealthMonitor`] watches
/// every inner history: a stall, divergence or non-finite episode demotes
/// the ladder to the f32 tier for the rest of the solve (a `tier`-kind
/// flight event records the switch), where [`cg_canonical_ws`] finishes
/// the round.
///
/// Every steering scalar at every level is a canonical reduction, so
/// residual histories and the solution are **bit-identical across vector
/// lengths and thread counts**.
pub fn ladder_solve(
    op: &WilsonDirac<f64>,
    b: &FermionField,
    cfg: &LadderConfig,
) -> (FermionField, LadderReport) {
    let x0 = FermionField::zero(b.grid().clone());
    ladder_solve_from(op, b, x0, cfg)
}

/// [`ladder_solve`] from an arbitrary initial guess — the resume entry
/// point. As with [`mixed_precision_solve_from`], a checkpoint of a ladder
/// solve is just the double-precision iterate: every outer round is a
/// memoryless function of `x`, so resuming at a round boundary replays the
/// uninterrupted trajectory bit for bit (carry
/// [`LadderReport::f16_active_at_exit`] into [`LadderConfig::use_f16`] if
/// the interrupted run had demoted tiers).
pub fn ladder_solve_from(
    op: &WilsonDirac<f64>,
    b: &FermionField,
    x0: FermionField,
    cfg: &LadderConfig,
) -> (FermionField, LadderReport) {
    let grid64 = b.grid().clone();
    let _span = qcd_trace::span!("solver.ladder", grid64.engine().ctx());
    let grid32 = Grid::<f32>::new(grid64.fdims(), grid64.vl(), grid64.engine().backend());
    let f64_before = grid64.engine().ctx().counters().total();
    let volume = grid64.volume();

    let u32f = to_precision(op.gauge(), &grid32);
    let op32 = WilsonDirac::<f32>::new(u32f, op.mass);

    let mut f16_on = cfg.use_f16;
    let cycle_tol = cfg.f16_cycle_tol;
    let mut tier16 = if f16_on {
        let grid16 = Grid::<F16>::new(grid64.fdims(), grid64.vl(), grid64.engine().backend());
        let u16f = to_precision(op.gauge(), &grid16);
        Some(F16Tier {
            op: WilsonDirac::<F16>::new(u16f, op.mass),
            b: Field::zero(grid16.clone()),
            x: Field::zero(grid16.clone()),
            r: Field::zero(grid16.clone()),
            p: Field::zero(grid16.clone()),
            ws: SolverWorkspace::<F16>::new(grid16),
        })
    } else {
        None
    };

    let b_norm2 = b.canonical_norm2();
    assert!(
        b_norm2 > 0.0,
        "ladder solve needs a nonzero right-hand side"
    );
    let mut x = x0;
    let mut outer = 0;
    let mut f16_iters = 0;
    let mut f32_iters = 0;
    let mut reliable_updates = 0;
    let mut tier_fallbacks = 0;
    let mut residual;
    let mut outer_history = Vec::new();
    let mut inner_history = Vec::new();
    let mut health = Vec::new();

    // Outer-loop buffers hoisted across every round.
    let mut ax = FermionField::zero(grid64.clone());
    let mut r = FermionField::zero(grid64.clone());
    let mut d64 = FermionField::zero(grid64.clone());
    let mut r32 = Field::<FermionKind, f32>::zero(grid32.clone());
    let mut rhs32 = Field::<FermionKind, f32>::zero(grid32.clone());
    let mut d32 = Field::<FermionKind, f32>::zero(grid32.clone());
    let mut s32 = Field::<FermionKind, f32>::zero(grid32.clone());
    let mut e32 = Field::<FermionKind, f32>::zero(grid32.clone());
    let mut ws32 = SolverWorkspace::<f32>::new(grid32.clone());
    let mut site_buf = vec![0.0f64; volume];

    loop {
        // Double-precision defect, canonically reduced.
        op.apply_into(&x, &mut ax);
        r.sub(b, &ax);
        residual = (r.canonical_norm2() / b_norm2).sqrt();
        outer_history.push(residual);
        if residual <= cfg.tol || outer >= cfg.max_outer {
            break;
        }

        to_precision_into(&r, &mut r32);
        let rhs_n2;
        {
            let _t32 = qcd_trace::span!("solver.tier.f32", grid32.engine().ctx());
            op32.apply_dag_into(&r32, &mut rhs32);
            rhs_n2 = rhs32.canonical_norm2();
            d32.scale(0.0);
            s32.clone_from(&rhs32);
        }
        let mid_target = cfg.inner_tol * cfg.inner_tol * rhs_n2;
        let mut s2 = rhs_n2;
        let mut cycles = 0;

        // Binary16 cycles with reliable updates in between.
        while f16_on && s2 > mid_target && cycles < cfg.max_cycles {
            let t = tier16.as_mut().expect("f16 tier enabled but not built");
            let scale = s2.sqrt();
            let rel = (s2 / rhs_n2).sqrt();
            qcd_metrics::record_event(
                "tier",
                "solver.ladder.switch:f32_to_f16",
                &[
                    ("outer", outer as f64),
                    ("cycle", cycles as f64),
                    ("rel_residual", rel),
                ],
            );
            let mut monitor = HealthMonitor::with_thresholds(
                "solver.ladder.f16",
                cfg.stall_window,
                cfg.divergence_factor,
            );
            let (it, aborted) = {
                let g16 = t.b.grid().clone();
                let _t16 = qcd_trace::span!("solver.tier.f16", g16.engine().ctx());
                // Normalize into binary16 range; `s32` is rebuilt by the
                // reliable update (or the fallback path) before reuse.
                s32.scale(1.0 / scale);
                to_precision_into(&s32, &mut t.b);
                f16_cycle(
                    t,
                    &mut site_buf,
                    cycle_tol,
                    cfg.max_inner,
                    &mut monitor,
                    &mut inner_history,
                )
            };
            f16_iters += it;
            health.extend(monitor.into_events());
            if aborted {
                tier_fallbacks += 1;
                f16_on = false;
                qcd_metrics::record_event(
                    "tier",
                    "solver.ladder.fallback:f16_to_f32",
                    &[
                        ("outer", outer as f64),
                        ("cycle", cycles as f64),
                        ("rel_residual", rel),
                    ],
                );
                qcd_metrics::counter("ladder.tier_fallbacks").inc();
                // Rebuild the residual the cycle consumed.
                let _t32 = qcd_trace::span!("solver.tier.f32", grid32.engine().ctx());
                op32.mdag_m_into(&d32, &mut ws32.tmp, &mut ws32.ap);
                s32.sub(&rhs32, &ws32.ap);
                s2 = s32.canonical_norm2();
                break;
            }
            // Promote the correction and perform the reliable update:
            // recompute the true f32 residual of the accumulated `d32`.
            {
                let _t32 = qcd_trace::span!("solver.tier.f32", grid32.engine().ctx());
                to_precision_into(&t.x, &mut e32);
                d32.axpy_inplace(scale, &e32);
                op32.mdag_m_into(&d32, &mut ws32.tmp, &mut ws32.ap);
                s32.sub(&rhs32, &ws32.ap);
            }
            let s2_new = s32.canonical_norm2();
            reliable_updates += 1;
            qcd_metrics::record_event(
                "tier",
                "solver.ladder.switch:f16_to_f32",
                &[
                    ("outer", outer as f64),
                    ("cycle", cycles as f64),
                    ("rel_residual", (s2_new / rhs_n2).sqrt()),
                ],
            );
            if s2_new >= s2 {
                // The f16 tier stopped paying for itself (floor reached
                // before the middle target): demote for good.
                tier_fallbacks += 1;
                f16_on = false;
                qcd_metrics::record_event(
                    "tier",
                    "solver.ladder.fallback:f16_to_f32",
                    &[
                        ("outer", outer as f64),
                        ("cycle", cycles as f64),
                        ("rel_residual", (s2_new / rhs_n2).sqrt()),
                    ],
                );
                qcd_metrics::counter("ladder.tier_fallbacks").inc();
            }
            s2 = s2_new;
            cycles += 1;
        }

        // Whatever the binary16 tier left behind is finished at f32.
        if s2 > mid_target {
            let _t32 = qcd_trace::span!("solver.tier.f32", grid32.engine().ctx());
            // Aim the leftover system so the *round's* residual lands at
            // `inner_tol` relative to `rhs32`.
            let eff_tol = (mid_target / s2).sqrt().min(0.9);
            let (e, rep) = cg_canonical_ws(
                &op32,
                &s32,
                &mut ws32,
                eff_tol,
                cfg.max_inner,
                "solver.ladder.f32",
            );
            f32_iters += rep.iterations;
            inner_history.extend_from_slice(&rep.history);
            health.extend(rep.health);
            d32.add_assign_field(&e);
        }

        to_precision_into(&d32, &mut d64);
        x.add_assign_field(&d64);
        outer += 1;
    }

    qcd_metrics::counter("ladder.iterations.f64").add(outer as u64);
    qcd_metrics::counter("ladder.iterations.f32").add(f32_iters as u64);
    qcd_metrics::counter("ladder.iterations.f16").add(f16_iters as u64);
    qcd_metrics::counter("ladder.reliable_updates").add(reliable_updates as u64);

    let f16_instructions = tier16
        .as_ref()
        .map(|t| t.b.grid().engine().ctx().counters().total())
        .unwrap_or(0);
    let f32_instructions = grid32.engine().ctx().counters().total();
    let f64_instructions = grid64.engine().ctx().counters().total() - f64_before;
    (
        x,
        LadderReport {
            outer_iterations: outer,
            f16_iterations: f16_iters,
            f32_iterations: f32_iters,
            reliable_updates,
            tier_fallbacks,
            f16_active_at_exit: f16_on,
            residual,
            converged: residual <= cfg.tol,
            outer_history,
            inner_history,
            health,
            f16_instructions,
            f32_instructions,
            f64_instructions,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::SimdBackend;
    use crate::solver::{cg, solve_wilson};
    use crate::tensor::su3::random_gauge;
    use sve::VectorLength;

    fn setup() -> (WilsonDirac<f64>, FermionField) {
        let g = Grid::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 121);
        let b = FermionField::random(g.clone(), 122);
        (WilsonDirac::new(u, 0.3), b)
    }

    #[test]
    fn f32_lattice_has_twice_the_virtual_nodes() {
        let vl = VectorLength::of(512);
        let g64 = Grid::<f64>::new([4, 4, 4, 4], vl, SimdBackend::Fcmla);
        let g32 = Grid::<f32>::new([4, 4, 4, 4], vl, SimdBackend::Fcmla);
        assert_eq!(g32.lanes_c(), 2 * g64.lanes_c());
        assert_eq!(2 * g32.osites(), g64.osites());
    }

    #[test]
    fn precision_round_trip_is_f32_exact() {
        let vl = VectorLength::of(512);
        let g64 = Grid::<f64>::new([4, 4, 4, 4], vl, SimdBackend::Fcmla);
        let g32 = Grid::<f32>::new([4, 4, 4, 4], vl, SimdBackend::Fcmla);
        let f = FermionField::random(g64.clone(), 7);
        let f32v = to_precision(&f, &g32);
        let back = to_precision(&f32v, &g64);
        // Error bounded by f32 epsilon relative to each value.
        for x in g64.coords().step_by(7) {
            for comp in 0..12 {
                let a = f.peek(&x, comp);
                let b = back.peek(&x, comp);
                assert!((a - b).abs() <= 1.2e-7 * a.abs().max(1e-3));
            }
        }
        // And converting twice is idempotent (f32 values are exact in f64).
        let again = to_precision(&to_precision(&back, &g32), &g64);
        assert_eq!(again.max_abs_diff(&back), 0.0);
    }

    #[test]
    fn single_precision_wilson_operator_works() {
        // The whole operator stack runs at f32 on its own layout.
        let g32 = Grid::<f32>::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla);
        let u = random_gauge(g32.clone(), 123);
        let op = WilsonDirac::<f32>::new(u, 0.3);
        let b = Field::<crate::field::FermionKind, f32>::random(g32.clone(), 124);
        let (x, report) = cg(&op, &b, 1e-4, 1000);
        assert!(report.converged, "{report:?}");
        assert!(report.residual < 1e-3);
        let _ = x;
    }

    #[test]
    fn mixed_solve_reaches_double_precision_accuracy() {
        // The inner solver is single precision (can't go below ~1e-6), yet
        // defect correction drives the f64 residual to 1e-10.
        let (op, b) = setup();
        let (x, report) = mixed_precision_solve(&op, &b, 1e-10, 1e-4, 30, 500);
        assert!(report.converged, "{report:?}");
        assert!(report.residual <= 1e-10, "residual {}", report.residual);
        assert!(report.outer_iterations >= 2, "needs multiple corrections");
        // Verify against the plain double solve.
        let (x_ref, _) = solve_wilson(&op, &b, 1e-10, 3000);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&x, &x_ref);
        assert!((diff.norm2() / x_ref.norm2()).sqrt() < 1e-8);
    }

    #[test]
    fn mixed_solve_resumed_from_an_iterate_still_converges() {
        // Kill a mixed solve after a couple of outer rounds, keep only the
        // f64 iterate (the mixed checkpoint payload), resume from it: same
        // final accuracy, strictly fewer additional outer rounds than a
        // cold start.
        let (op, b) = setup();
        let (x_partial, partial) = mixed_precision_solve(&op, &b, 1e-4, 1e-4, 2, 500);
        assert!(partial.outer_iterations <= 2);
        let (x, resumed) = mixed_precision_solve_from(&op, &b, x_partial, 1e-10, 1e-4, 30, 500);
        assert!(resumed.converged, "{resumed:?}");
        assert!(resumed.residual <= 1e-10);
        let (_, cold) = mixed_precision_solve(&op, &b, 1e-10, 1e-4, 30, 500);
        assert!(
            resumed.outer_iterations < cold.outer_iterations,
            "resume must reuse the checkpointed progress ({} vs {})",
            resumed.outer_iterations,
            cold.outer_iterations
        );
        let (x_ref, _) = solve_wilson(&op, &b, 1e-10, 3000);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&x, &x_ref);
        assert!((diff.norm2() / x_ref.norm2()).sqrt() < 1e-8);
    }

    #[test]
    fn ladder_reaches_double_precision_accuracy() {
        // The inner tier computes in binary16 (≈3 decimal digits), yet the
        // reliable-update ladder drives the f64 residual to 1e-10.
        let (op, b) = setup();
        let cfg = LadderConfig::new(1e-10);
        let (x, report) = ladder_solve(&op, &b, &cfg);
        assert!(report.converged, "{report:?}");
        assert!(report.residual <= 1e-10, "residual {}", report.residual);
        assert!(report.f16_iterations > 0, "f16 tier never ran");
        assert!(report.reliable_updates >= 1, "no reliable updates");
        assert_eq!(report.tier_fallbacks, 0, "healthy solve demoted tiers");
        assert!(report.f16_active_at_exit);
        let (x_ref, _) = solve_wilson(&op, &b, 1e-10, 3000);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&x, &x_ref);
        assert!((diff.norm2() / x_ref.norm2()).sqrt() < 1e-8);
    }

    #[test]
    fn ladder_runs_the_bulk_of_inner_work_at_binary16() {
        let (op, b) = setup();
        let (_, report) = ladder_solve(&op, &b, &LadderConfig::new(1e-9));
        assert!(
            report.f16_iterations > report.f32_iterations,
            "f16 {} vs f32 {} iterations",
            report.f16_iterations,
            report.f32_iterations
        );
        assert!(
            report.f16_instructions > report.f64_instructions,
            "f16 {} vs f64 {} instructions",
            report.f16_instructions,
            report.f64_instructions
        );
    }

    #[test]
    fn f32_only_ladder_matches_the_target_too() {
        // The comparison baseline: identical outer/middle structure with
        // the binary16 tier disabled.
        let (op, b) = setup();
        let (x, report) = ladder_solve(&op, &b, &LadderConfig::f32_only(1e-10));
        assert!(report.converged, "{report:?}");
        assert_eq!(report.f16_iterations, 0);
        assert!(report.f32_iterations > 0);
        let (x_ref, _) = solve_wilson(&op, &b, 1e-10, 3000);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&x, &x_ref);
        assert!((diff.norm2() / x_ref.norm2()).sqrt() < 1e-8);
    }

    #[test]
    fn under_precise_f16_cycle_falls_back_to_f32_and_still_converges() {
        // A cycle tolerance below the representable floor stalls the f16
        // recurrence; the monitor must demote the tier instead of spinning.
        let (op, b) = setup();
        let mut cfg = LadderConfig::new(1e-10);
        cfg.f16_cycle_tol = 1e-7; // far below F16_RESIDUAL_FLOOR
        let (x, report) = ladder_solve(&op, &b, &cfg);
        assert!(report.tier_fallbacks >= 1, "no fallback: {report:?}");
        assert!(!report.f16_active_at_exit);
        assert!(report.converged, "{report:?}");
        assert!(
            report
                .health
                .iter()
                .any(|e| matches!(e.kind, qcd_metrics::HealthEventKind::Stall)),
            "expected a typed stall episode, got {:?}",
            report.health
        );
        let (x_ref, _) = solve_wilson(&op, &b, 1e-10, 3000);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&x, &x_ref);
        assert!((diff.norm2() / x_ref.norm2()).sqrt() < 1e-8);
    }

    #[test]
    fn ladder_resumed_from_an_iterate_replays_the_tail_bit_for_bit() {
        // Interrupt at an outer-round boundary, keep only the f64 iterate
        // (the mixed checkpoint payload), resume: every outer round is a
        // memoryless function of x, so the continuation's history is the
        // uninterrupted run's tail, bit for bit.
        let (op, b) = setup();
        let cfg = LadderConfig::new(1e-10);
        let (x_full, full) = ladder_solve(&op, &b, &cfg);
        let mut cut = cfg.clone();
        cut.max_outer = 2;
        let (x_partial, partial) = ladder_solve(&op, &b, &cut);
        assert_eq!(partial.outer_iterations, 2);
        let (x_res, resumed) = ladder_solve_from(&op, &b, x_partial, &cfg);
        assert!(resumed.converged, "{resumed:?}");
        assert_eq!(x_res.max_abs_diff(&x_full), 0.0, "resumed solution differs");
        let tail = &full.outer_history[2..];
        assert_eq!(
            resumed.outer_history.len(),
            tail.len(),
            "resumed {} vs tail {} outer entries",
            resumed.outer_history.len(),
            tail.len()
        );
        for (a, c) in resumed.outer_history.iter().zip(tail) {
            assert_eq!(a.to_bits(), c.to_bits(), "outer history diverged");
        }
    }

    #[test]
    fn bulk_of_the_work_runs_in_single_precision() {
        let (op, b) = setup();
        let (_, report) = mixed_precision_solve(&op, &b, 1e-9, 1e-4, 30, 500);
        assert!(
            report.f32_instructions > 4 * report.f64_instructions,
            "f32 {} vs f64 {}",
            report.f32_instructions,
            report.f64_instructions
        );
        assert!(report.inner_iterations > 10 * report.outer_iterations);
    }
}
