//! Scalar-stream precision codec — the single fp16/fp32 compression path.
//!
//! Two subsystems move `f64` lattice data through a narrower representation:
//! the halo exchange ("this data type is used only for data compression upon
//! data exchange over the communications network" — paper, Section V-B) and
//! the `qcd-io` checkpoint container, which stores fields at a selectable
//! on-disk precision. Both must round scalars identically, or a
//! configuration written from a compressed halo buffer would not compare
//! bit-for-bit with one re-read from disk. This module is that one shared
//! path: [`HaloMsg`](crate::comms::HaloMsg) and the `qcd-io` record payloads
//! are both thin wrappers over [`encode_f64s`] / [`decode_f64s`].
//!
//! All multi-byte values are little-endian, matching the lane serialization
//! of [`sve::SveElem`] and the `qcd-io/v1` on-disk format.

use crate::complex::Complex;
use sve::F16;

/// Scalars (re/im pairs) in one full 3×3 link: 9 complex entries.
pub const LINK_SCALARS_FULL: usize = 18;
/// Scalars in one two-row compressed link: rows 0 and 1 only.
pub const LINK_SCALARS_TWO_ROW: usize = 12;

/// Storage precision of an encoded scalar stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    /// IEEE binary64 — lossless for in-memory `f64` data.
    F64,
    /// IEEE binary32 — ~2^-24 relative rounding per scalar.
    F32,
    /// IEEE binary16 — ~2^-11 relative rounding per scalar; the paper's
    /// wire-compression format (Section V-B).
    F16,
}

impl Precision {
    /// Every supported precision, widest first.
    pub const ALL: [Precision; 3] = [Precision::F64, Precision::F32, Precision::F16];

    /// Encoded bytes per scalar.
    pub const fn bytes_per_scalar(self) -> usize {
        match self {
            Precision::F64 => 8,
            Precision::F32 => 4,
            Precision::F16 => 2,
        }
    }

    /// Stable one-byte tag used on the wire and on disk.
    pub const fn tag(self) -> u8 {
        match self {
            Precision::F64 => 0,
            Precision::F32 => 1,
            Precision::F16 => 2,
        }
    }

    /// Inverse of [`Precision::tag`].
    pub const fn from_tag(tag: u8) -> Option<Precision> {
        match tag {
            0 => Some(Precision::F64),
            1 => Some(Precision::F32),
            2 => Some(Precision::F16),
            _ => None,
        }
    }

    /// Human-readable name (`f64` / `f32` / `f16`).
    pub const fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
            Precision::F16 => "f16",
        }
    }

    /// Worst-case relative rounding error for values in the format's normal
    /// range (half an ulp), 0 for the lossless f64 path.
    pub const fn relative_error_bound(self) -> f64 {
        match self {
            Precision::F64 => 0.0,
            Precision::F32 => 5.97e-8, // 2^-24
            Precision::F16 => 4.89e-4, // 2^-11
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error decoding an encoded scalar stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.msg)
    }
}

impl std::error::Error for CodecError {}

/// Compress a double-precision buffer to binary16 bit patterns
/// (round-to-nearest-even, via [`sve::F16`]).
pub fn compress_f16(data: &[f64]) -> Vec<u16> {
    data.iter().map(|&x| F16::from_f64(x).to_bits()).collect()
}

/// Expand binary16 bit patterns back to doubles (exact).
pub fn decompress_f16(bits: &[u16]) -> Vec<f64> {
    bits.iter().map(|&b| F16::from_bits(b).to_f64()).collect()
}

/// [`compress_f16`] into a reusable buffer: `out` is cleared and refilled,
/// so a buffer whose capacity already covers `data.len()` is compressed
/// without touching the allocator — the halo-exchange steady state.
pub fn compress_f16_into(data: &[f64], out: &mut Vec<u16>) {
    out.clear();
    out.extend(data.iter().map(|&x| F16::from_f64(x).to_bits()));
}

/// [`decompress_f16`] into a caller-owned slice (exact, allocation-free).
/// Panics if the lengths differ — wire messages carry a fixed face shape.
pub fn decompress_f16_into(bits: &[u16], out: &mut [f64]) {
    assert_eq!(
        bits.len(),
        out.len(),
        "f16 stream length does not match the output buffer"
    );
    for (o, &b) in out.iter_mut().zip(bits) {
        *o = F16::from_bits(b).to_f64();
    }
}

/// Drop the third row of each 3×3 link in a flat row-major re/im scalar
/// stream (18 scalars per link → 12). For SU(3) links the third row is
/// redundant — it is the conjugate cross product of the first two — so this
/// is the lossless half of the paper-era "two-row" gauge compression: a
/// 1.5× reduction in link bytes on the wire or in memory.
pub fn compress_two_row(data: &[f64]) -> Result<Vec<f64>, CodecError> {
    if !data.len().is_multiple_of(LINK_SCALARS_FULL) {
        return Err(CodecError {
            msg: format!(
                "two-row compression needs whole 3x3 links ({LINK_SCALARS_FULL} scalars); \
                 got {} scalars",
                data.len()
            ),
        });
    }
    let mut out = Vec::with_capacity(data.len() / LINK_SCALARS_FULL * LINK_SCALARS_TWO_ROW);
    for link in data.chunks_exact(LINK_SCALARS_FULL) {
        out.extend_from_slice(&link[..LINK_SCALARS_TWO_ROW]);
    }
    Ok(out)
}

/// Rebuild full 3×3 links from a two-row stream produced by
/// [`compress_two_row`]: the third row is the conjugate cross product of
/// the first two, `row2[c] = conj(row0[a]·row1[b] − row0[b]·row1[a])` with
/// `(a, b)` cycling — exactly the unitary completion `project_su3` uses, so
/// reconstruction of an exactly-unitary link is exact to rounding.
pub fn decompress_two_row(data: &[f64]) -> Result<Vec<f64>, CodecError> {
    if !data.len().is_multiple_of(LINK_SCALARS_TWO_ROW) {
        return Err(CodecError {
            msg: format!(
                "two-row stream needs {LINK_SCALARS_TWO_ROW} scalars per link; got {} scalars",
                data.len()
            ),
        });
    }
    let mut out = Vec::with_capacity(data.len() / LINK_SCALARS_TWO_ROW * LINK_SCALARS_FULL);
    for link in data.chunks_exact(LINK_SCALARS_TWO_ROW) {
        out.extend_from_slice(link);
        let row =
            |r: usize, c: usize| Complex::new(link[(r * 3 + c) * 2], link[(r * 3 + c) * 2 + 1]);
        for c in 0..3 {
            let (a, b) = ((c + 1) % 3, (c + 2) % 3);
            let z = (row(0, a) * row(1, b) - row(0, b) * row(1, a)).conj();
            out.push(z.re);
            out.push(z.im);
        }
    }
    Ok(out)
}

/// Encode a double-precision buffer at `precision`, little-endian.
pub fn encode_f64s(data: &[f64], precision: Precision) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * precision.bytes_per_scalar());
    match precision {
        Precision::F64 => {
            for &x in data {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Precision::F32 => {
            for &x in data {
                out.extend_from_slice(&(x as f32).to_le_bytes());
            }
        }
        Precision::F16 => {
            for bits in compress_f16(data) {
                out.extend_from_slice(&bits.to_le_bytes());
            }
        }
    }
    out
}

/// Decode a little-endian scalar stream produced by [`encode_f64s`].
///
/// Fails (typed, no panic) when the byte length is not a whole number of
/// scalars — the shape truncation takes after a record payload is cut.
pub fn decode_f64s(bytes: &[u8], precision: Precision) -> Result<Vec<f64>, CodecError> {
    let w = precision.bytes_per_scalar();
    if !bytes.len().is_multiple_of(w) {
        return Err(CodecError {
            msg: format!(
                "{} byte stream of length {} is not a multiple of {w}",
                precision,
                bytes.len()
            ),
        });
    }
    let out = match precision {
        Precision::F64 => bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect(),
        Precision::F32 => bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")) as f64)
            .collect(),
        Precision::F16 => bytes
            .chunks_exact(2)
            .map(|c| {
                F16::from_bits(u16::from_le_bytes(c.try_into().expect("2-byte chunk"))).to_f64()
            })
            .collect(),
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip() {
        for p in Precision::ALL {
            assert_eq!(Precision::from_tag(p.tag()), Some(p));
        }
        assert_eq!(Precision::from_tag(99), None);
    }

    #[test]
    fn f64_encoding_is_bit_exact() {
        let data = vec![1.0, -2.5, 1e-300, f64::MAX, -0.0, std::f64::consts::PI];
        let enc = encode_f64s(&data, Precision::F64);
        assert_eq!(enc.len(), data.len() * 8);
        let dec = decode_f64s(&enc, Precision::F64).unwrap();
        for (a, b) in data.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f32_encoding_rounds_once() {
        let data = vec![0.1, -7.25, 1.0e30];
        let dec = decode_f64s(&encode_f64s(&data, Precision::F32), Precision::F32).unwrap();
        for (a, b) in data.iter().zip(&dec) {
            assert_eq!(*b, (*a as f32) as f64);
        }
    }

    #[test]
    fn f16_encoding_matches_the_f16_type() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 - 50.0) * 0.73).collect();
        let dec = decode_f64s(&encode_f64s(&data, Precision::F16), Precision::F16).unwrap();
        for (a, b) in data.iter().zip(&dec) {
            assert_eq!(*b, F16::from_f64(*a).to_f64());
        }
    }

    #[test]
    fn ragged_streams_are_typed_errors() {
        for p in Precision::ALL {
            let bytes = vec![0u8; p.bytes_per_scalar() + 1];
            assert!(decode_f64s(&bytes, p).is_err(), "{p}");
        }
    }

    #[test]
    fn two_row_round_trips_su3_links() {
        use crate::tensor::su3::random_su3;
        let mut flat = Vec::new();
        for stream in 1..9u64 {
            let u = random_su3(31, stream);
            for row in &u {
                for z in row {
                    flat.push(z.re);
                    flat.push(z.im);
                }
            }
        }
        let packed = compress_two_row(&flat).unwrap();
        assert_eq!(packed.len(), flat.len() * 2 / 3);
        let back = decompress_two_row(&packed).unwrap();
        assert_eq!(back.len(), flat.len());
        let worst = flat
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst <= 1e-13, "round-trip error {worst}");
        // Rows 0 and 1 are carried verbatim.
        for link in 0..8 {
            for s in 0..LINK_SCALARS_TWO_ROW {
                let i = link * LINK_SCALARS_FULL + s;
                assert_eq!(flat[i].to_bits(), back[i].to_bits());
            }
        }
    }

    #[test]
    fn two_row_ragged_streams_are_typed_errors() {
        assert!(compress_two_row(&[0.0; 19]).is_err());
        assert!(decompress_two_row(&[0.0; 13]).is_err());
        assert_eq!(compress_two_row(&[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn compress_decompress_agree_with_byte_path() {
        let data = vec![1.5, -0.375, 6.0e4, 1.0e-7];
        let bits = compress_f16(&data);
        let bytes = encode_f64s(&data, Precision::F16);
        for (i, b) in bits.iter().enumerate() {
            assert_eq!(*b, u16::from_le_bytes([bytes[2 * i], bytes[2 * i + 1]]));
        }
        assert_eq!(
            decompress_f16(&bits),
            decode_f64s(&bytes, Precision::F16).unwrap()
        );
    }
}
