//! Lattice geometry and the virtual-node data layout (paper, Section II-B).
//!
//! Grid decomposes the sub-lattice owned by one thread over a set of
//! "virtual nodes", one per SIMD lane (Fig. 1): lane `l` of every vector
//! holds the data of virtual node `l`, whose sub-lattice is an
//! `rdims = fdims / simd_layout` block. Because neighbouring sites then
//! live in *different vectors* (same lane, different outer site), the
//! hopping term needs no lane shuffles except when a stencil leg crosses a
//! virtual-node boundary — where it becomes a single lane permutation.
//!
//! A [`Grid`] couples this geometry to a [`SimdEngine`]: the vector length
//! is fixed at construction, the paper's `SVE_VECTOR_LENGTH` discipline
//! ("we have to set a vector length at compile time, despite SVE being
//! vector-length agnostic", Section V-A).

use crate::simd::{SimdBackend, SimdEngine};
use std::sync::Arc;
use sve::SveFloat;
use sve::{SveCtx, VectorLength};

/// Space-time dimensionality.
pub const NDIM: usize = 4;
/// Number of spinor components.
pub const NSPIN: usize = 4;
/// Number of colors (SU(3)).
pub const NCOLOR: usize = 3;

/// A 4-dimensional coordinate or extent vector.
pub type Coor = [usize; NDIM];

/// Lexicographic index of `x` within `dims` (dimension 0 fastest).
pub fn lex(x: &Coor, dims: &Coor) -> usize {
    debug_assert!((0..NDIM).all(|d| x[d] < dims[d]));
    ((x[3] * dims[2] + x[2]) * dims[1] + x[1]) * dims[0] + x[0]
}

/// Inverse of [`lex`].
pub fn delex(mut idx: usize, dims: &Coor) -> Coor {
    let mut x = [0; NDIM];
    for d in 0..NDIM {
        x[d] = idx % dims[d];
        idx /= dims[d];
    }
    x
}

/// The lattice: geometry (full dims, virtual-node layout) plus the SIMD
/// engine everything on it computes with.
pub struct Grid<E: SveFloat = f64> {
    fdims: Coor,
    simd_layout: Coor,
    rdims: Coor,
    osites: usize,
    volume: usize,
    engine: SimdEngine<E>,
}

impl<E: SveFloat> Grid<E> {
    /// Build a lattice of extents `fdims` on "silicon" of vector length
    /// `vl`, lowering complex arithmetic with `backend`.
    ///
    /// Panics if the lattice cannot host the virtual-node decomposition
    /// (every `simd_layout` factor must divide its dimension).
    pub fn new(fdims: Coor, vl: VectorLength, backend: SimdBackend) -> Arc<Self> {
        Self::with_ctx(fdims, Arc::new(SveCtx::new(vl)), backend)
    }

    /// Build over an existing context (shared counters / injected faults).
    pub fn with_ctx(fdims: Coor, ctx: Arc<SveCtx>, backend: SimdBackend) -> Arc<Self> {
        let engine = SimdEngine::new(ctx, backend);
        let lanes_c = engine.lanes_c();
        let simd_layout = Self::decompose(fdims, lanes_c);
        let mut rdims = [0; NDIM];
        for d in 0..NDIM {
            assert!(
                fdims[d].is_multiple_of(simd_layout[d]),
                "dimension {d} ({}) not divisible by simd layout {}",
                fdims[d],
                simd_layout[d]
            );
            rdims[d] = fdims[d] / simd_layout[d];
        }
        let volume: usize = fdims.iter().product();
        let osites: usize = rdims.iter().product();
        debug_assert_eq!(osites * lanes_c, volume);
        Arc::new(Grid {
            fdims,
            simd_layout,
            rdims,
            osites,
            volume,
            engine,
        })
    }

    /// Split `lanes_c` (a power of two) across dimensions: repeatedly halve
    /// the dimension with the largest remaining extent, preferring the
    /// highest index on ties (Grid spreads the SIMD grid over the later
    /// dimensions first). Keeps every virtual-node sub-lattice "sufficiently
    /// large" and as cubic as possible (paper, Section II-B).
    fn decompose(fdims: Coor, lanes_c: usize) -> Coor {
        assert!(lanes_c.is_power_of_two(), "complex lanes must be 2^k");
        let mut layout = [1; NDIM];
        let mut rem = [0; NDIM];
        rem.copy_from_slice(&fdims);
        let mut todo = lanes_c;
        while todo > 1 {
            let mut best = None;
            for d in 0..NDIM {
                if rem[d] % 2 == 0 {
                    match best {
                        None => best = Some(d),
                        Some(b) if rem[d] >= rem[b] => best = Some(d),
                        _ => {}
                    }
                }
            }
            let d = best.unwrap_or_else(|| {
                panic!("cannot decompose {fdims:?} over {lanes_c} virtual nodes")
            });
            layout[d] *= 2;
            rem[d] /= 2;
            todo /= 2;
        }
        layout
    }

    /// Full lattice extents.
    pub fn fdims(&self) -> Coor {
        self.fdims
    }

    /// Virtual-node grid extents (product = SIMD complex lanes).
    pub fn simd_layout(&self) -> Coor {
        self.simd_layout
    }

    /// Per-virtual-node sub-lattice extents.
    pub fn rdims(&self) -> Coor {
        self.rdims
    }

    /// Number of outer sites (vector words per field component).
    pub fn osites(&self) -> usize {
        self.osites
    }

    /// Total number of lattice sites `V`.
    pub fn volume(&self) -> usize {
        self.volume
    }

    /// Complex SIMD lanes = number of virtual nodes.
    pub fn lanes_c(&self) -> usize {
        self.engine.lanes_c()
    }

    /// The SIMD engine (vector length, backend, counters).
    pub fn engine(&self) -> &SimdEngine<E> {
        &self.engine
    }

    /// The configured vector length.
    pub fn vl(&self) -> VectorLength {
        self.engine.ctx().vl()
    }

    /// Map a global coordinate to its storage location:
    /// `(outer site, complex lane)`.
    pub fn coor_to_osite_lane(&self, x: &Coor) -> (usize, usize) {
        let mut inner = [0; NDIM];
        let mut vnode = [0; NDIM];
        for d in 0..NDIM {
            debug_assert!(x[d] < self.fdims[d], "coordinate out of range");
            vnode[d] = x[d] / self.rdims[d];
            inner[d] = x[d] % self.rdims[d];
        }
        (lex(&inner, &self.rdims), lex(&vnode, &self.simd_layout))
    }

    /// Inverse of [`Self::coor_to_osite_lane`].
    pub fn osite_lane_to_coor(&self, osite: usize, lane: usize) -> Coor {
        let inner = delex(osite, &self.rdims);
        let vnode = delex(lane, &self.simd_layout);
        let mut x = [0; NDIM];
        for d in 0..NDIM {
            x[d] = vnode[d] * self.rdims[d] + inner[d];
        }
        x
    }

    /// Global lexicographic site index (layout independent; seeds the RNG
    /// so field contents do not depend on the vector length).
    pub fn global_index(&self, x: &Coor) -> usize {
        lex(x, &self.fdims)
    }

    /// Site parity (even/odd checkerboard).
    pub fn parity(&self, x: &Coor) -> usize {
        x.iter().sum::<usize>() % 2
    }

    /// Iterate all global coordinates (test/setup helper).
    pub fn coords(&self) -> impl Iterator<Item = Coor> + '_ {
        (0..self.volume).map(|i| delex(i, &self.fdims))
    }
}

impl<E: SveFloat> std::fmt::Debug for Grid<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Grid")
            .field("fdims", &self.fdims)
            .field("simd_layout", &self.simd_layout)
            .field("rdims", &self.rdims)
            .field("vl", &self.vl())
            .field("backend", &self.engine.backend())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(fdims: Coor, bits: usize) -> Arc<Grid> {
        Grid::new(fdims, VectorLength::of(bits), SimdBackend::Fcmla)
    }

    #[test]
    fn lex_delex_round_trip() {
        let dims = [4, 3, 5, 2];
        for i in 0..dims.iter().product::<usize>() {
            assert_eq!(lex(&delex(i, &dims), &dims), i);
        }
    }

    #[test]
    fn volume_accounting() {
        // VL512: 8 f64 lanes = 4 complex lanes = 4 virtual nodes.
        let g = grid([4, 4, 4, 8], 512);
        assert_eq!(g.volume(), 512);
        assert_eq!(g.lanes_c(), 4);
        assert_eq!(g.osites(), 128);
        assert_eq!(g.simd_layout().iter().product::<usize>(), g.lanes_c());
        for d in 0..NDIM {
            assert_eq!(g.rdims()[d] * g.simd_layout()[d], g.fdims()[d]);
        }
    }

    #[test]
    fn vl128_has_single_virtual_node() {
        let g = grid([4, 4, 4, 4], 128);
        assert_eq!(g.lanes_c(), 1);
        assert_eq!(g.simd_layout(), [1, 1, 1, 1]);
        assert_eq!(g.osites(), g.volume());
    }

    #[test]
    fn vl2048_decomposes_over_sixteen_vnodes() {
        let g = grid([8, 8, 8, 8], 2048);
        assert_eq!(g.lanes_c(), 16);
        assert_eq!(g.simd_layout().iter().product::<usize>(), 16);
        // Split as evenly as possible: each factor <= 2 here.
        assert!(g.simd_layout().iter().all(|&s| s == 2));
    }

    #[test]
    fn decomposition_prefers_larger_dimensions() {
        // T = 8 is the largest dim: it should be split first.
        let g = grid([2, 2, 2, 8], 256); // 2 vnodes
        assert_eq!(g.simd_layout(), [1, 1, 1, 2]);
    }

    #[test]
    fn coor_storage_round_trip_across_vls() {
        for bits in [128, 256, 512, 1024, 2048] {
            let g = grid([4, 4, 4, 8], bits);
            for x in g.coords() {
                let (osite, lane) = g.coor_to_osite_lane(&x);
                assert!(osite < g.osites());
                assert!(lane < g.lanes_c());
                assert_eq!(g.osite_lane_to_coor(osite, lane), x, "vl={bits}");
            }
        }
    }

    #[test]
    fn every_storage_slot_is_hit_exactly_once() {
        let g = grid([4, 4, 2, 4], 512);
        let mut seen = vec![false; g.osites() * g.lanes_c()];
        for x in g.coords() {
            let (osite, lane) = g.coor_to_osite_lane(&x);
            let slot = osite * g.lanes_c() + lane;
            assert!(!seen[slot], "slot collision at {x:?}");
            seen[slot] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn neighbouring_sites_share_a_lane_inside_a_virtual_node() {
        // The whole point of the layout (paper Fig. 1): sites adjacent
        // within a virtual node block live in the same lane.
        let g = grid([4, 4, 4, 8], 512);
        let (_, lane_a) = g.coor_to_osite_lane(&[0, 0, 0, 0]);
        let (_, lane_b) = g.coor_to_osite_lane(&[1, 0, 0, 0]);
        assert_eq!(lane_a, lane_b);
    }

    #[test]
    #[should_panic(expected = "cannot decompose")]
    fn odd_lattice_with_many_lanes_panics() {
        let _ = grid([3, 3, 3, 3], 512);
    }

    #[test]
    fn parity_checkerboards() {
        let g = grid([4, 4, 4, 4], 128);
        assert_eq!(g.parity(&[0, 0, 0, 0]), 0);
        assert_eq!(g.parity(&[1, 0, 0, 0]), 1);
        assert_eq!(g.parity(&[1, 1, 0, 0]), 0);
    }
}
