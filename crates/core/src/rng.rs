//! Deterministic, layout-independent random field content.
//!
//! Verification across vector lengths (the paper's Section V-D campaign)
//! needs the *same physical field* regardless of how sites are scattered
//! over lanes. These generators hash the global site index, so a field
//! filled at VL128 and at VL2048 holds identical values site by site — which
//! makes per-site operator outputs bitwise comparable across layouts.

/// SplitMix64 — a small, high-quality 64-bit mixer (public-domain
/// construction of Steele et al.); statistically robust for seeding and
/// ideal here because it is a pure function of its input.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform value in `[-1, 1)` for a (seed, stream) pair.
pub fn uniform(seed: u64, stream: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(stream));
    // 53 random mantissa bits -> [0,1) -> [-1,1).
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    2.0 * u - 1.0
}

/// Stream id for one real number inside a field: site-major, then
/// component, then re/im.
pub fn stream_id(global_site: usize, comp: usize, reim: usize) -> u64 {
    (global_site as u64)
        .wrapping_mul(0x0000_0100_0000_01b3)
        .wrapping_add((comp as u64) * 2 + reim as u64)
}

/// 53 random mantissa bits mapped to the half-open interval `(0, 1]` —
/// shifted up by one ulp of the grid so `ln` of the result is always finite
/// (the radial draw of Box–Muller takes a log).
fn unit_open(h: u64) -> f64 {
    ((h >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// 53 random mantissa bits mapped to `[0, 1)`.
fn unit_halfopen(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Box–Muller: map two raw 64-bit draws to a pair of independent standard
/// normals. Pure function of its inputs — every Gaussian in the codebase
/// (stateless field fills and [`StreamRng`] cursors alike) funnels through
/// this one transform, so the two paths agree bit for bit.
pub fn box_muller(h1: u64, h2: u64) -> (f64, f64) {
    let r = (-2.0 * unit_open(h1).ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * unit_halfopen(h2);
    (r * theta.cos(), r * theta.sin())
}

/// The raw mixer output draw `stream` of `seed` — the value
/// [`StreamRng::next_u64`] returns when its counter sits at `stream`.
fn mix(seed: u64, stream: u64) -> u64 {
    splitmix64(seed ^ splitmix64(stream))
}

/// Standard normal for a (seed, stream) pair — stateless, so drawing order
/// never matters. Consumes the `stream` and `stream + 1` mixer slots (the
/// re/im pair of a [`stream_id`], whose `reim` bit is the low bit), i.e. one
/// Gaussian per field component. Identical bits to
/// [`StreamRng::next_gaussian`] called with the counter at `stream`.
pub fn gaussian(seed: u64, stream: u64) -> f64 {
    box_muller(mix(seed, stream), mix(seed, stream.wrapping_add(1))).0
}

/// A sequential counter-mode RNG over the same splitmix64 mixer the field
/// generators use.
///
/// Long-running campaigns (Monte Carlo streams, stochastic estimators) need
/// an RNG whose state can be checkpointed mid-stream: the `(seed, counter)`
/// pair *is* the complete state, so a serialized stream resumed from a
/// [`StreamRng::state`] snapshot continues bit-identically to an
/// uninterrupted run — the property `qcd-io`'s RNG record relies on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamRng {
    seed: u64,
    counter: u64,
}

impl StreamRng {
    /// A fresh stream for `seed`, positioned at draw 0.
    pub fn new(seed: u64) -> Self {
        StreamRng { seed, counter: 0 }
    }

    /// The complete serializable state: `(seed, counter)`.
    pub fn state(&self) -> (u64, u64) {
        (self.seed, self.counter)
    }

    /// Rebuild a stream mid-flight from a [`StreamRng::state`] snapshot.
    pub fn from_state(seed: u64, counter: u64) -> Self {
        StreamRng { seed, counter }
    }

    /// Number of draws made so far.
    pub fn draws(&self) -> u64 {
        self.counter
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let v = splitmix64(self.seed ^ splitmix64(self.counter));
        self.counter += 1;
        v
    }

    /// Next uniform value in `[-1, 1)`.
    pub fn next_uniform(&mut self) -> f64 {
        let h = self.next_u64();
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        2.0 * u - 1.0
    }

    /// Next uniform value in `[0, 1)` — the Metropolis accept draw.
    pub fn next_uniform01(&mut self) -> f64 {
        unit_halfopen(self.next_u64())
    }

    /// Next pair of independent standard normals (Box–Muller).
    ///
    /// Consumes exactly two counter draws and carries **no hidden state**
    /// (no cached second value), so `(seed, counter)` remains the complete
    /// RNG state: a stream serialized between the two raw draws of a pair
    /// and restored via [`StreamRng::from_state`] still reproduces the pair
    /// bit for bit.
    pub fn next_gaussian_pair(&mut self) -> (f64, f64) {
        let h1 = self.next_u64();
        let h2 = self.next_u64();
        box_muller(h1, h2)
    }

    /// Next standard normal. Consumes two counter draws (the second normal
    /// of the Box–Muller pair is discarded, never cached — checkpoint state
    /// stays `(seed, counter)` alone). Bit-identical to the stateless
    /// [`gaussian`] at `stream = counter`.
    pub fn next_gaussian(&mut self) -> f64 {
        self.next_gaussian_pair().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(uniform(42, 7), uniform(42, 7));
        assert_eq!(splitmix64(123), splitmix64(123));
    }

    #[test]
    fn distinct_streams_differ() {
        assert_ne!(uniform(42, 7), uniform(42, 8));
        assert_ne!(uniform(42, 7), uniform(43, 7));
        assert_ne!(stream_id(5, 3, 0), stream_id(5, 3, 1));
        assert_ne!(stream_id(5, 3, 0), stream_id(6, 3, 0));
    }

    #[test]
    fn values_in_range_and_roughly_centered() {
        let n = 20_000;
        let mut sum = 0.0;
        for i in 0..n {
            let v = uniform(1, i);
            assert!((-1.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
    }

    #[test]
    fn stream_rng_resumes_bit_identically() {
        // Serialize mid-stream, restore, and the continued stream must be
        // bit-identical to an uninterrupted run — the checkpoint/restart
        // contract for RNG state.
        let mut uninterrupted = StreamRng::new(0xfeed_beef);
        let full: Vec<u64> = (0..200).map(|_| uninterrupted.next_u64()).collect();

        let mut first_half = StreamRng::new(0xfeed_beef);
        let head: Vec<u64> = (0..87).map(|_| first_half.next_u64()).collect();
        let (seed, counter) = first_half.state();
        assert_eq!(counter, 87);
        let _ = first_half; // "kill" the process

        let mut resumed = StreamRng::from_state(seed, counter);
        let tail: Vec<u64> = (0..113).map(|_| resumed.next_u64()).collect();
        let stitched: Vec<u64> = head.into_iter().chain(tail).collect();
        assert_eq!(stitched, full);
    }

    #[test]
    fn stream_rng_uniform_resume_and_range() {
        let mut a = StreamRng::new(7);
        let first: Vec<f64> = (0..50).map(|_| a.next_uniform()).collect();
        assert!(first.iter().all(|v| (-1.0..1.0).contains(v)));
        let (seed, counter) = a.state();
        let mut b = StreamRng::from_state(seed, counter);
        for _ in 0..50 {
            assert_eq!(a.next_uniform().to_bits(), b.next_uniform().to_bits());
        }
        assert_eq!(a.draws(), 100);
    }

    #[test]
    fn stream_rng_matches_the_stateless_generator() {
        // Draw i of a stream equals uniform(seed, i): the stateful RNG is a
        // cursor over the same deterministic sequence the field fillers use.
        let mut rng = StreamRng::new(42);
        for i in 0..32 {
            assert_eq!(rng.next_uniform(), uniform(42, i));
        }
    }

    #[test]
    fn gaussian_moments_are_standard_normal() {
        let n = 20_000u64;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for i in 0..n {
            let z = gaussian(9, 2 * i);
            assert!(z.is_finite());
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn gaussian_pair_components_are_uncorrelated() {
        let n = 10_000u64;
        let mut cross = 0.0;
        let mut rng = StreamRng::new(31);
        for _ in 0..n {
            let (a, b) = rng.next_gaussian_pair();
            cross += a * b;
        }
        assert!((cross / n as f64).abs() < 0.05);
    }

    #[test]
    fn stateful_gaussian_matches_stateless_and_costs_two_draws() {
        let mut rng = StreamRng::new(77);
        for i in 0..16u64 {
            assert_eq!(rng.draws(), 2 * i);
            let z = rng.next_gaussian();
            assert_eq!(z.to_bits(), gaussian(77, 2 * i).to_bits());
        }
    }

    #[test]
    fn gaussian_survives_mid_pair_checkpoint() {
        // Save between the two raw draws of one Box–Muller pair: because
        // there is no cached spare value, the restored stream completes the
        // pair bit-identically.
        let mut whole = StreamRng::new(5);
        let want = whole.next_gaussian_pair();

        let mut head = StreamRng::new(5);
        let h1 = head.next_u64();
        let (seed, counter) = head.state();
        let mut resumed = StreamRng::from_state(seed, counter);
        let h2 = resumed.next_u64();
        let got = box_muller(h1, h2);
        assert_eq!(want.0.to_bits(), got.0.to_bits());
        assert_eq!(want.1.to_bits(), got.1.to_bits());
    }

    #[test]
    fn uniform01_is_in_range_and_resumes() {
        let mut a = StreamRng::new(13);
        let vals: Vec<f64> = (0..64).map(|_| a.next_uniform01()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        let (seed, counter) = a.state();
        let mut b = StreamRng::from_state(seed, counter);
        assert_eq!(a.next_uniform01().to_bits(), b.next_uniform01().to_bits());
    }

    #[test]
    fn bits_look_mixed() {
        // Avalanche sanity: flipping one input bit flips ~half the output.
        let mut total = 0u32;
        for i in 0..64 {
            total += (splitmix64(0) ^ splitmix64(1u64 << i)).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((24.0..40.0).contains(&avg), "avalanche avg {avg}");
    }
}
