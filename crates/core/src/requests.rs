//! Solve-request coalescing: turn many independent "invert on this source"
//! requests into one batched kernel dispatch, then hand each caller back
//! exactly the answer it would have gotten alone.
//!
//! This is the compute entry point a job service (the `qcd-farm` crate)
//! drives. Requests arrive one at a time in arbitrary order; the scheduler
//! coalesces whatever is pending into a [`FermionBlock`] and calls one of
//! the batch solvers here. The whole scheme is only sound because of the
//! block-path contract ([`FermionBlock`], [`block_cg`]): per-RHS results of
//! a batched solve are bit-identical to independent single-RHS solves, for
//! *any* batch width and *any* RHS composition. That makes batching purely
//! an amortization decision — the scheduler can group requests however
//! throughput dictates without changing a single answer bit, and a crashed
//! batch can be re-run in a differently-shaped batch after recovery and
//! still reproduce the original results exactly.
//!
//! The demultiplexed [`SolveReport`] carries the *per-request* view:
//! iteration count, residual, history, and health events of that RHS alone
//! (identical to its solo solve), while `telemetry` is the shared profile
//! of the batched dispatch that actually ran.

use crate::dirac::WilsonDirac;
use crate::eo::solve_eo_block;
use crate::field::{FermionBlock, FermionField};
use crate::solver::{block_cg, BlockSolveReport, SolveReport};

/// One pending inversion request, as a job queue holds it.
#[derive(Clone)]
pub struct SolveRequest {
    /// Caller-chosen identifier, carried through to the matching
    /// [`SolveOutcome`] so results can be routed back after coalescing.
    pub id: u64,
    /// The source (right-hand side) to invert the operator on.
    pub rhs: FermionField,
}

/// The demultiplexed result of one request from a coalesced batch.
pub struct SolveOutcome {
    /// The [`SolveRequest::id`] this outcome answers.
    pub id: u64,
    /// The solution for this request's RHS — bit-identical to what a
    /// standalone single-RHS solve of the same source would produce.
    pub solution: FermionField,
    /// Per-request solver report (iterations/residual/history/health of
    /// this RHS; telemetry is the shared batch profile).
    pub report: SolveReport,
}

/// Gather request sources into one site-major block, in arrival order.
fn coalesce(requests: &[SolveRequest]) -> FermionBlock {
    assert!(
        !requests.is_empty(),
        "cannot coalesce an empty request batch"
    );
    let grid = requests[0].rhs.grid().clone();
    let mut block = FermionBlock::zero(grid, requests.len());
    for (i, req) in requests.iter().enumerate() {
        block.set_rhs(i, &req.rhs);
    }
    block
}

/// Split a batched solve back into per-request outcomes, in request order.
fn demux(requests: &[SolveRequest], x: &FermionBlock, rep: &BlockSolveReport) -> Vec<SolveOutcome> {
    requests
        .iter()
        .enumerate()
        .map(|(j, req)| SolveOutcome {
            id: req.id,
            solution: x.rhs_field(j),
            report: SolveReport {
                iterations: rep.per_rhs_iterations[j],
                residual: rep.residuals[j],
                converged: rep.converged[j],
                history: rep.histories[j].clone(),
                health: rep.health[j].clone(),
                telemetry: rep.telemetry.clone(),
            },
        })
        .collect()
}

/// Coalesce `requests` into one [`block_cg`] dispatch on the normal
/// operator `M†M` and demultiplex the results per request.
///
/// Each outcome is bit-identical (solution, iterations, residual, history)
/// to an independent [`cg`](crate::solver::cg) of the same RHS, regardless
/// of how many other requests shared the batch or in what order they
/// arrived. Batch fill is recorded in the `solver.requests.batch_fill`
/// histogram so a service layer can audit its coalescing behaviour.
pub fn solve_cg_requests(
    op: &WilsonDirac,
    requests: &[SolveRequest],
    tol: f64,
    max_iter: usize,
) -> Vec<SolveOutcome> {
    let block = coalesce(requests);
    let span = qcd_trace::span!("solver.requests", block.grid().engine().ctx());
    qcd_metrics::histogram("solver.requests.batch_fill").record(requests.len() as u64);
    let (x, rep) = block_cg(op, &block, tol, max_iter);
    drop(span);
    demux(requests, &x, &rep)
}

/// Coalesce `requests` into one even-odd preconditioned block solve of
/// `M x = b` (the [`solve_eo_block`] Schur path) and demultiplex per
/// request.
///
/// Same contract as [`solve_cg_requests`]: per-request results match the
/// standalone [`solve_eo`](crate::eo::solve_eo) of that RHS bit for bit.
pub fn solve_eo_requests(
    op: &WilsonDirac,
    requests: &[SolveRequest],
    tol: f64,
    max_iter: usize,
) -> Vec<SolveOutcome> {
    let block = coalesce(requests);
    let span = qcd_trace::span!("solver.requests", block.grid().engine().ctx());
    qcd_metrics::histogram("solver.requests.batch_fill").record(requests.len() as u64);
    let (x, rep) = solve_eo_block(op, &block, tol, max_iter);
    drop(span);
    demux(requests, &x, &rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eo::solve_eo;
    use crate::layout::Grid;
    use crate::simd::SimdBackend;
    use crate::solver::cg;
    use crate::tensor::su3::random_gauge;
    use sve::VectorLength;

    fn setup() -> (WilsonDirac, Vec<FermionField>) {
        let g = Grid::new([4, 4, 4, 4], VectorLength::of(256), SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 21);
        let rhss = (0..4)
            .map(|k| FermionField::random(g.clone(), 41 + k))
            .collect();
        (WilsonDirac::new(u, 0.2), rhss)
    }

    fn assert_matches_solo(out: &SolveOutcome, solo_x: &FermionField, solo: &SolveReport) {
        assert_eq!(out.report.iterations, solo.iterations);
        assert_eq!(out.report.converged, solo.converged);
        assert_eq!(out.report.residual.to_bits(), solo.residual.to_bits());
        assert_eq!(out.report.history.len(), solo.history.len());
        for (a, b) in out.report.history.iter().zip(&solo.history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(out.solution.max_abs_diff(solo_x), 0.0);
    }

    #[test]
    fn demuxed_outcomes_are_bit_identical_to_solo_cg_in_any_arrival_order() {
        // The property the farm depends on: whatever order requests arrive
        // in — and therefore whatever batch slot each RHS lands in — every
        // demuxed outcome matches the independent cg() of its RHS exactly.
        let (op, rhss) = setup();
        let solo: Vec<_> = rhss.iter().map(|b| cg(&op, b, 1e-8, 2000)).collect();
        for order in [[0usize, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1]] {
            let requests: Vec<_> = order
                .iter()
                .map(|&k| SolveRequest {
                    id: 100 + k as u64,
                    rhs: rhss[k].clone(),
                })
                .collect();
            let outcomes = solve_cg_requests(&op, &requests, 1e-8, 2000);
            assert_eq!(outcomes.len(), requests.len());
            for (slot, &k) in order.iter().enumerate() {
                assert_eq!(outcomes[slot].id, 100 + k as u64, "order {order:?}");
                assert_matches_solo(&outcomes[slot], &solo[k].0, &solo[k].1);
            }
        }
    }

    #[test]
    fn batch_composition_does_not_change_any_outcome() {
        // Two half batches vs one full batch: the scheduler's grouping
        // decision must be invisible in the results.
        let (op, rhss) = setup();
        let reqs: Vec<_> = rhss
            .iter()
            .enumerate()
            .map(|(k, b)| SolveRequest {
                id: k as u64,
                rhs: b.clone(),
            })
            .collect();
        let full = solve_cg_requests(&op, &reqs, 1e-8, 2000);
        let first = solve_cg_requests(&op, &reqs[..2], 1e-8, 2000);
        let second = solve_cg_requests(&op, &reqs[2..], 1e-8, 2000);
        for (a, b) in full.iter().zip(first.iter().chain(&second)) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.report.iterations, b.report.iterations);
            assert_eq!(a.report.residual.to_bits(), b.report.residual.to_bits());
            assert_eq!(a.solution.max_abs_diff(&b.solution), 0.0);
        }
    }

    #[test]
    fn eo_requests_match_standalone_eo_solves_bitwise() {
        let (op, rhss) = setup();
        let requests: Vec<_> = rhss
            .iter()
            .take(2)
            .enumerate()
            .map(|(k, b)| SolveRequest {
                id: k as u64,
                rhs: b.clone(),
            })
            .collect();
        let outcomes = solve_eo_requests(&op, &requests, 1e-8, 2000);
        for (k, out) in outcomes.iter().enumerate() {
            let (x, rep) = solve_eo(&op, &rhss[k], 1e-8, 2000);
            assert!(rep.converged, "rhs {k}");
            assert_matches_solo(out, &x, &rep);
        }
    }

    #[test]
    #[should_panic(expected = "empty request batch")]
    fn empty_batch_is_rejected() {
        let (op, _) = setup();
        let _ = solve_cg_requests(&op, &[], 1e-8, 10);
    }
}
