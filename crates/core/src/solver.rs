//! Iterative Krylov solvers.
//!
//! "A significant fraction of time-to-solution of LQCD applications is spent
//! in solving a linear set of equations, for which iterative solvers like
//! Conjugate Gradient are used" (paper, Section II-A). CG inverts the
//! hermitian positive-definite normal operator `M†M`; BiCGStab works on `M`
//! directly. Both are built purely from the vectorized field primitives
//! (`axpy`, inner products, norms), so every arithmetic instruction they
//! retire is visible to the SVE counters.

use crate::dirac::WilsonDirac;
use crate::field::{FermionField, FermionKind, Field};
use sve::SveFloat;

/// Solver outcome.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `|b - A x| / |b|`.
    pub residual: f64,
    /// Whether the target tolerance was reached.
    pub converged: bool,
    /// Relative true residual per iteration (preconditioned residual norm
    /// history), for convergence plots.
    pub history: Vec<f64>,
    /// Profile of the solve: wall time, per-iteration child time, and the
    /// SVE instruction delta the solve retired (see [`qcd_trace`]).
    pub telemetry: qcd_trace::RegionSummary,
}

/// Conjugate Gradient on an arbitrary hermitian positive-definite operator,
/// supplied as a closure (the shape Grid's `ConjugateGradient` template
/// takes). Standard Hestenes–Stiefel recurrence; `tol` is relative to `|b|`.
pub fn cg_op<E: SveFloat>(
    apply: impl Fn(&Field<FermionKind, E>) -> Field<FermionKind, E>,
    b: &Field<FermionKind, E>,
    tol: f64,
    max_iter: usize,
) -> (Field<FermionKind, E>, SolveReport) {
    let grid = b.grid().clone();
    let span = qcd_trace::span!("solver.cg", grid.engine().ctx());
    let b_norm2 = b.norm2();
    assert!(b_norm2 > 0.0, "CG needs a nonzero right-hand side");

    let mut x = Field::<FermionKind, E>::zero(grid.clone());
    let mut r = b.clone(); // r = b - A*0
    let mut p = r.clone();
    let mut r2 = r.norm2();
    let target = tol * tol * b_norm2;
    let mut history = vec![(r2 / b_norm2).sqrt()];

    let mut iterations = 0;
    while iterations < max_iter && r2 > target {
        let _iter_span = qcd_trace::span!("iter", grid.engine().ctx());
        let ap = apply(&p);
        let p_ap = p.inner(&ap).re;
        assert!(
            p_ap > 0.0,
            "search direction has non-positive curvature: operator not HPD?"
        );
        let alpha = r2 / p_ap;
        x.axpy_inplace(alpha, &p);
        r.axpy_inplace(-alpha, &ap);
        let r2_new = r.norm2();
        let beta = r2_new / r2;
        p.aypx(beta, &r); // p = r + beta p
        r2 = r2_new;
        iterations += 1;
        history.push((r2 / b_norm2).sqrt());
    }

    // True residual check (guards against recurrence drift).
    let mut true_r = Field::<FermionKind, E>::zero(grid.clone());
    true_r.sub(b, &apply(&x));
    let residual = (true_r.norm2() / b_norm2).sqrt();
    let converged = r2 <= target;
    (
        x,
        SolveReport {
            iterations,
            residual,
            converged,
            history,
            telemetry: span.finish(),
        },
    )
}

/// Conjugate Gradient on the Wilson normal equations: solves `M†M x = b`.
pub fn cg<E: SveFloat>(
    op: &WilsonDirac<E>,
    b: &Field<FermionKind, E>,
    tol: f64,
    max_iter: usize,
) -> (Field<FermionKind, E>, SolveReport) {
    cg_op(|p| op.mdag_m(p), b, tol, max_iter)
}

/// Solve `M x = b` through the normal equations: CG on `M†M x = M†b`.
pub fn solve_wilson(
    op: &WilsonDirac,
    b: &FermionField,
    tol: f64,
    max_iter: usize,
) -> (FermionField, SolveReport) {
    let rhs = op.apply_dag(b);
    let (x, mut report) = cg(op, &rhs, tol, max_iter);
    // Report the residual of the original system.
    let mut true_r = FermionField::zero(b.grid().clone());
    true_r.sub(b, &op.apply(&x));
    report.residual = (true_r.norm2() / b.norm2()).sqrt();
    (x, report)
}

/// BiCGStab on `M x = b` — the non-hermitian workhorse; roughly half the
/// operator applications of normal-equation CG per iteration pair.
pub fn bicgstab(
    op: &WilsonDirac,
    b: &FermionField,
    tol: f64,
    max_iter: usize,
) -> (FermionField, SolveReport) {
    let grid = b.grid().clone();
    let span = qcd_trace::span!("solver.bicgstab", grid.engine().ctx());
    let b_norm2 = b.norm2();
    assert!(b_norm2 > 0.0, "BiCGStab needs a nonzero right-hand side");
    let target = tol * tol * b_norm2;

    let mut x = FermionField::zero(grid.clone());
    let mut r = b.clone();
    let r0 = r.clone(); // shadow residual
    let mut p = r.clone();
    let mut rho = r0.inner(&r);
    let mut history = vec![(r.norm2() / b_norm2).sqrt()];
    let mut iterations = 0;

    while iterations < max_iter && r.norm2() > target {
        let _iter_span = qcd_trace::span!("iter", grid.engine().ctx());
        let v = op.apply(&p);
        let alpha = rho * {
            let d = r0.inner(&v);
            let n2 = d.norm2();
            assert!(n2 > 0.0, "BiCGStab breakdown: <r0, v> = 0");
            d.conj().scale(1.0 / n2)
        };
        // s = r - alpha v
        let mut s = r.clone();
        s.axpy_complex(-alpha, &v);
        let t = op.apply(&s);
        let t2 = t.norm2();
        assert!(t2 > 0.0, "BiCGStab breakdown: t = 0");
        let omega = {
            let ts = t.inner(&s);
            ts.scale(1.0 / t2)
        };
        // x += alpha p + omega s
        x.axpy_complex(alpha, &p);
        x.axpy_complex(omega, &s);
        // r = s - omega t
        r = s;
        r.axpy_complex(-omega, &t);
        let rho_new = r0.inner(&r);
        let beta = (rho_new * alpha) * {
            let d = rho * omega;
            let n2 = d.norm2();
            assert!(n2 > 0.0, "BiCGStab breakdown: rho*omega = 0");
            d.conj().scale(1.0 / n2)
        };
        // p = r + beta (p - omega v)
        p.axpy_complex(-omega, &v);
        p.scale_complex(beta);
        p.add_assign_field(&r);
        rho = rho_new;
        iterations += 1;
        history.push((r.norm2() / b_norm2).sqrt());
    }

    let mut true_r = FermionField::zero(grid.clone());
    true_r.sub(b, &op.apply(&x));
    let residual = (true_r.norm2() / b_norm2).sqrt();
    (
        x,
        SolveReport {
            iterations,
            residual,
            converged: residual <= tol * 10.0,
            history,
            telemetry: span.finish(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Grid;
    use crate::simd::SimdBackend;
    use crate::tensor::su3::random_gauge;
    use sve::VectorLength;

    fn setup(bits: usize, backend: SimdBackend) -> (WilsonDirac, FermionField) {
        let g = Grid::new([4, 4, 4, 4], VectorLength::of(bits), backend);
        let u = random_gauge(g.clone(), 21);
        let b = FermionField::random(g.clone(), 22);
        (WilsonDirac::new(u, 0.2), b)
    }

    #[test]
    fn cg_converges_on_the_normal_operator() {
        let (op, b) = setup(512, SimdBackend::Fcmla);
        let (x, report) = cg(&op, &b, 1e-8, 2000);
        assert!(report.converged, "CG failed: {report:?}");
        assert!(report.residual < 1e-7, "true residual {}", report.residual);
        // Verify by direct application.
        let ax = op.mdag_m(&x);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&ax, &b);
        assert!(diff.norm2() / b.norm2() < 1e-13);
    }

    #[test]
    fn residual_history_is_monotone_enough() {
        let (op, b) = setup(256, SimdBackend::Fcmla);
        let (_, report) = cg(&op, &b, 1e-8, 2000);
        // CG residuals may wobble, but first and last tell the story.
        assert!(report.history.first().unwrap() > report.history.last().unwrap());
        assert_eq!(report.history.len(), report.iterations + 1);
    }

    #[test]
    fn solve_wilson_inverts_m() {
        let (op, b) = setup(512, SimdBackend::Fcmla);
        let (x, report) = solve_wilson(&op, &b, 1e-8, 2000);
        assert!(report.residual < 1e-6, "residual {}", report.residual);
        let mx = op.apply(&x);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&mx, &b);
        assert!((diff.norm2() / b.norm2()).sqrt() < 1e-6);
    }

    #[test]
    fn bicgstab_inverts_m_directly() {
        let (op, b) = setup(256, SimdBackend::Fcmla);
        let (x, report) = bicgstab(&op, &b, 1e-8, 2000);
        assert!(report.residual < 1e-6, "residual {}", report.residual);
        let mx = op.apply(&x);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&mx, &b);
        assert!((diff.norm2() / b.norm2()).sqrt() < 1e-6);
    }

    #[test]
    fn backends_converge_to_the_same_solution() {
        let mut solutions = Vec::new();
        for backend in SimdBackend::all() {
            let (op, b) = setup(512, backend);
            let (x, report) = cg(&op, &b, 1e-10, 2000);
            assert!(report.converged, "{backend:?}");
            solutions.push(x);
        }
        let norm = solutions[0].norm2().sqrt();
        for other in &solutions[1..] {
            // Fields live on per-backend grids: compare raw storage (layout
            // is identical — same dims, same vector length).
            let d = solutions[0]
                .data()
                .iter()
                .zip(other.data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(d < 1e-7 * norm.max(1.0), "solutions differ by {d}");
        }
    }

    #[test]
    fn convergence_is_vl_independent() {
        // Same physics at every vector length: iteration counts match and
        // solutions agree site by site (the V-D verification idea applied
        // to a full solve).
        let mut reports = Vec::new();
        let mut sols = Vec::new();
        for bits in [128usize, 1024] {
            let (op, b) = setup(bits, SimdBackend::Fcmla);
            let (x, report) = cg(&op, &b, 1e-8, 2000);
            reports.push(report);
            sols.push(x);
        }
        assert_eq!(reports[0].iterations, reports[1].iterations);
        let g0 = sols[0].grid().clone();
        for x in g0.coords().step_by(5) {
            for comp in 0..12 {
                let a = sols[0].peek(&x, comp);
                let b = sols[1].peek(&x, comp);
                assert!((a - b).abs() < 1e-8, "{x:?} {comp}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "nonzero right-hand side")]
    fn cg_rejects_zero_rhs() {
        let (op, b) = setup(128, SimdBackend::Fcmla);
        let zero = FermionField::zero(b.grid().clone());
        let _ = cg(&op, &zero, 1e-8, 10);
    }
}
