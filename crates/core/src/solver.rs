//! Iterative Krylov solvers.
//!
//! "A significant fraction of time-to-solution of LQCD applications is spent
//! in solving a linear set of equations, for which iterative solvers like
//! Conjugate Gradient are used" (paper, Section II-A). CG inverts the
//! hermitian positive-definite normal operator `M†M`; BiCGStab works on `M`
//! directly. Both are built purely from the vectorized field primitives
//! (`axpy`, inner products, norms), so every arithmetic instruction they
//! retire is visible to the SVE counters.

use crate::dirac::WilsonDirac;
use crate::field::{FermionField, FermionKind, Field};
use sve::SveFloat;

/// Solver outcome.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `|b - A x| / |b|`.
    pub residual: f64,
    /// Whether the target tolerance was reached.
    pub converged: bool,
    /// Relative true residual per iteration (preconditioned residual norm
    /// history), for convergence plots.
    pub history: Vec<f64>,
    /// Profile of the solve: wall time, per-iteration child time, and the
    /// SVE instruction delta the solve retired (see [`qcd_trace`]).
    pub telemetry: qcd_trace::RegionSummary,
}

/// The complete state of an in-flight Conjugate Gradient solve.
///
/// Every scalar and vector of the Hestenes–Stiefel recurrence lives here,
/// which makes the struct the unit of checkpoint/restart: snapshot the
/// fields (`x`, `r`, `p`) and scalars mid-solve, kill the process, rebuild
/// the state, and [`CgState::step`] continues *bit-identically* — every
/// quantity below is exactly the same f64 data an uninterrupted run would
/// hold. `qcd-io`'s `SolverCheckpoint` serializes exactly these members.
#[derive(Clone)]
pub struct CgState<E: SveFloat = f64> {
    /// Current solution estimate.
    pub x: Field<FermionKind, E>,
    /// Recurrence residual `b - A x`.
    pub r: Field<FermionKind, E>,
    /// Search direction.
    pub p: Field<FermionKind, E>,
    /// Squared norm of `r` (recurrence value, not recomputed).
    pub r2: f64,
    /// Squared norm of the right-hand side (fixes the relative target).
    pub b_norm2: f64,
    /// Iterations completed so far.
    pub iterations: usize,
    /// Relative residual history, entry 0 = before the first iteration.
    pub history: Vec<f64>,
}

impl<E: SveFloat> CgState<E> {
    /// Fresh state for solving `A x = b` from the zero initial guess.
    pub fn new(b: &Field<FermionKind, E>) -> Self {
        let grid = b.grid().clone();
        let b_norm2 = b.norm2();
        assert!(b_norm2 > 0.0, "CG needs a nonzero right-hand side");
        let x = Field::<FermionKind, E>::zero(grid);
        let r = b.clone(); // r = b - A*0
        let p = r.clone();
        let r2 = r.norm2();
        CgState {
            x,
            r,
            p,
            r2,
            b_norm2,
            iterations: 0,
            history: vec![(r2 / b_norm2).sqrt()],
        }
    }

    /// Whether the recurrence residual is at or below `tol` relative to
    /// `|b|`.
    pub fn converged(&self, tol: f64) -> bool {
        self.r2 <= tol * tol * self.b_norm2
    }

    /// One Hestenes–Stiefel iteration under a per-iteration telemetry span.
    pub fn step(&mut self, apply: impl Fn(&Field<FermionKind, E>) -> Field<FermionKind, E>) {
        let grid = self.x.grid().clone();
        let _iter_span = qcd_trace::span!("iter", grid.engine().ctx());
        let ap = apply(&self.p);
        let p_ap = self.p.inner(&ap).re;
        assert!(
            p_ap > 0.0,
            "search direction has non-positive curvature: operator not HPD?"
        );
        let alpha = self.r2 / p_ap;
        self.x.axpy_inplace(alpha, &self.p);
        self.r.axpy_inplace(-alpha, &ap);
        let r2_new = self.r.norm2();
        let beta = r2_new / self.r2;
        self.p.aypx(beta, &self.r); // p = r + beta p
        self.r2 = r2_new;
        self.iterations += 1;
        self.history.push((self.r2 / self.b_norm2).sqrt());
    }
}

/// Conjugate Gradient on an arbitrary hermitian positive-definite operator,
/// supplied as a closure (the shape Grid's `ConjugateGradient` template
/// takes). Standard Hestenes–Stiefel recurrence; `tol` is relative to `|b|`.
pub fn cg_op<E: SveFloat>(
    apply: impl Fn(&Field<FermionKind, E>) -> Field<FermionKind, E>,
    b: &Field<FermionKind, E>,
    tol: f64,
    max_iter: usize,
) -> (Field<FermionKind, E>, SolveReport) {
    cg_op_from_state(apply, b, CgState::new(b), tol, max_iter)
}

/// Continue a Conjugate Gradient solve from an arbitrary [`CgState`] —
/// freshly built by [`CgState::new`] or restored from a checkpoint. The
/// iteration budget `max_iter` counts *total* iterations including those
/// already inside `state`, so a resumed solve stops at the same point the
/// uninterrupted one would.
pub fn cg_op_from_state<E: SveFloat>(
    apply: impl Fn(&Field<FermionKind, E>) -> Field<FermionKind, E>,
    b: &Field<FermionKind, E>,
    mut state: CgState<E>,
    tol: f64,
    max_iter: usize,
) -> (Field<FermionKind, E>, SolveReport) {
    let grid = b.grid().clone();
    let span = qcd_trace::span!("solver.cg", grid.engine().ctx());

    while state.iterations < max_iter && !state.converged(tol) {
        state.step(&apply);
    }

    // True residual check (guards against recurrence drift).
    let mut true_r = Field::<FermionKind, E>::zero(grid.clone());
    true_r.sub(b, &apply(&state.x));
    let residual = (true_r.norm2() / state.b_norm2).sqrt();
    let converged = state.converged(tol);
    (
        state.x,
        SolveReport {
            iterations: state.iterations,
            residual,
            converged,
            history: state.history,
            telemetry: span.finish(),
        },
    )
}

/// Conjugate Gradient on the Wilson normal equations: solves `M†M x = b`.
pub fn cg<E: SveFloat>(
    op: &WilsonDirac<E>,
    b: &Field<FermionKind, E>,
    tol: f64,
    max_iter: usize,
) -> (Field<FermionKind, E>, SolveReport) {
    cg_op(|p| op.mdag_m(p), b, tol, max_iter)
}

/// Solve `M x = b` through the normal equations: CG on `M†M x = M†b`.
pub fn solve_wilson(
    op: &WilsonDirac,
    b: &FermionField,
    tol: f64,
    max_iter: usize,
) -> (FermionField, SolveReport) {
    let rhs = op.apply_dag(b);
    let (x, mut report) = cg(op, &rhs, tol, max_iter);
    // Report the residual of the original system.
    let mut true_r = FermionField::zero(b.grid().clone());
    true_r.sub(b, &op.apply(&x));
    report.residual = (true_r.norm2() / b.norm2()).sqrt();
    (x, report)
}

/// The complete state of an in-flight BiCGStab solve — the checkpoint unit
/// for the non-hermitian solver, mirroring [`CgState`].
#[derive(Clone)]
pub struct BicgStabState {
    /// Current solution estimate.
    pub x: FermionField,
    /// Recurrence residual.
    pub r: FermionField,
    /// Shadow residual (fixed at the initial residual).
    pub r0: FermionField,
    /// Search direction.
    pub p: FermionField,
    /// Current `<r0, r>` recurrence scalar.
    pub rho: crate::complex::Complex,
    /// Squared norm of the right-hand side.
    pub b_norm2: f64,
    /// Iterations completed so far.
    pub iterations: usize,
    /// Relative residual history, entry 0 = before the first iteration.
    pub history: Vec<f64>,
}

impl BicgStabState {
    /// Fresh state for solving `M x = b` from the zero initial guess.
    pub fn new(b: &FermionField) -> Self {
        let grid = b.grid().clone();
        let b_norm2 = b.norm2();
        assert!(b_norm2 > 0.0, "BiCGStab needs a nonzero right-hand side");
        let x = FermionField::zero(grid);
        let r = b.clone();
        let r0 = r.clone(); // shadow residual
        let p = r.clone();
        let rho = r0.inner(&r);
        let history = vec![(r.norm2() / b_norm2).sqrt()];
        BicgStabState {
            x,
            r,
            r0,
            p,
            rho,
            b_norm2,
            iterations: 0,
            history,
        }
    }

    /// Whether the recurrence residual is at or below `tol` relative to
    /// `|b|`.
    pub fn converged(&self, tol: f64) -> bool {
        self.r.norm2() <= tol * tol * self.b_norm2
    }

    /// One BiCGStab iteration (two operator applications) under a
    /// per-iteration telemetry span.
    pub fn step(&mut self, apply: impl Fn(&FermionField) -> FermionField) {
        let grid = self.x.grid().clone();
        let _iter_span = qcd_trace::span!("iter", grid.engine().ctx());
        let v = apply(&self.p);
        let alpha = self.rho * {
            let d = self.r0.inner(&v);
            let n2 = d.norm2();
            assert!(n2 > 0.0, "BiCGStab breakdown: <r0, v> = 0");
            d.conj().scale(1.0 / n2)
        };
        // s = r - alpha v
        let mut s = self.r.clone();
        s.axpy_complex(-alpha, &v);
        let t = apply(&s);
        let t2 = t.norm2();
        assert!(t2 > 0.0, "BiCGStab breakdown: t = 0");
        let omega = {
            let ts = t.inner(&s);
            ts.scale(1.0 / t2)
        };
        // x += alpha p + omega s
        self.x.axpy_complex(alpha, &self.p);
        self.x.axpy_complex(omega, &s);
        // r = s - omega t
        self.r = s;
        self.r.axpy_complex(-omega, &t);
        let rho_new = self.r0.inner(&self.r);
        let beta = (rho_new * alpha) * {
            let d = self.rho * omega;
            let n2 = d.norm2();
            assert!(n2 > 0.0, "BiCGStab breakdown: rho*omega = 0");
            d.conj().scale(1.0 / n2)
        };
        // p = r + beta (p - omega v)
        self.p.axpy_complex(-omega, &v);
        self.p.scale_complex(beta);
        self.p.add_assign_field(&self.r);
        self.rho = rho_new;
        self.iterations += 1;
        self.history.push((self.r.norm2() / self.b_norm2).sqrt());
    }
}

/// BiCGStab on `M x = b` — the non-hermitian workhorse; roughly half the
/// operator applications of normal-equation CG per iteration pair.
pub fn bicgstab(
    op: &WilsonDirac,
    b: &FermionField,
    tol: f64,
    max_iter: usize,
) -> (FermionField, SolveReport) {
    bicgstab_from_state(op, b, BicgStabState::new(b), tol, max_iter)
}

/// Continue a BiCGStab solve from an arbitrary [`BicgStabState`] — freshly
/// built or restored from a checkpoint. `max_iter` counts total iterations
/// including those already inside `state`.
pub fn bicgstab_from_state(
    op: &WilsonDirac,
    b: &FermionField,
    mut state: BicgStabState,
    tol: f64,
    max_iter: usize,
) -> (FermionField, SolveReport) {
    let grid = b.grid().clone();
    let span = qcd_trace::span!("solver.bicgstab", grid.engine().ctx());

    while state.iterations < max_iter && !state.converged(tol) {
        state.step(|f| op.apply(f));
    }

    let mut true_r = FermionField::zero(grid.clone());
    true_r.sub(b, &op.apply(&state.x));
    let residual = (true_r.norm2() / state.b_norm2).sqrt();
    (
        state.x,
        SolveReport {
            iterations: state.iterations,
            residual,
            converged: residual <= tol * 10.0,
            history: state.history,
            telemetry: span.finish(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Grid;
    use crate::simd::SimdBackend;
    use crate::tensor::su3::random_gauge;
    use sve::VectorLength;

    fn setup(bits: usize, backend: SimdBackend) -> (WilsonDirac, FermionField) {
        let g = Grid::new([4, 4, 4, 4], VectorLength::of(bits), backend);
        let u = random_gauge(g.clone(), 21);
        let b = FermionField::random(g.clone(), 22);
        (WilsonDirac::new(u, 0.2), b)
    }

    #[test]
    fn cg_converges_on_the_normal_operator() {
        let (op, b) = setup(512, SimdBackend::Fcmla);
        let (x, report) = cg(&op, &b, 1e-8, 2000);
        assert!(report.converged, "CG failed: {report:?}");
        assert!(report.residual < 1e-7, "true residual {}", report.residual);
        // Verify by direct application.
        let ax = op.mdag_m(&x);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&ax, &b);
        assert!(diff.norm2() / b.norm2() < 1e-13);
    }

    #[test]
    fn residual_history_is_monotone_enough() {
        let (op, b) = setup(256, SimdBackend::Fcmla);
        let (_, report) = cg(&op, &b, 1e-8, 2000);
        // CG residuals may wobble, but first and last tell the story.
        assert!(report.history.first().unwrap() > report.history.last().unwrap());
        assert_eq!(report.history.len(), report.iterations + 1);
    }

    #[test]
    fn solve_wilson_inverts_m() {
        let (op, b) = setup(512, SimdBackend::Fcmla);
        let (x, report) = solve_wilson(&op, &b, 1e-8, 2000);
        assert!(report.residual < 1e-6, "residual {}", report.residual);
        let mx = op.apply(&x);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&mx, &b);
        assert!((diff.norm2() / b.norm2()).sqrt() < 1e-6);
    }

    #[test]
    fn bicgstab_inverts_m_directly() {
        let (op, b) = setup(256, SimdBackend::Fcmla);
        let (x, report) = bicgstab(&op, &b, 1e-8, 2000);
        assert!(report.residual < 1e-6, "residual {}", report.residual);
        let mx = op.apply(&x);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&mx, &b);
        assert!((diff.norm2() / b.norm2()).sqrt() < 1e-6);
    }

    #[test]
    fn backends_converge_to_the_same_solution() {
        let mut solutions = Vec::new();
        for backend in SimdBackend::all() {
            let (op, b) = setup(512, backend);
            let (x, report) = cg(&op, &b, 1e-10, 2000);
            assert!(report.converged, "{backend:?}");
            solutions.push(x);
        }
        let norm = solutions[0].norm2().sqrt();
        for other in &solutions[1..] {
            // Fields live on per-backend grids: compare raw storage (layout
            // is identical — same dims, same vector length).
            let d = solutions[0]
                .data()
                .iter()
                .zip(other.data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(d < 1e-7 * norm.max(1.0), "solutions differ by {d}");
        }
    }

    #[test]
    fn convergence_is_vl_independent() {
        // Same physics at every vector length: iteration counts match and
        // solutions agree site by site (the V-D verification idea applied
        // to a full solve).
        let mut reports = Vec::new();
        let mut sols = Vec::new();
        for bits in [128usize, 1024] {
            let (op, b) = setup(bits, SimdBackend::Fcmla);
            let (x, report) = cg(&op, &b, 1e-8, 2000);
            reports.push(report);
            sols.push(x);
        }
        assert_eq!(reports[0].iterations, reports[1].iterations);
        let g0 = sols[0].grid().clone();
        for x in g0.coords().step_by(5) {
            for comp in 0..12 {
                let a = sols[0].peek(&x, comp);
                let b = sols[1].peek(&x, comp);
                assert!((a - b).abs() < 1e-8, "{x:?} {comp}");
            }
        }
    }

    #[test]
    fn cg_resumed_from_mid_solve_state_is_bit_identical() {
        // The checkpoint/restart contract: interrupt CG at iteration k,
        // snapshot the state, continue from the snapshot — iteration count,
        // history, and the solution *bits* must match an uninterrupted run.
        let (op, b) = setup(256, SimdBackend::Fcmla);
        let apply = |p: &FermionField| op.mdag_m(p);
        let (x_full, full) = cg(&op, &b, 1e-8, 2000);

        let mut st = CgState::new(&b);
        for _ in 0..10 {
            st.step(apply);
        }
        let snapshot = st.clone(); // what qcd-io serializes
        drop(st); // the "killed" solve
        let (x_res, res) = cg_op_from_state(apply, &b, snapshot, 1e-8, 2000);

        assert_eq!(res.iterations, full.iterations);
        assert_eq!(res.history.len(), full.history.len());
        for (a, c) in full.history.iter().zip(&res.history) {
            assert_eq!(a.to_bits(), c.to_bits(), "history diverged");
        }
        for (a, c) in x_full.data().iter().zip(x_res.data()) {
            assert_eq!(a.to_bits(), c.to_bits(), "solution bits diverged");
        }
        assert_eq!(res.residual.to_bits(), full.residual.to_bits());
    }

    #[test]
    fn bicgstab_resumed_from_mid_solve_state_is_bit_identical() {
        let (op, b) = setup(256, SimdBackend::Fcmla);
        let (x_full, full) = bicgstab(&op, &b, 1e-8, 2000);

        let mut st = BicgStabState::new(&b);
        for _ in 0..7 {
            st.step(|f| op.apply(f));
        }
        let snapshot = st.clone();
        drop(st);
        let (x_res, res) = bicgstab_from_state(&op, &b, snapshot, 1e-8, 2000);

        assert_eq!(res.iterations, full.iterations);
        for (a, c) in x_full.data().iter().zip(x_res.data()) {
            assert_eq!(a.to_bits(), c.to_bits(), "solution bits diverged");
        }
    }

    #[test]
    #[should_panic(expected = "nonzero right-hand side")]
    fn cg_rejects_zero_rhs() {
        let (op, b) = setup(128, SimdBackend::Fcmla);
        let zero = FermionField::zero(b.grid().clone());
        let _ = cg(&op, &zero, 1e-8, 10);
    }
}
