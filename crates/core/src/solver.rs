//! Iterative Krylov solvers.
//!
//! "A significant fraction of time-to-solution of LQCD applications is spent
//! in solving a linear set of equations, for which iterative solvers like
//! Conjugate Gradient are used" (paper, Section II-A). CG inverts the
//! hermitian positive-definite normal operator `M†M`; BiCGStab works on `M`
//! directly. Both are built purely from the vectorized field primitives
//! (`axpy`, inner products, norms), so every arithmetic instruction they
//! retire is visible to the SVE counters.
//!
//! # Allocation-free steady state
//!
//! Every solver has two faces. The closure-based entry points ([`cg_op`],
//! [`CgState::step`]) allocate the operator output each iteration — simple,
//! and the shape the checkpoint layer wraps. The workspace entry points
//! ([`cg_ws`], [`CgState::step_ws`], [`BicgStabState::step_ws`]) instead
//! thread a preallocated [`SolverWorkspace`] through every iteration: the
//! operator writes into workspace fields, the linear algebra runs through
//! the fused sweeps of [`crate::field`], and a steady-state iteration
//! performs **zero** heap allocations. The two faces are bit-identical —
//! the fused kernels retire the same engine ops per word in the same
//! deterministic chunk-tree order — so a checkpoint taken on either path
//! resumes exactly on the other.

use crate::dirac::WilsonDirac;
use crate::field::{
    block_cg_update_x_r, cg_update_x_r, FermionBlock, FermionField, FermionKind, Field,
};
use crate::layout::Grid;
use qcd_metrics::{HealthEvent, HealthMonitor};
use std::sync::Arc;
use sve::SveFloat;

/// Cap on the residual history surfaced in a [`SolveReport`]. Longer
/// histories are downsampled by [`qcd_metrics::bound_history`], keeping the
/// endpoints and every health-flagged entry. The history inside the solver
/// *state* (the checkpoint unit) is never capped, so resume stays
/// bit-identical.
pub const HISTORY_CAP: usize = 512;

/// Solver outcome.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `|b - A x| / |b|`.
    pub residual: f64,
    /// Whether the target tolerance was reached.
    pub converged: bool,
    /// Relative true residual per iteration (preconditioned residual norm
    /// history), for convergence plots. Capped at [`HISTORY_CAP`] entries
    /// (first, last, and health-flagged iterations always survive).
    pub history: Vec<f64>,
    /// Typed health events the monitor raised while consuming the residual
    /// history (stall, divergence, NaN/Inf). Empty for a healthy solve.
    pub health: Vec<HealthEvent>,
    /// Profile of the solve: wall time, per-iteration child time, and the
    /// SVE instruction delta the solve retired (see [`qcd_trace`]).
    pub telemetry: qcd_trace::RegionSummary,
}

/// Build the reported (capped) history and the health-event list from a
/// finished monitor, and feed the solve-level metrics. The monitor must
/// have observed every entry of `history` — restored prefix replayed, new
/// entries observed live — so a resumed solve reports exactly what the
/// uninterrupted one would. Thin wrapper over
/// [`qcd_metrics::conclude_solver_health`] at [`HISTORY_CAP`].
pub(crate) fn conclude_health(
    region: &str,
    monitor: HealthMonitor,
    history: &[f64],
    iterations: usize,
) -> (Vec<f64>, Vec<HealthEvent>) {
    qcd_metrics::conclude_solver_health(region, monitor, history, iterations, HISTORY_CAP)
}

/// Preallocated scratch fields for the allocation-free solver paths: built
/// once per grid, reused across every iteration (and across the restarts of
/// the mixed-precision defect-correction loop).
///
/// Three fields cover every solver in the crate: CG on the normal equations
/// uses `tmp` for the `M p` intermediate and `ap` for `M†M p`; BiCGStab maps
/// `v`/`s`/`t` onto `ap`/`tmp`/`hop`; the even-odd Schur solve uses
/// `hop`/`tmp` for its nested hopping applications.
pub struct SolverWorkspace<E: SveFloat = f64> {
    /// `M p` intermediate (CG on the normal equations), `s` (BiCGStab).
    pub tmp: Field<FermionKind, E>,
    /// Operator output `A p` (CG), `v` (BiCGStab).
    pub ap: Field<FermionKind, E>,
    /// Extra scratch: `t` (BiCGStab), hopping intermediates (even-odd).
    pub hop: Field<FermionKind, E>,
}

impl<E: SveFloat> SolverWorkspace<E> {
    /// Allocate a workspace on `grid`.
    pub fn new(grid: Arc<Grid<E>>) -> Self {
        SolverWorkspace {
            tmp: Field::zero(grid.clone()),
            ap: Field::zero(grid.clone()),
            hop: Field::zero(grid),
        }
    }

    /// The lattice the workspace fields live on.
    pub fn grid(&self) -> &Arc<Grid<E>> {
        self.tmp.grid()
    }
}

/// The complete state of an in-flight Conjugate Gradient solve.
///
/// Every scalar and vector of the Hestenes–Stiefel recurrence lives here,
/// which makes the struct the unit of checkpoint/restart: snapshot the
/// fields (`x`, `r`, `p`) and scalars mid-solve, kill the process, rebuild
/// the state, and [`CgState::step`] continues *bit-identically* — every
/// quantity below is exactly the same f64 data an uninterrupted run would
/// hold. `qcd-io`'s `SolverCheckpoint` serializes exactly these members.
#[derive(Clone)]
pub struct CgState<E: SveFloat = f64> {
    /// Current solution estimate.
    pub x: Field<FermionKind, E>,
    /// Recurrence residual `b - A x`.
    pub r: Field<FermionKind, E>,
    /// Search direction.
    pub p: Field<FermionKind, E>,
    /// Squared norm of `r` (recurrence value, not recomputed).
    pub r2: f64,
    /// Squared norm of the right-hand side (fixes the relative target).
    pub b_norm2: f64,
    /// Iterations completed so far.
    pub iterations: usize,
    /// Relative residual history, entry 0 = before the first iteration.
    pub history: Vec<f64>,
}

impl<E: SveFloat> CgState<E> {
    /// Fresh state for solving `A x = b` from the zero initial guess.
    pub fn new(b: &Field<FermionKind, E>) -> Self {
        let grid = b.grid().clone();
        let b_norm2 = b.norm2();
        assert!(b_norm2 > 0.0, "CG needs a nonzero right-hand side");
        let x = Field::<FermionKind, E>::zero(grid);
        let r = b.clone(); // r = b - A*0
        let p = r.clone();
        let r2 = r.norm2();
        CgState {
            x,
            r,
            p,
            r2,
            b_norm2,
            iterations: 0,
            history: vec![(r2 / b_norm2).sqrt()],
        }
    }

    /// Whether the recurrence residual is at or below `tol` relative to
    /// `|b|`.
    pub fn converged(&self, tol: f64) -> bool {
        self.r2 <= tol * tol * self.b_norm2
    }

    /// The Hestenes–Stiefel recurrence tail shared by [`Self::step`] and
    /// [`Self::step_ws`], entered once `A p` and the curvature `p·Ap` are
    /// in hand: the fused iterate/residual sweep of [`cg_update_x_r`]
    /// (`x += α p`, `r −= α Ap`, new `|r|²` out of the same pass) followed
    /// by the search-direction update.
    fn advance(&mut self, p_ap: f64, ap: &Field<FermionKind, E>) {
        assert!(
            p_ap > 0.0,
            "search direction has non-positive curvature: operator not HPD?"
        );
        let alpha = self.r2 / p_ap;
        let r2_new = cg_update_x_r(&mut self.x, &mut self.r, alpha, &self.p, ap);
        let beta = r2_new / self.r2;
        self.p.aypx(beta, &self.r); // p = r + beta p
        self.r2 = r2_new;
        self.iterations += 1;
        self.history.push((self.r2 / self.b_norm2).sqrt());
    }

    /// One Hestenes–Stiefel iteration under a per-iteration telemetry span.
    pub fn step(&mut self, apply: impl Fn(&Field<FermionKind, E>) -> Field<FermionKind, E>) {
        let grid = self.x.grid().clone();
        let _iter_span = qcd_trace::span!("iter", grid.engine().ctx());
        let ap = apply(&self.p);
        let p_ap = self.p.inner(&ap).re;
        self.advance(p_ap, &ap);
    }

    /// One Hestenes–Stiefel iteration through caller-provided storage.
    ///
    /// `apply_into` evaluates the operator at its first argument into
    /// `ws.ap` (using whatever other workspace fields it needs) and returns
    /// the curvature `Re ⟨p, A p⟩` — for the Wilson normal operator that
    /// dot comes fused out of the second hopping sweep
    /// ([`WilsonDirac::mdag_m_into_dot`]). No telemetry span is opened
    /// here: span entry allocates its path string, and this is the
    /// allocation-free path (the enclosing solve-level span still
    /// attributes flops and bytes). The history push is amortized — the
    /// driving loops reserve capacity up front.
    pub fn step_ws(
        &mut self,
        ws: &mut SolverWorkspace<E>,
        apply_into: &mut impl FnMut(&Field<FermionKind, E>, &mut SolverWorkspace<E>) -> f64,
    ) {
        let p_ap = apply_into(&self.p, ws);
        self.advance(p_ap, &ws.ap);
    }
}

/// Conjugate Gradient on an arbitrary hermitian positive-definite operator,
/// supplied as a closure (the shape Grid's `ConjugateGradient` template
/// takes). Standard Hestenes–Stiefel recurrence; `tol` is relative to `|b|`.
pub fn cg_op<E: SveFloat>(
    apply: impl Fn(&Field<FermionKind, E>) -> Field<FermionKind, E>,
    b: &Field<FermionKind, E>,
    tol: f64,
    max_iter: usize,
) -> (Field<FermionKind, E>, SolveReport) {
    cg_op_from_state(apply, b, CgState::new(b), tol, max_iter)
}

/// Continue a Conjugate Gradient solve from an arbitrary [`CgState`] —
/// freshly built by [`CgState::new`] or restored from a checkpoint. The
/// iteration budget `max_iter` counts *total* iterations including those
/// already inside `state`, so a resumed solve stops at the same point the
/// uninterrupted one would.
pub fn cg_op_from_state<E: SveFloat>(
    apply: impl Fn(&Field<FermionKind, E>) -> Field<FermionKind, E>,
    b: &Field<FermionKind, E>,
    mut state: CgState<E>,
    tol: f64,
    max_iter: usize,
) -> (Field<FermionKind, E>, SolveReport) {
    let grid = b.grid().clone();
    let span = qcd_trace::span!("solver.cg", grid.engine().ctx());
    let mut monitor = HealthMonitor::new("solver.cg");
    monitor.replay(&state.history);

    while state.iterations < max_iter && !state.converged(tol) {
        state.step(&apply);
        monitor.observe(*state.history.last().unwrap());
    }

    // True residual check (guards against recurrence drift).
    let mut true_r = Field::<FermionKind, E>::zero(grid.clone());
    true_r.sub(b, &apply(&state.x));
    let residual = (true_r.norm2() / state.b_norm2).sqrt();
    let converged = state.converged(tol);
    let (history, health) = conclude_health("solver.cg", monitor, &state.history, state.iterations);
    (
        state.x,
        SolveReport {
            iterations: state.iterations,
            residual,
            converged,
            history,
            health,
            telemetry: span.finish(),
        },
    )
}

/// Continue an allocation-free Conjugate Gradient solve from an arbitrary
/// [`CgState`] through a caller-provided [`SolverWorkspace`].
///
/// `apply_into` has the [`CgState::step_ws`] contract: evaluate the
/// operator at the given field into `ws.ap` and return `Re ⟨p, A p⟩`.
/// Bit-identical to [`cg_op_from_state`] with the matching allocating
/// operator — same engine ops per word, same deterministic chunk-tree
/// reductions; only the sweep structure and allocation count differ.
pub fn cg_ws_from_state<E: SveFloat>(
    mut apply_into: impl FnMut(&Field<FermionKind, E>, &mut SolverWorkspace<E>) -> f64,
    b: &Field<FermionKind, E>,
    ws: &mut SolverWorkspace<E>,
    mut state: CgState<E>,
    tol: f64,
    max_iter: usize,
) -> (Field<FermionKind, E>, SolveReport) {
    let grid = b.grid().clone();
    let span = qcd_trace::span!("solver.cg", grid.engine().ctx());
    state
        .history
        .reserve((max_iter + 1).saturating_sub(state.history.len()));
    let mut monitor = HealthMonitor::new("solver.cg");
    monitor.replay(&state.history);

    while state.iterations < max_iter && !state.converged(tol) {
        state.step_ws(ws, &mut apply_into);
        monitor.observe(*state.history.last().unwrap());
    }

    let converged = state.converged(tol);
    // True residual check (guards against recurrence drift): `A x` lands in
    // the workspace and the subtract-and-norm runs as one fused sweep
    // through the spent search direction — no fresh field.
    apply_into(&state.x, ws);
    let residual = (state.p.sub_norm2(b, &ws.ap) / state.b_norm2).sqrt();
    let (history, health) = conclude_health("solver.cg", monitor, &state.history, state.iterations);
    (
        state.x,
        SolveReport {
            iterations: state.iterations,
            residual,
            converged,
            history,
            health,
            telemetry: span.finish(),
        },
    )
}

/// Conjugate Gradient on the Wilson normal equations through a reusable
/// workspace: `M†M x = b` with fused dslash+mass sweeps, the curvature dot
/// fused into the second hopping pass, and zero steady-state allocations.
pub fn cg_ws<E: SveFloat>(
    op: &WilsonDirac<E>,
    b: &Field<FermionKind, E>,
    ws: &mut SolverWorkspace<E>,
    tol: f64,
    max_iter: usize,
) -> (Field<FermionKind, E>, SolveReport) {
    cg_ws_from_state(
        |p, ws| {
            let SolverWorkspace { tmp, ap, .. } = ws;
            op.mdag_m_into_dot(p, tmp, ap)
        },
        b,
        ws,
        CgState::new(b),
        tol,
        max_iter,
    )
}

/// Conjugate Gradient on the Wilson normal equations: solves `M†M x = b`
/// on the fused allocation-free path (the workspace is allocated once here;
/// bit-identical to the closure-based `cg_op(|p| op.mdag_m(p), ..)`).
pub fn cg<E: SveFloat>(
    op: &WilsonDirac<E>,
    b: &Field<FermionKind, E>,
    tol: f64,
    max_iter: usize,
) -> (Field<FermionKind, E>, SolveReport) {
    let mut ws = SolverWorkspace::new(b.grid().clone());
    cg_ws(op, b, &mut ws, tol, max_iter)
}

/// Conjugate Gradient on the Wilson normal equations with **canonical**
/// steering scalars: every norm and curvature dot is a lexicographic
/// per-site scatter summed through the fixed chunk tree
/// ([`Field::canonical_norm2`] / [`Field::canonical_inner_re`]), so the
/// residual history, iteration count and solution are bit-identical across
/// vector lengths *and* thread counts — the invariance regime `dist_cg`
/// and the `qcd-deflate` stack already maintain. The fused update sweep's
/// layout-dependent reduction is discarded and recomputed canonically:
/// slower per iteration than [`cg_ws`], layout-invariant in exchange.
/// `region` labels the health monitor and the concluded metrics (e.g.
/// `solver.ladder.f32`).
pub fn cg_canonical_ws<E: SveFloat>(
    op: &WilsonDirac<E>,
    b: &Field<FermionKind, E>,
    ws: &mut SolverWorkspace<E>,
    tol: f64,
    max_iter: usize,
    region: &str,
) -> (Field<FermionKind, E>, SolveReport) {
    let grid = b.grid().clone();
    let span = qcd_trace::span!("solver.cg_canonical", grid.engine().ctx());
    let mut monitor = HealthMonitor::new(region);
    let b_norm2 = b.canonical_norm2();
    assert!(b_norm2 > 0.0, "CG needs a nonzero right-hand side");
    let mut x = Field::<FermionKind, E>::zero(grid.clone());
    let mut r = b.clone();
    let mut p = r.clone();
    let mut r2 = r.canonical_norm2();
    let mut history = vec![(r2 / b_norm2).sqrt()];
    monitor.replay(&history);

    let mut iterations = 0;
    while iterations < max_iter && r2 > tol * tol * b_norm2 {
        op.mdag_m_into(&p, &mut ws.tmp, &mut ws.ap);
        let p_ap = p.canonical_inner_re(&ws.ap);
        assert!(
            p_ap > 0.0,
            "search direction has non-positive curvature: operator not HPD?"
        );
        let alpha = r2 / p_ap;
        // The fused sweep's returned |r|² is layout-dependent; discard it
        // and recompute canonically so the trajectory is VL-invariant.
        let _ = cg_update_x_r(&mut x, &mut r, alpha, &p, &ws.ap);
        let r2_new = r.canonical_norm2();
        let beta = r2_new / r2;
        p.aypx(beta, &r);
        r2 = r2_new;
        iterations += 1;
        history.push((r2 / b_norm2).sqrt());
        monitor.observe(*history.last().unwrap());
    }

    let converged = r2 <= tol * tol * b_norm2;
    // True residual check (canonical, guards recurrence drift); the spent
    // search direction serves as scratch.
    op.mdag_m_into(&x, &mut ws.tmp, &mut ws.ap);
    p.sub(b, &ws.ap);
    let residual = (p.canonical_norm2() / b_norm2).sqrt();
    let (history, health) = conclude_health(region, monitor, &history, iterations);
    (
        x,
        SolveReport {
            iterations,
            residual,
            converged,
            history,
            health,
            telemetry: span.finish(),
        },
    )
}

/// Solve `M x = b` through the normal equations: CG on `M†M x = M†b`.
pub fn solve_wilson(
    op: &WilsonDirac,
    b: &FermionField,
    tol: f64,
    max_iter: usize,
) -> (FermionField, SolveReport) {
    let rhs = op.apply_dag(b);
    let (x, mut report) = cg(op, &rhs, tol, max_iter);
    // Report the residual of the original system; `M x` lands in a scratch
    // field and the subtract-and-norm runs as one fused sweep.
    let mut mx = FermionField::zero(b.grid().clone());
    op.apply_into(&x, &mut mx);
    let mut true_r = rhs; // reuse the spent right-hand side as scratch
    report.residual = (true_r.sub_norm2(b, &mx) / b.norm2()).sqrt();
    (x, report)
}

/// Outcome of a batched block-CG solve: the per-RHS counterparts of every
/// [`SolveReport`] member, plus the shared solve-level telemetry.
#[derive(Clone, Debug)]
pub struct BlockSolveReport {
    /// Iterations performed by the slowest RHS (the solve's wall-clock
    /// iteration count — the batch sweeps until the last RHS converges).
    pub iterations: usize,
    /// Iterations each RHS took before it converged (or hit the budget).
    pub per_rhs_iterations: Vec<usize>,
    /// Final relative true residual per RHS.
    pub residuals: Vec<f64>,
    /// Whether each RHS reached the target tolerance.
    pub converged: Vec<bool>,
    /// Relative residual history per RHS, entry 0 = before iteration 1.
    /// Capped at [`HISTORY_CAP`] entries per RHS like
    /// [`SolveReport::history`].
    pub histories: Vec<Vec<f64>>,
    /// Typed health events per RHS (stall, divergence, NaN/Inf).
    pub health: Vec<Vec<HealthEvent>>,
    /// Profile of the whole batched solve (see [`qcd_trace`]).
    pub telemetry: qcd_trace::RegionSummary,
}

/// Preallocated scratch blocks for the batched solver path — the
/// [`SolverWorkspace`] shape at batch width `N`.
pub struct BlockWorkspace<E: SveFloat = f64> {
    /// `M p` intermediate (CG on the normal equations).
    pub tmp: FermionBlock<E>,
    /// Operator output `A p`.
    pub ap: FermionBlock<E>,
    /// Extra scratch (hopping intermediates for the even-odd Schur solve).
    pub hop: FermionBlock<E>,
}

impl<E: SveFloat> BlockWorkspace<E> {
    /// Allocate a workspace of batch width `nrhs` on `grid`.
    pub fn new(grid: Arc<Grid<E>>, nrhs: usize) -> Self {
        BlockWorkspace {
            tmp: FermionBlock::zero(grid.clone(), nrhs),
            ap: FermionBlock::zero(grid.clone(), nrhs),
            hop: FermionBlock::zero(grid, nrhs),
        }
    }

    /// The lattice the workspace blocks live on.
    pub fn grid(&self) -> &Arc<Grid<E>> {
        self.tmp.grid()
    }

    /// The batch width.
    pub fn nrhs(&self) -> usize {
        self.tmp.nrhs()
    }
}

/// The complete state of an in-flight **block** Conjugate Gradient solve:
/// `N` independent Hestenes–Stiefel recurrences sharing every operator
/// sweep. There is no stored "active" mask — which RHS still iterate is
/// *derived* from `iterations` and `r2` exactly like the single-RHS loop
/// condition, so a state snapshot carries everything a resume needs.
///
/// Per RHS the recurrence is bit-identical to [`CgState`] driven alone:
/// converged RHS are frozen (their words are not even loaded by the masked
/// sweeps), and the shared reductions accumulate per RHS in the single-RHS
/// chunk order and tree.
#[derive(Clone)]
pub struct BlockCgState<E: SveFloat = f64> {
    /// Current solution estimates.
    pub x: FermionBlock<E>,
    /// Recurrence residuals `b_j − A x_j`.
    pub r: FermionBlock<E>,
    /// Search directions.
    pub p: FermionBlock<E>,
    /// Squared norm of each `r_j` (recurrence values, not recomputed).
    pub r2: Vec<f64>,
    /// Squared norm of each right-hand side.
    pub b_norm2: Vec<f64>,
    /// Iterations completed per RHS.
    pub iterations: Vec<usize>,
    /// Relative residual history per RHS.
    pub histories: Vec<Vec<f64>>,
}

impl<E: SveFloat> BlockCgState<E> {
    /// Fresh state for solving `A x_j = b_j` from zero initial guesses.
    pub fn new(b: &FermionBlock<E>) -> Self {
        let grid = b.grid().clone();
        let nrhs = b.nrhs();
        let b_norm2 = b.norms2();
        for (j, &n) in b_norm2.iter().enumerate() {
            assert!(n > 0.0, "CG needs a nonzero right-hand side (RHS {j})");
        }
        let x = FermionBlock::zero(grid, nrhs);
        let r = b.clone();
        let p = r.clone();
        let r2 = r.norms2();
        let histories = (0..nrhs)
            .map(|j| vec![(r2[j] / b_norm2[j]).sqrt()])
            .collect();
        BlockCgState {
            x,
            r,
            p,
            r2,
            b_norm2,
            iterations: vec![0; nrhs],
            histories,
        }
    }

    /// The batch width.
    pub fn nrhs(&self) -> usize {
        self.r2.len()
    }

    /// Whether RHS `j`'s recurrence residual is at or below `tol` relative
    /// to `|b_j|` — the per-RHS [`CgState::converged`].
    pub fn converged_rhs(&self, j: usize, tol: f64) -> bool {
        self.r2[j] <= tol * tol * self.b_norm2[j]
    }

    /// Which RHS still iterate: exactly the single-RHS loop condition
    /// `iterations < max_iter && !converged(tol)`, derived per RHS.
    pub fn active(&self, tol: f64, max_iter: usize) -> Vec<bool> {
        (0..self.nrhs())
            .map(|j| self.iterations[j] < max_iter && !self.converged_rhs(j, tol))
            .collect()
    }

    /// One batched Hestenes–Stiefel iteration over the active RHS.
    ///
    /// `apply_into` evaluates the operator at its first argument into
    /// `ws.ap` (over the whole batch — the sweep is uniform; frozen RHS
    /// carry converged data whose result is simply ignored) and returns the
    /// per-RHS curvatures `Re ⟨p_j, A p_j⟩`. Active RHS then run the exact
    /// [`CgState::advance`] sequence through the masked fused sweeps;
    /// inactive RHS are untouched.
    pub fn step_ws(
        &mut self,
        ws: &mut BlockWorkspace<E>,
        apply_into: &mut impl FnMut(&FermionBlock<E>, &mut BlockWorkspace<E>) -> Vec<f64>,
        active: &[bool],
    ) {
        let nrhs = self.nrhs();
        let p_ap = apply_into(&self.p, ws);
        let mut alphas = vec![0.0; nrhs];
        for j in 0..nrhs {
            if active[j] {
                assert!(
                    p_ap[j] > 0.0,
                    "search direction has non-positive curvature: operator not HPD? (RHS {j})"
                );
                alphas[j] = self.r2[j] / p_ap[j];
            }
        }
        let r2_new =
            block_cg_update_x_r(&mut self.x, &mut self.r, &alphas, &self.p, &ws.ap, active);
        let mut betas = vec![0.0; nrhs];
        for j in 0..nrhs {
            if active[j] {
                betas[j] = r2_new[j] / self.r2[j];
            }
        }
        self.p.aypx_masked(&betas, &self.r, active);
        for j in 0..nrhs {
            if active[j] {
                self.r2[j] = r2_new[j];
                self.iterations[j] += 1;
                self.histories[j].push((self.r2[j] / self.b_norm2[j]).sqrt());
            }
        }
    }
}

/// Continue an allocation-free **block** Conjugate Gradient solve from an
/// arbitrary [`BlockCgState`] through a caller-provided [`BlockWorkspace`]
/// — the batched [`cg_ws_from_state`]. The loop sweeps all RHS together
/// until every one has converged or exhausted `max_iter`; per-RHS
/// convergence masking freezes finished recurrences without branching the
/// shared operator sweeps.
///
/// RHS `j` of the solution, its history, and its reported residual are
/// bit-identical to an independent single-RHS [`cg_ws`] solve of `b_j`.
pub fn block_cg_ws_from_state<E: SveFloat>(
    mut apply_into: impl FnMut(&FermionBlock<E>, &mut BlockWorkspace<E>) -> Vec<f64>,
    b: &FermionBlock<E>,
    ws: &mut BlockWorkspace<E>,
    mut state: BlockCgState<E>,
    tol: f64,
    max_iter: usize,
) -> (FermionBlock<E>, BlockSolveReport) {
    let grid = b.grid().clone();
    let nrhs = b.nrhs();
    let span = qcd_trace::span!("solver.block_cg", grid.engine().ctx());
    for h in &mut state.histories {
        h.reserve((max_iter + 1).saturating_sub(h.len()));
    }
    let mut monitors: Vec<HealthMonitor> = (0..nrhs)
        .map(|j| HealthMonitor::new(&format!("solver.block_cg[{j}]")))
        .collect();
    for (m, h) in monitors.iter_mut().zip(&state.histories) {
        m.replay(h);
    }

    loop {
        let active = state.active(tol, max_iter);
        if !active.iter().any(|&a| a) {
            break;
        }
        state.step_ws(ws, &mut apply_into, &active);
        for j in 0..nrhs {
            if active[j] {
                monitors[j].observe(*state.histories[j].last().unwrap());
            }
        }
    }

    let converged: Vec<bool> = (0..nrhs).map(|j| state.converged_rhs(j, tol)).collect();
    // True residual check per RHS, batched: `A x` lands in the workspace and
    // the subtract-and-norms runs as one fused sweep through the spent
    // search directions.
    apply_into(&state.x, ws);
    let sn = state.p.sub_norms2(b, &ws.ap);
    let residuals: Vec<f64> = (0..nrhs)
        .map(|j| (sn[j] / state.b_norm2[j]).sqrt())
        .collect();
    let mut histories = Vec::with_capacity(nrhs);
    let mut health = Vec::with_capacity(nrhs);
    for (monitor, (full, iters)) in monitors
        .into_iter()
        .zip(state.histories.iter().zip(&state.iterations))
    {
        let (capped, events) = conclude_health("solver.block_cg", monitor, full, *iters);
        histories.push(capped);
        health.push(events);
    }
    (
        state.x,
        BlockSolveReport {
            iterations: state.iterations.iter().copied().max().unwrap_or(0),
            per_rhs_iterations: state.iterations,
            residuals,
            converged,
            histories,
            health,
            telemetry: span.finish(),
        },
    )
}

/// Block Conjugate Gradient on the Wilson normal equations through a
/// reusable workspace: `M†M x_j = b_j` for all RHS at once, each dslash
/// sweep loading every gauge link once per site for the whole batch.
pub fn block_cg_ws<E: SveFloat>(
    op: &WilsonDirac<E>,
    b: &FermionBlock<E>,
    ws: &mut BlockWorkspace<E>,
    tol: f64,
    max_iter: usize,
) -> (FermionBlock<E>, BlockSolveReport) {
    block_cg_ws_from_state(
        |p, ws| {
            let BlockWorkspace { tmp, ap, .. } = ws;
            op.mdag_m_block_into_dot(p, tmp, ap)
        },
        b,
        ws,
        BlockCgState::new(b),
        tol,
        max_iter,
    )
}

/// Block Conjugate Gradient on the Wilson normal equations (workspace
/// allocated here): solves `M†M x_j = b_j` for every RHS in `b`, with RHS
/// `j` bit-identical to a single-RHS [`cg`] solve of `b_j`.
pub fn block_cg<E: SveFloat>(
    op: &WilsonDirac<E>,
    b: &FermionBlock<E>,
    tol: f64,
    max_iter: usize,
) -> (FermionBlock<E>, BlockSolveReport) {
    let mut ws = BlockWorkspace::new(b.grid().clone(), b.nrhs());
    block_cg_ws(op, b, &mut ws, tol, max_iter)
}

/// The complete state of an in-flight BiCGStab solve — the checkpoint unit
/// for the non-hermitian solver, mirroring [`CgState`].
#[derive(Clone)]
pub struct BicgStabState {
    /// Current solution estimate.
    pub x: FermionField,
    /// Recurrence residual.
    pub r: FermionField,
    /// Shadow residual (fixed at the initial residual).
    pub r0: FermionField,
    /// Search direction.
    pub p: FermionField,
    /// Current `<r0, r>` recurrence scalar.
    pub rho: crate::complex::Complex,
    /// Squared norm of the right-hand side.
    pub b_norm2: f64,
    /// Iterations completed so far.
    pub iterations: usize,
    /// Relative residual history, entry 0 = before the first iteration.
    pub history: Vec<f64>,
}

impl BicgStabState {
    /// Fresh state for solving `M x = b` from the zero initial guess.
    pub fn new(b: &FermionField) -> Self {
        let grid = b.grid().clone();
        let b_norm2 = b.norm2();
        assert!(b_norm2 > 0.0, "BiCGStab needs a nonzero right-hand side");
        let x = FermionField::zero(grid);
        let r = b.clone();
        let r0 = r.clone(); // shadow residual
        let p = r.clone();
        let rho = r0.inner(&r);
        let history = vec![(r.norm2() / b_norm2).sqrt()];
        BicgStabState {
            x,
            r,
            r0,
            p,
            rho,
            b_norm2,
            iterations: 0,
            history,
        }
    }

    /// Whether the recurrence residual is at or below `tol` relative to
    /// `|b|`.
    pub fn converged(&self, tol: f64) -> bool {
        self.r.norm2() <= tol * tol * self.b_norm2
    }

    /// The stabilized step size `α = ρ / <r0, v>` (complex division via the
    /// conjugate), asserting against the `<r0, v> = 0` breakdown.
    fn alpha(&self, v: &FermionField) -> crate::complex::Complex {
        let d = self.r0.inner(v);
        let n2 = d.norm2();
        assert!(n2 > 0.0, "BiCGStab breakdown: <r0, v> = 0");
        self.rho * d.conj().scale(1.0 / n2)
    }

    /// The iteration tail shared by [`Self::step`] and [`Self::step_ws`]
    /// once `v = M p`, `s = r − α v` and `t = M s` are in hand: fused
    /// two-term sweeps for `x` and `r`, the fused three-op sweep for `p`.
    fn conclude(
        &mut self,
        alpha: crate::complex::Complex,
        v: &FermionField,
        s: &FermionField,
        t: &FermionField,
    ) {
        let t2 = t.norm2();
        assert!(t2 > 0.0, "BiCGStab breakdown: t = 0");
        let omega = t.inner(s).scale(1.0 / t2);
        // x += alpha p + omega s (one sweep).
        self.x.caxpy2(alpha, &self.p, omega, s);
        // r = s - omega t (one sweep).
        self.r.caxpy_from(-omega, t, s);
        let rho_new = self.r0.inner(&self.r);
        let beta = (rho_new * alpha) * {
            let d = self.rho * omega;
            let n2 = d.norm2();
            assert!(n2 > 0.0, "BiCGStab breakdown: rho*omega = 0");
            d.conj().scale(1.0 / n2)
        };
        // p = r + beta (p - omega v) (one sweep).
        self.p.bicg_p_update(beta, omega, v, &self.r);
        self.rho = rho_new;
        self.iterations += 1;
        self.history.push((self.r.norm2() / self.b_norm2).sqrt());
    }

    /// One BiCGStab iteration (two operator applications) under a
    /// per-iteration telemetry span.
    pub fn step(&mut self, apply: impl Fn(&FermionField) -> FermionField) {
        let grid = self.x.grid().clone();
        let _iter_span = qcd_trace::span!("iter", grid.engine().ctx());
        let v = apply(&self.p);
        let alpha = self.alpha(&v);
        // s = r - alpha v (caxpy_from never reads its destination, so a
        // zero field is as good as a clone of r).
        let mut s = FermionField::zero(grid.clone());
        s.caxpy_from(-alpha, &v, &self.r);
        let t = apply(&s);
        self.conclude(alpha, &v, &s, &t);
    }

    /// One BiCGStab iteration through caller-provided storage: `v`/`s`/`t`
    /// live in the workspace (`ap`/`tmp`/`hop`), `apply_into` writes
    /// `M · input` into its output argument, and a steady-state iteration
    /// allocates nothing. Bit-identical to [`Self::step`].
    pub fn step_ws(
        &mut self,
        ws: &mut SolverWorkspace,
        apply_into: &mut impl FnMut(&FermionField, &mut FermionField),
    ) {
        apply_into(&self.p, &mut ws.ap); // v = M p
        let alpha = self.alpha(&ws.ap);
        ws.tmp.caxpy_from(-alpha, &ws.ap, &self.r); // s = r - alpha v
        let SolverWorkspace { tmp, hop, .. } = ws;
        apply_into(tmp, hop); // t = M s
        self.conclude(alpha, &ws.ap, &ws.tmp, &ws.hop);
    }
}

/// BiCGStab on `M x = b` — the non-hermitian workhorse; roughly half the
/// operator applications of normal-equation CG per iteration pair.
pub fn bicgstab(
    op: &WilsonDirac,
    b: &FermionField,
    tol: f64,
    max_iter: usize,
) -> (FermionField, SolveReport) {
    bicgstab_from_state(op, b, BicgStabState::new(b), tol, max_iter)
}

/// Continue a BiCGStab solve from an arbitrary [`BicgStabState`] — freshly
/// built or restored from a checkpoint. `max_iter` counts total iterations
/// including those already inside `state`. Runs the allocation-free fused
/// path: one workspace for the whole solve, `M` applied through
/// [`WilsonDirac::apply_into`].
pub fn bicgstab_from_state(
    op: &WilsonDirac,
    b: &FermionField,
    mut state: BicgStabState,
    tol: f64,
    max_iter: usize,
) -> (FermionField, SolveReport) {
    let grid = b.grid().clone();
    let span = qcd_trace::span!("solver.bicgstab", grid.engine().ctx());
    let mut ws = SolverWorkspace::new(grid.clone());
    state
        .history
        .reserve((max_iter + 1).saturating_sub(state.history.len()));
    let mut apply_into = |f: &FermionField, out: &mut FermionField| op.apply_into(f, out);
    let mut monitor = HealthMonitor::new("solver.bicgstab");
    monitor.replay(&state.history);

    while state.iterations < max_iter && !state.converged(tol) {
        state.step_ws(&mut ws, &mut apply_into);
        monitor.observe(*state.history.last().unwrap());
    }

    op.apply_into(&state.x, &mut ws.ap);
    let residual = (ws.tmp.sub_norm2(b, &ws.ap) / state.b_norm2).sqrt();
    let (history, health) =
        conclude_health("solver.bicgstab", monitor, &state.history, state.iterations);
    (
        state.x,
        SolveReport {
            iterations: state.iterations,
            residual,
            converged: residual <= tol * 10.0,
            history,
            health,
            telemetry: span.finish(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Grid;
    use crate::simd::SimdBackend;
    use crate::tensor::su3::random_gauge;
    use sve::VectorLength;

    fn setup(bits: usize, backend: SimdBackend) -> (WilsonDirac, FermionField) {
        let g = Grid::new([4, 4, 4, 4], VectorLength::of(bits), backend);
        let u = random_gauge(g.clone(), 21);
        let b = FermionField::random(g.clone(), 22);
        (WilsonDirac::new(u, 0.2), b)
    }

    #[test]
    fn cg_converges_on_the_normal_operator() {
        let (op, b) = setup(512, SimdBackend::Fcmla);
        let (x, report) = cg(&op, &b, 1e-8, 2000);
        assert!(report.converged, "CG failed: {report:?}");
        assert!(report.residual < 1e-7, "true residual {}", report.residual);
        // Verify by direct application.
        let ax = op.mdag_m(&x);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&ax, &b);
        assert!(diff.norm2() / b.norm2() < 1e-13);
    }

    #[test]
    fn residual_history_is_monotone_enough() {
        let (op, b) = setup(256, SimdBackend::Fcmla);
        let (_, report) = cg(&op, &b, 1e-8, 2000);
        // CG residuals may wobble, but first and last tell the story.
        assert!(report.history.first().unwrap() > report.history.last().unwrap());
        assert_eq!(report.history.len(), report.iterations + 1);
    }

    #[test]
    fn solve_wilson_inverts_m() {
        let (op, b) = setup(512, SimdBackend::Fcmla);
        let (x, report) = solve_wilson(&op, &b, 1e-8, 2000);
        assert!(report.residual < 1e-6, "residual {}", report.residual);
        let mx = op.apply(&x);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&mx, &b);
        assert!((diff.norm2() / b.norm2()).sqrt() < 1e-6);
    }

    #[test]
    fn bicgstab_inverts_m_directly() {
        let (op, b) = setup(256, SimdBackend::Fcmla);
        let (x, report) = bicgstab(&op, &b, 1e-8, 2000);
        assert!(report.residual < 1e-6, "residual {}", report.residual);
        let mx = op.apply(&x);
        let mut diff = FermionField::zero(b.grid().clone());
        diff.sub(&mx, &b);
        assert!((diff.norm2() / b.norm2()).sqrt() < 1e-6);
    }

    #[test]
    fn backends_converge_to_the_same_solution() {
        let mut solutions = Vec::new();
        for backend in SimdBackend::all() {
            let (op, b) = setup(512, backend);
            let (x, report) = cg(&op, &b, 1e-10, 2000);
            assert!(report.converged, "{backend:?}");
            solutions.push(x);
        }
        let norm = solutions[0].norm2().sqrt();
        for other in &solutions[1..] {
            // Fields live on per-backend grids: compare raw storage (layout
            // is identical — same dims, same vector length).
            let d = solutions[0]
                .data()
                .iter()
                .zip(other.data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(d < 1e-7 * norm.max(1.0), "solutions differ by {d}");
        }
    }

    #[test]
    fn convergence_is_vl_independent() {
        // Same physics at every vector length: iteration counts match and
        // solutions agree site by site (the V-D verification idea applied
        // to a full solve).
        let mut reports = Vec::new();
        let mut sols = Vec::new();
        for bits in [128usize, 1024] {
            let (op, b) = setup(bits, SimdBackend::Fcmla);
            let (x, report) = cg(&op, &b, 1e-8, 2000);
            reports.push(report);
            sols.push(x);
        }
        assert_eq!(reports[0].iterations, reports[1].iterations);
        let g0 = sols[0].grid().clone();
        for x in g0.coords().step_by(5) {
            for comp in 0..12 {
                let a = sols[0].peek(&x, comp);
                let b = sols[1].peek(&x, comp);
                assert!((a - b).abs() < 1e-8, "{x:?} {comp}");
            }
        }
    }

    #[test]
    fn fused_cg_is_bit_identical_to_the_closure_path() {
        // The tentpole contract: the allocation-free workspace solve and
        // the allocating closure solve retire the same engine ops per word
        // in the same order — solutions, histories, and the reported
        // residual must agree bit for bit.
        let (op, b) = setup(512, SimdBackend::Fcmla);
        let (x_ws, ws_report) = cg(&op, &b, 1e-8, 2000);
        let (x_cl, cl_report) = cg_op(|p| op.mdag_m(p), &b, 1e-8, 2000);
        assert_eq!(ws_report.iterations, cl_report.iterations);
        assert_eq!(ws_report.residual.to_bits(), cl_report.residual.to_bits());
        for (a, c) in ws_report.history.iter().zip(&cl_report.history) {
            assert_eq!(a.to_bits(), c.to_bits(), "history diverged");
        }
        for (a, c) in x_ws.data().iter().zip(x_cl.data()) {
            assert_eq!(a.to_bits(), c.to_bits(), "solution bits diverged");
        }
    }

    #[test]
    fn workspace_is_reusable_across_solves() {
        // A second solve through the same workspace must match a solve
        // through a fresh one bitwise (no state leaks between solves).
        let (op, b) = setup(256, SimdBackend::Fcmla);
        let b2 = FermionField::random(b.grid().clone(), 23);
        let mut ws = SolverWorkspace::new(b.grid().clone());
        let _ = cg_ws(&op, &b, &mut ws, 1e-8, 2000);
        let (x_reused, rep_reused) = cg_ws(&op, &b2, &mut ws, 1e-8, 2000);
        let mut fresh = SolverWorkspace::new(b.grid().clone());
        let (x_fresh, rep_fresh) = cg_ws(&op, &b2, &mut fresh, 1e-8, 2000);
        assert_eq!(rep_reused.iterations, rep_fresh.iterations);
        for (a, c) in x_reused.data().iter().zip(x_fresh.data()) {
            assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn cg_resumed_from_mid_solve_state_is_bit_identical() {
        // The checkpoint/restart contract: interrupt CG at iteration k,
        // snapshot the state, continue from the snapshot — iteration count,
        // history, and the solution *bits* must match an uninterrupted run.
        let (op, b) = setup(256, SimdBackend::Fcmla);
        let apply = |p: &FermionField| op.mdag_m(p);
        let (x_full, full) = cg(&op, &b, 1e-8, 2000);

        let mut st = CgState::new(&b);
        for _ in 0..10 {
            st.step(apply);
        }
        let snapshot = st.clone(); // what qcd-io serializes
        drop(st); // the "killed" solve
        let (x_res, res) = cg_op_from_state(apply, &b, snapshot, 1e-8, 2000);

        assert_eq!(res.iterations, full.iterations);
        assert_eq!(res.history.len(), full.history.len());
        for (a, c) in full.history.iter().zip(&res.history) {
            assert_eq!(a.to_bits(), c.to_bits(), "history diverged");
        }
        for (a, c) in x_full.data().iter().zip(x_res.data()) {
            assert_eq!(a.to_bits(), c.to_bits(), "solution bits diverged");
        }
        assert_eq!(res.residual.to_bits(), full.residual.to_bits());
        // Health is replayed through the restored history, so the resumed
        // report carries the same typed events as the uninterrupted one.
        assert_eq!(res.health, full.health);
    }

    #[test]
    fn bicgstab_resumed_from_mid_solve_state_is_bit_identical() {
        let (op, b) = setup(256, SimdBackend::Fcmla);
        let (x_full, full) = bicgstab(&op, &b, 1e-8, 2000);

        let mut st = BicgStabState::new(&b);
        for _ in 0..7 {
            st.step(|f| op.apply(f));
        }
        let snapshot = st.clone();
        drop(st);
        let (x_res, res) = bicgstab_from_state(&op, &b, snapshot, 1e-8, 2000);

        assert_eq!(res.iterations, full.iterations);
        for (a, c) in x_full.data().iter().zip(x_res.data()) {
            assert_eq!(a.to_bits(), c.to_bits(), "solution bits diverged");
        }
    }

    #[test]
    #[should_panic(expected = "nonzero right-hand side")]
    fn cg_rejects_zero_rhs() {
        let (op, b) = setup(128, SimdBackend::Fcmla);
        let zero = FermionField::zero(b.grid().clone());
        let _ = cg(&op, &zero, 1e-8, 10);
    }

    #[test]
    fn block_cg_is_bit_identical_to_independent_solves() {
        // The batched solver's contract: RHS j of the block solve — solution
        // bits, iteration count, history, and reported residual — matches an
        // independent single-RHS cg() of that RHS exactly. Different seeds
        // give different convergence points, so the masking path (frozen
        // early converges while others iterate) is exercised for real.
        let (op, b0) = setup(512, SimdBackend::Fcmla);
        let g = b0.grid().clone();
        let rhss = vec![
            b0,
            FermionField::random(g.clone(), 31),
            FermionField::random(g.clone(), 32),
        ];
        let block = FermionBlock::from_fields(&rhss);
        let (bx, brep) = block_cg(&op, &block, 1e-8, 2000);
        let mut iteration_counts = Vec::new();
        for (j, rhs) in rhss.iter().enumerate() {
            let (x, rep) = cg(&op, rhs, 1e-8, 2000);
            assert!(rep.converged, "rhs {j} failed");
            assert_eq!(brep.per_rhs_iterations[j], rep.iterations, "rhs {j}");
            assert!(brep.converged[j], "rhs {j}");
            assert_eq!(
                brep.residuals[j].to_bits(),
                rep.residual.to_bits(),
                "rhs {j} residual"
            );
            assert_eq!(brep.histories[j].len(), rep.history.len(), "rhs {j}");
            for (a, c) in brep.histories[j].iter().zip(&rep.history) {
                assert_eq!(a.to_bits(), c.to_bits(), "rhs {j} history diverged");
            }
            let xb = bx.rhs_field(j);
            assert_eq!(xb.max_abs_diff(&x), 0.0, "rhs {j} solution diverged");
            iteration_counts.push(rep.iterations);
        }
        assert_eq!(
            brep.iterations,
            *iteration_counts.iter().max().unwrap(),
            "block iteration count must be the slowest RHS"
        );
    }

    #[test]
    fn block_cg_with_one_rhs_matches_cg_bitwise() {
        let (op, b) = setup(256, SimdBackend::Fcmla);
        let block = FermionBlock::from_fields(std::slice::from_ref(&b));
        let (bx, brep) = block_cg(&op, &block, 1e-8, 2000);
        let (x, rep) = cg(&op, &b, 1e-8, 2000);
        assert_eq!(brep.per_rhs_iterations[0], rep.iterations);
        assert_eq!(brep.residuals[0].to_bits(), rep.residual.to_bits());
        assert_eq!(bx.rhs_field(0).max_abs_diff(&x), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero right-hand side (RHS 1)")]
    fn block_cg_rejects_zero_rhs_by_index() {
        let (op, b) = setup(128, SimdBackend::Fcmla);
        let zero = FermionField::zero(b.grid().clone());
        let block = FermionBlock::from_fields(&[b, zero]);
        let _ = block_cg(&op, &block, 1e-8, 10);
    }

    #[test]
    fn block_cg_state_snapshot_resumes_bit_identically() {
        // The checkpoint contract extends to the batch: snapshot the block
        // state mid-solve, continue from the clone — everything matches the
        // uninterrupted run bitwise.
        let (op, b0) = setup(256, SimdBackend::Fcmla);
        let g = b0.grid().clone();
        let rhss = vec![b0, FermionField::random(g.clone(), 33)];
        let block = FermionBlock::from_fields(&rhss);
        let (x_full, full) = block_cg(&op, &block, 1e-8, 2000);

        let mut ws = BlockWorkspace::new(g.clone(), 2);
        let mut apply = |p: &FermionBlock, ws: &mut BlockWorkspace| {
            let BlockWorkspace { tmp, ap, .. } = ws;
            op.mdag_m_block_into_dot(p, tmp, ap)
        };
        let mut st = BlockCgState::new(&block);
        for _ in 0..10 {
            let active = st.active(1e-8, 2000);
            st.step_ws(&mut ws, &mut apply, &active);
        }
        let snapshot = st.clone();
        drop(st);
        let (x_res, res) = block_cg_ws_from_state(apply, &block, &mut ws, snapshot, 1e-8, 2000);
        assert_eq!(res.per_rhs_iterations, full.per_rhs_iterations);
        assert_eq!(x_res.max_abs_diff(&x_full), 0.0);
        for j in 0..2 {
            assert_eq!(res.residuals[j].to_bits(), full.residuals[j].to_bits());
        }
        assert_eq!(res.health, full.health);
    }

    #[test]
    fn a_stalled_f32_solve_reports_stall_events_and_caps_history() {
        use qcd_metrics::HealthEventKind;
        // Ask the f32 path for a tolerance single precision cannot reach:
        // the recurrence residual floors near the f32 underflow region
        // (~1e-24 relative) and the monitor must flag the stall. The long
        // run also exercises the report-time history cap.
        let _guard = qcd_metrics::global_test_lock();
        qcd_metrics::flight_reset();
        let g = Grid::<f32>::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 21);
        let op = WilsonDirac::<f32>::new(u, 0.2);
        let b = Field::<FermionKind, f32>::random(g.clone(), 22);
        let mut ws = SolverWorkspace::<f32>::new(g.clone());
        let (_, report) = cg_ws(&op, &b, &mut ws, 1e-30, 700);

        assert!(!report.converged, "f32 cannot reach 1e-30");
        assert_eq!(report.iterations, 700, "must burn the whole budget");
        assert!(
            report
                .health
                .iter()
                .any(|e| e.kind == HealthEventKind::Stall),
            "no stall event in {:?}",
            report.health
        );
        assert!(
            report.history.len() <= HISTORY_CAP,
            "history not capped: {} entries",
            report.history.len()
        );
        // Endpoints survive the cap.
        assert_eq!(report.history[0].to_bits(), 1.0f64.to_bits());
        // Every health event also landed in the flight recorder, typed.
        let flight = qcd_metrics::flight_snapshot();
        let stalls: Vec<_> = flight
            .iter()
            .filter(|ev| ev.kind == "health" && ev.label == "solver.cg:stall")
            .collect();
        assert!(!stalls.is_empty(), "stall missing from flight ring");
        let dump = qcd_metrics::flight_dump_jsonl();
        assert!(dump.contains("\"label\":\"solver.cg:stall\""));
        qcd_metrics::validate_jsonl(&dump).expect("flight dump must validate");
    }

    #[test]
    fn a_healthy_solve_reports_no_events_and_full_history() {
        let (op, b) = setup(256, SimdBackend::Fcmla);
        let (_, report) = cg(&op, &b, 1e-8, 2000);
        assert!(report.health.is_empty(), "events: {:?}", report.health);
        // Short histories pass through the cap untouched.
        assert_eq!(report.history.len(), report.iterations + 1);
    }
}
