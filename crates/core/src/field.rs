//! Lattice fields over the virtual-node layout.
//!
//! A field stores, per outer site, `NCOMP` complex components, each as one
//! interleaved SIMD word (lane `l` = virtual node `l`). The backing store is
//! a flat `Vec<f64>` of ordinary scalars — precisely the paper's answer to
//! the sizeless-type restriction: "we use ordinary arrays as class member
//! data and implement SVE ACLE only for data processing within functions"
//! (Section V-A). Every arithmetic method below loads words, computes with
//! the engine's intrinsics and stores back.

use crate::complex::Complex;
use crate::layout::{Coor, Grid};
use crate::rng::{stream_id, uniform};
use crate::simd::CVec;
use std::marker::PhantomData;
use std::sync::Arc;
use sve::SveFloat;

/// The tensor structure living on every site.
pub trait FieldKind: Send + Sync + 'static {
    /// Complex components per site.
    const NCOMP: usize;
    /// Human-readable name.
    const NAME: &'static str;
}

/// A single complex number per site.
pub struct ScalarKind;
impl FieldKind for ScalarKind {
    const NCOMP: usize = 1;
    const NAME: &'static str = "complex scalar";
}

/// A quark field: 4 spinor x 3 color components (12 complex per site,
/// "thus, ψ is a vector with 12 V complex entries" — paper, Section II-A).
pub struct FermionKind;
impl FieldKind for FermionKind {
    const NCOMP: usize = 12;
    const NAME: &'static str = "spin-color fermion";
}

/// A half (spin-projected) fermion: 2 spinor x 3 color components.
pub struct HalfFermionKind;
impl FieldKind for HalfFermionKind {
    const NCOMP: usize = 6;
    const NAME: &'static str = "half spinor";
}

/// The gauge field: one SU(3) matrix (9 complex) per direction, 4
/// directions.
pub struct GaugeKind;
impl FieldKind for GaugeKind {
    const NCOMP: usize = 36;
    const NAME: &'static str = "SU(3) gauge links";
}

/// Component index of spinor component (`spin`, `color`).
pub fn spinor_comp(spin: usize, color: usize) -> usize {
    spin * 3 + color
}

/// Component index of gauge-link entry (`mu`, `row`, `col`).
pub fn gauge_comp(mu: usize, row: usize, col: usize) -> usize {
    mu * 9 + row * 3 + col
}

/// A lattice field of kind `K`.
pub struct Field<K: FieldKind, E: SveFloat = f64> {
    grid: Arc<Grid<E>>,
    data: Vec<E>,
    _k: PhantomData<K>,
}

/// A complex scalar field.
pub type ComplexField = Field<ScalarKind>;
/// A quark (spin-color) field.
pub type FermionField = Field<FermionKind>;
/// A spin-projected half fermion field.
pub type HalfFermionField = Field<HalfFermionKind>;
/// The SU(3) gauge configuration.
pub type GaugeField = Field<GaugeKind>;

impl<K: FieldKind, E: SveFloat> Clone for Field<K, E> {
    fn clone(&self) -> Self {
        Field {
            grid: self.grid.clone(),
            data: self.data.clone(),
            _k: PhantomData,
        }
    }
}

impl<K: FieldKind, E: SveFloat> Field<K, E> {
    /// A zero field on `grid`.
    pub fn zero(grid: Arc<Grid<E>>) -> Self {
        let word = grid.engine().word_len();
        let data = vec![E::zero(); grid.osites() * K::NCOMP * word];
        Field {
            grid,
            data,
            _k: PhantomData,
        }
    }

    /// A field filled with layout-independent uniform noise in `[-1,1)`
    /// (same physical content for every vector length).
    pub fn random(grid: Arc<Grid<E>>, seed: u64) -> Self {
        let mut f = Self::zero(grid.clone());
        for x in grid.coords() {
            let gidx = grid.global_index(&x);
            for comp in 0..K::NCOMP {
                f.poke(
                    &x,
                    comp,
                    Complex::new(
                        uniform(seed, stream_id(gidx, comp, 0)),
                        uniform(seed, stream_id(gidx, comp, 1)),
                    ),
                );
            }
        }
        f
    }

    /// The lattice this field lives on.
    pub fn grid(&self) -> &Arc<Grid<E>> {
        &self.grid
    }

    /// Scalars per site = `NCOMP * 2 * lanes_c`.
    pub fn site_stride(&self) -> usize {
        K::NCOMP * self.grid.engine().word_len()
    }

    /// One component's SIMD word at an outer site.
    #[inline]
    pub fn word(&self, osite: usize, comp: usize) -> &[E] {
        let w = self.grid.engine().word_len();
        let off = (osite * K::NCOMP + comp) * w;
        &self.data[off..off + w]
    }

    /// Mutable SIMD word.
    #[inline]
    pub fn word_mut(&mut self, osite: usize, comp: usize) -> &mut [E] {
        let w = self.grid.engine().word_len();
        let off = (osite * K::NCOMP + comp) * w;
        &mut self.data[off..off + w]
    }

    /// Raw storage (site-major, component, interleaved lanes).
    pub fn data(&self) -> &[E] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn data_mut(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// Read component `comp` at global coordinate `x` (scalar path).
    pub fn peek(&self, x: &Coor, comp: usize) -> Complex {
        let (osite, lane) = self.grid.coor_to_osite_lane(x);
        let w = self.word(osite, comp);
        Complex::new(w[2 * lane].to_f64(), w[2 * lane + 1].to_f64())
    }

    /// Write component `comp` at global coordinate `x` (scalar path).
    pub fn poke(&mut self, x: &Coor, comp: usize, z: Complex) {
        let (osite, lane) = self.grid.coor_to_osite_lane(x);
        let w = self.word_mut(osite, comp);
        w[2 * lane] = E::from_f64(z.re);
        w[2 * lane + 1] = E::from_f64(z.im);
    }

    fn assert_compatible(&self, other: &Field<K, E>) {
        assert!(
            Arc::ptr_eq(&self.grid, &other.grid),
            "fields live on different grids"
        );
    }

    /// `self = a * x + y` lane-wise (one fused `fmla` per word).
    pub fn axpy(&mut self, a: f64, x: &Field<K, E>, y: &Field<K, E>) {
        self.assert_compatible(x);
        self.assert_compatible(y);
        let eng = self.grid.engine().clone();
        let a_dup = eng.dup_real(a);
        for osite in 0..self.grid.osites() {
            for comp in 0..K::NCOMP {
                let xv = eng.load(x.word(osite, comp));
                let yv = eng.load(y.word(osite, comp));
                let r = eng.axpy_word(a_dup, xv, yv);
                eng.store(self.word_mut(osite, comp), r);
            }
        }
    }

    /// `self += a * x`.
    pub fn axpy_inplace(&mut self, a: f64, x: &Field<K, E>) {
        self.assert_compatible(x);
        let eng = self.grid.engine().clone();
        let a_dup = eng.dup_real(a);
        for osite in 0..self.grid.osites() {
            for comp in 0..K::NCOMP {
                let xv = eng.load(x.word(osite, comp));
                let sv = eng.load(self.word(osite, comp));
                let r = eng.axpy_word(a_dup, xv, sv);
                eng.store(self.word_mut(osite, comp), r);
            }
        }
    }

    /// `self = x + a * self` (the CG search-direction update).
    pub fn aypx(&mut self, a: f64, x: &Field<K, E>) {
        self.assert_compatible(x);
        let eng = self.grid.engine().clone();
        let a_dup = eng.dup_real(a);
        for osite in 0..self.grid.osites() {
            for comp in 0..K::NCOMP {
                let xv = eng.load(x.word(osite, comp));
                let sv = eng.load(self.word(osite, comp));
                let r = eng.axpy_word(a_dup, sv, xv);
                eng.store(self.word_mut(osite, comp), r);
            }
        }
    }

    /// `self *= a` (real scale).
    pub fn scale(&mut self, a: f64) {
        let eng = self.grid.engine().clone();
        let a_dup = eng.dup_real(a);
        for osite in 0..self.grid.osites() {
            for comp in 0..K::NCOMP {
                let sv = eng.load(self.word(osite, comp));
                let r = eng.scale(a_dup, sv);
                eng.store(self.word_mut(osite, comp), r);
            }
        }
    }

    /// `self = x - y`.
    pub fn sub(&mut self, x: &Field<K, E>, y: &Field<K, E>) {
        self.assert_compatible(x);
        self.assert_compatible(y);
        let eng = self.grid.engine().clone();
        for osite in 0..self.grid.osites() {
            for comp in 0..K::NCOMP {
                let xv = eng.load(x.word(osite, comp));
                let yv = eng.load(y.word(osite, comp));
                let r = eng.sub(xv, yv);
                eng.store(self.word_mut(osite, comp), r);
            }
        }
    }

    /// `self += a * x` with a complex scalar `a` (splat + complex FMA).
    pub fn axpy_complex(&mut self, a: Complex, x: &Field<K, E>) {
        self.assert_compatible(x);
        let eng = self.grid.engine().clone();
        let a_splat = eng.splat(a);
        for osite in 0..self.grid.osites() {
            for comp in 0..K::NCOMP {
                let xv = eng.load(x.word(osite, comp));
                let sv = eng.load(self.word(osite, comp));
                let r = eng.madd(sv, a_splat, xv);
                eng.store(self.word_mut(osite, comp), r);
            }
        }
    }

    /// `self *= a` with a complex scalar `a`.
    pub fn scale_complex(&mut self, a: Complex) {
        let eng = self.grid.engine().clone();
        let a_splat = eng.splat(a);
        for osite in 0..self.grid.osites() {
            for comp in 0..K::NCOMP {
                let sv = eng.load(self.word(osite, comp));
                let r = eng.mult(a_splat, sv);
                eng.store(self.word_mut(osite, comp), r);
            }
        }
    }

    /// `self += x`.
    pub fn add_assign_field(&mut self, x: &Field<K, E>) {
        self.assert_compatible(x);
        let eng = self.grid.engine().clone();
        for osite in 0..self.grid.osites() {
            for comp in 0..K::NCOMP {
                let xv = eng.load(x.word(osite, comp));
                let sv = eng.load(self.word(osite, comp));
                let r = eng.add(sv, xv);
                eng.store(self.word_mut(osite, comp), r);
            }
        }
    }

    /// Global inner product `<self, other> = Σ conj(self) · other`
    /// (vectorized conjugate-FMA accumulation, one reduction at the end).
    pub fn inner(&self, other: &Field<K, E>) -> Complex {
        self.assert_compatible(other);
        let eng = self.grid.engine();
        let mut acc: CVec = eng.zero();
        for osite in 0..self.grid.osites() {
            for comp in 0..K::NCOMP {
                let a = eng.load(self.word(osite, comp));
                let b = eng.load(other.word(osite, comp));
                acc = eng.madd_conj(acc, a, b);
            }
        }
        eng.reduce_sum(acc)
    }

    /// Global squared norm `|self|^2` (always real, computed as a real
    /// lane-square accumulation).
    pub fn norm2(&self) -> f64 {
        let eng = self.grid.engine();
        let mut total = 0.0;
        for osite in 0..self.grid.osites() {
            for comp in 0..K::NCOMP {
                let a = eng.load(self.word(osite, comp));
                total += eng.norm2(a);
            }
        }
        total
    }

    /// Maximum absolute difference to another field (test metric).
    pub fn max_abs_diff(&self, other: &Field<K, E>) -> f64 {
        self.assert_compatible(other);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::SimdBackend;
    use sve::VectorLength;

    fn grid() -> Arc<Grid> {
        Grid::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla)
    }

    #[test]
    fn zero_field_has_zero_norm() {
        let f = FermionField::zero(grid());
        assert_eq!(f.norm2(), 0.0);
    }

    #[test]
    fn peek_poke_round_trip() {
        let g = grid();
        let mut f = FermionField::zero(g.clone());
        let z = Complex::new(1.25, -0.5);
        f.poke(&[1, 2, 3, 0], spinor_comp(2, 1), z);
        assert_eq!(f.peek(&[1, 2, 3, 0], spinor_comp(2, 1)), z);
        // Other slots untouched.
        assert_eq!(f.peek(&[1, 2, 3, 0], spinor_comp(2, 2)), Complex::ZERO);
        assert_eq!(f.peek(&[0, 2, 3, 0], spinor_comp(2, 1)), Complex::ZERO);
        assert!((f.norm2() - z.norm2()).abs() < 1e-14);
    }

    #[test]
    fn random_field_is_layout_independent() {
        let a = FermionField::random(
            Grid::new([4, 4, 4, 4], VectorLength::of(128), SimdBackend::Fcmla),
            7,
        );
        let b = FermionField::random(
            Grid::new([4, 4, 4, 4], VectorLength::of(2048), SimdBackend::Fcmla),
            7,
        );
        for x in a.grid().coords() {
            for comp in 0..12 {
                assert_eq!(a.peek(&x, comp), b.peek(&x, comp), "{x:?} {comp}");
            }
        }
    }

    #[test]
    fn axpy_matches_scalar_reference() {
        let g = grid();
        let x = FermionField::random(g.clone(), 1);
        let y = FermionField::random(g.clone(), 2);
        let mut out = FermionField::zero(g.clone());
        out.axpy(2.5, &x, &y);
        for coor in g.coords().take(32) {
            for comp in 0..12 {
                let want = x.peek(&coor, comp) * 2.5 + y.peek(&coor, comp);
                let got = out.peek(&coor, comp);
                assert!((got - want).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn aypx_and_axpy_inplace() {
        let g = grid();
        let x = FermionField::random(g.clone(), 1);
        let mut p = FermionField::random(g.clone(), 2);
        let p0 = p.clone();
        p.aypx(0.5, &x); // p = x + 0.5 p
        for coor in g.coords().take(16) {
            let want = x.peek(&coor, 0) + p0.peek(&coor, 0) * 0.5;
            assert!((p.peek(&coor, 0) - want).abs() < 1e-13);
        }
        let mut r = p0.clone();
        r.axpy_inplace(-1.0, &x); // r -= x
        for coor in g.coords().take(16) {
            let want = p0.peek(&coor, 3) - x.peek(&coor, 3);
            assert!((r.peek(&coor, 3) - want).abs() < 1e-13);
        }
    }

    #[test]
    fn inner_product_is_conjugate_symmetric_and_positive() {
        let g = grid();
        let x = FermionField::random(g.clone(), 3);
        let y = FermionField::random(g.clone(), 4);
        let xy = x.inner(&y);
        let yx = y.inner(&x);
        assert!((xy - yx.conj()).abs() < 1e-10);
        let xx = x.inner(&x);
        assert!(xx.im.abs() < 1e-10);
        assert!(xx.re > 0.0);
        assert!((xx.re - x.norm2()).abs() < 1e-9 * xx.re);
    }

    #[test]
    fn norm_is_layout_invariant_up_to_rounding() {
        let n128 = FermionField::random(
            Grid::new([4, 4, 4, 4], VectorLength::of(128), SimdBackend::Fcmla),
            9,
        )
        .norm2();
        let n1024 = FermionField::random(
            Grid::new([4, 4, 4, 4], VectorLength::of(1024), SimdBackend::Fcmla),
            9,
        )
        .norm2();
        assert!((n128 - n1024).abs() < 1e-9 * n128);
    }

    #[test]
    fn scale_and_sub() {
        let g = grid();
        let x = FermionField::random(g.clone(), 5);
        let mut y = x.clone();
        y.scale(3.0);
        let mut d = FermionField::zero(g.clone());
        d.sub(&y, &x); // 2x
        let ratio = d.norm2() / x.norm2();
        assert!((ratio - 4.0).abs() < 1e-10);
    }

    #[test]
    fn complex_scalar_ops_match_scalar_reference() {
        let g = grid();
        let a = Complex::new(0.75, -1.25);
        let x = FermionField::random(g.clone(), 6);
        let mut y = FermionField::random(g.clone(), 7);
        let y0 = y.clone();
        y.axpy_complex(a, &x); // y += a x
        for coor in g.coords().take(16) {
            for comp in [0usize, 11] {
                let want = y0.peek(&coor, comp) + a * x.peek(&coor, comp);
                assert!((y.peek(&coor, comp) - want).abs() < 1e-13);
            }
        }
        let mut z = x.clone();
        z.scale_complex(a);
        for coor in g.coords().take(16) {
            let want = a * x.peek(&coor, 5);
            assert!((z.peek(&coor, 5) - want).abs() < 1e-13);
        }
        let mut w = x.clone();
        w.add_assign_field(&y0);
        for coor in g.coords().take(16) {
            let want = x.peek(&coor, 3) + y0.peek(&coor, 3);
            assert!((w.peek(&coor, 3) - want).abs() < 1e-13);
        }
    }

    #[test]
    fn f32_fields_round_trip_and_compute() {
        let g32 = Grid::<f32>::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla);
        let mut f = Field::<FermionKind, f32>::zero(g32.clone());
        let z = Complex::new(0.5, -0.25); // exact in f32
        f.poke(&[1, 2, 3, 0], 4, z);
        assert_eq!(f.peek(&[1, 2, 3, 0], 4), z);
        let x = Field::<FermionKind, f32>::random(g32.clone(), 9);
        let n = x.norm2();
        assert!(n > 0.0);
        let ip = x.inner(&x);
        assert!((ip.re - n).abs() < 1e-4 * n);
        assert!(ip.im.abs() < 1e-4 * n);
    }

    #[test]
    #[should_panic(expected = "different grids")]
    fn cross_grid_ops_panic() {
        let a = FermionField::zero(grid());
        let b = FermionField::zero(grid());
        let _ = a.inner(&b);
    }
}
