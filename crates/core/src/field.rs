//! Lattice fields over the virtual-node layout.
//!
//! A field stores, per outer site, `NCOMP` complex components, each as one
//! interleaved SIMD word (lane `l` = virtual node `l`). The backing store is
//! a flat `Vec<f64>` of ordinary scalars — precisely the paper's answer to
//! the sizeless-type restriction: "we use ordinary arrays as class member
//! data and implement SVE ACLE only for data processing within functions"
//! (Section V-A). Every arithmetic method below loads words, computes with
//! the engine's intrinsics and stores back.
//!
//! All linear algebra runs in parallel over fixed chunks of
//! [`reduce::CHUNK_SITES`] outer sites. Reductions (`inner`, `norm2` and the
//! fused `*_norm2` kernels) produce one partial per chunk, in ascending word
//! order, and combine partials with the fixed binary tree of [`reduce`] —
//! so their results are bit-identical for any worker count, which keeps
//! qcd-io's bit-exact checkpoint resume valid under threading. With a single
//! worker every operation degrades to a direct loop that allocates nothing;
//! the solvers' allocation-free steady state depends on that.

use crate::complex::Complex;
use crate::layout::{Coor, Grid};
use crate::reduce;
use crate::rng::{stream_id, uniform};
use crate::simd::{CVec, SimdEngine};
use rayon::prelude::*;
use std::marker::PhantomData;
use std::sync::Arc;
use sve::SveFloat;

/// The tensor structure living on every site.
pub trait FieldKind: Send + Sync + 'static {
    /// Complex components per site.
    const NCOMP: usize;
    /// Human-readable name.
    const NAME: &'static str;
}

/// A single complex number per site.
pub struct ScalarKind;
impl FieldKind for ScalarKind {
    const NCOMP: usize = 1;
    const NAME: &'static str = "complex scalar";
}

/// A quark field: 4 spinor x 3 color components (12 complex per site,
/// "thus, ψ is a vector with 12 V complex entries" — paper, Section II-A).
pub struct FermionKind;
impl FieldKind for FermionKind {
    const NCOMP: usize = 12;
    const NAME: &'static str = "spin-color fermion";
}

/// A half (spin-projected) fermion: 2 spinor x 3 color components.
pub struct HalfFermionKind;
impl FieldKind for HalfFermionKind {
    const NCOMP: usize = 6;
    const NAME: &'static str = "half spinor";
}

/// The gauge field: one SU(3) matrix (9 complex) per direction, 4
/// directions.
pub struct GaugeKind;
impl FieldKind for GaugeKind {
    const NCOMP: usize = 36;
    const NAME: &'static str = "SU(3) gauge links";
}

/// Component index of spinor component (`spin`, `color`).
pub fn spinor_comp(spin: usize, color: usize) -> usize {
    spin * 3 + color
}

/// Component index of gauge-link entry (`mu`, `row`, `col`).
pub fn gauge_comp(mu: usize, row: usize, col: usize) -> usize {
    mu * 9 + row * 3 + col
}

/// A lattice field of kind `K`.
pub struct Field<K: FieldKind, E: SveFloat = f64> {
    grid: Arc<Grid<E>>,
    data: Vec<E>,
    _k: PhantomData<K>,
}

/// A complex scalar field.
pub type ComplexField = Field<ScalarKind>;
/// A quark (spin-color) field.
pub type FermionField = Field<FermionKind>;
/// A spin-projected half fermion field.
pub type HalfFermionField = Field<HalfFermionKind>;
/// The SU(3) gauge configuration.
pub type GaugeField = Field<GaugeKind>;

impl<K: FieldKind, E: SveFloat> Clone for Field<K, E> {
    fn clone(&self) -> Self {
        Field {
            grid: self.grid.clone(),
            data: self.data.clone(),
            _k: PhantomData,
        }
    }
}

impl<K: FieldKind, E: SveFloat> Field<K, E> {
    /// A zero field on `grid`.
    pub fn zero(grid: Arc<Grid<E>>) -> Self {
        let word = grid.engine().word_len();
        let data = vec![E::zero(); grid.osites() * K::NCOMP * word];
        Field {
            grid,
            data,
            _k: PhantomData,
        }
    }

    /// A field filled with layout-independent uniform noise in `[-1,1)`
    /// (same physical content for every vector length).
    pub fn random(grid: Arc<Grid<E>>, seed: u64) -> Self {
        let mut f = Self::zero(grid.clone());
        for x in grid.coords() {
            let gidx = grid.global_index(&x);
            for comp in 0..K::NCOMP {
                f.poke(
                    &x,
                    comp,
                    Complex::new(
                        uniform(seed, stream_id(gidx, comp, 0)),
                        uniform(seed, stream_id(gidx, comp, 1)),
                    ),
                );
            }
        }
        f
    }

    /// The lattice this field lives on.
    pub fn grid(&self) -> &Arc<Grid<E>> {
        &self.grid
    }

    /// Scalars per site = `NCOMP * 2 * lanes_c`.
    pub fn site_stride(&self) -> usize {
        K::NCOMP * self.grid.engine().word_len()
    }

    /// One component's SIMD word at an outer site.
    #[inline]
    pub fn word(&self, osite: usize, comp: usize) -> &[E] {
        let w = self.grid.engine().word_len();
        let off = (osite * K::NCOMP + comp) * w;
        &self.data[off..off + w]
    }

    /// Mutable SIMD word.
    #[inline]
    pub fn word_mut(&mut self, osite: usize, comp: usize) -> &mut [E] {
        let w = self.grid.engine().word_len();
        let off = (osite * K::NCOMP + comp) * w;
        &mut self.data[off..off + w]
    }

    /// Raw storage (site-major, component, interleaved lanes).
    pub fn data(&self) -> &[E] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn data_mut(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// Read component `comp` at global coordinate `x` (scalar path).
    pub fn peek(&self, x: &Coor, comp: usize) -> Complex {
        let (osite, lane) = self.grid.coor_to_osite_lane(x);
        let w = self.word(osite, comp);
        Complex::new(w[2 * lane].to_f64(), w[2 * lane + 1].to_f64())
    }

    /// Write component `comp` at global coordinate `x` (scalar path).
    pub fn poke(&mut self, x: &Coor, comp: usize, z: Complex) {
        let (osite, lane) = self.grid.coor_to_osite_lane(x);
        let w = self.word_mut(osite, comp);
        w[2 * lane] = E::from_f64(z.re);
        w[2 * lane + 1] = E::from_f64(z.im);
    }

    fn assert_compatible(&self, other: &Field<K, E>) {
        assert!(
            Arc::ptr_eq(&self.grid, &other.grid),
            "fields live on different grids"
        );
    }

    /// Scalars per parallel work unit / reduction chunk.
    #[inline]
    fn chunk_scalars(&self) -> usize {
        reduce::CHUNK_SITES * K::NCOMP * self.grid.engine().word_len()
    }

    /// Map every word of `self` through `f` in place, in parallel.
    fn map_words0(&mut self, f: impl Fn(&SimdEngine<E>, CVec) -> CVec + Sync) {
        let cs = self.chunk_scalars();
        let Field { grid, data, .. } = self;
        let eng = grid.engine();
        let w = eng.word_len();
        data.par_chunks_mut(cs).for_each(|chunk| {
            for sw in chunk.chunks_exact_mut(w) {
                let sv = eng.load(sw);
                eng.store(sw, f(eng, sv));
            }
        });
    }

    /// Map every word of `self` through `f(self_word, x_word)` in place, in
    /// parallel.
    fn map_words1(
        &mut self,
        x: &Field<K, E>,
        f: impl Fn(&SimdEngine<E>, CVec, CVec) -> CVec + Sync,
    ) {
        self.assert_compatible(x);
        let cs = self.chunk_scalars();
        let Field { grid, data, .. } = self;
        let eng = grid.engine();
        let w = eng.word_len();
        let xd = x.data();
        data.par_chunks_mut(cs).enumerate().for_each(|(ci, chunk)| {
            let base = ci * cs;
            for (j, sw) in chunk.chunks_exact_mut(w).enumerate() {
                let off = base + j * w;
                let sv = eng.load(sw);
                let xv = eng.load(&xd[off..off + w]);
                eng.store(sw, f(eng, sv, xv));
            }
        });
    }

    /// Overwrite every word of `self` with `f(x_word, y_word)`, in parallel.
    fn map_words2(
        &mut self,
        x: &Field<K, E>,
        y: &Field<K, E>,
        f: impl Fn(&SimdEngine<E>, CVec, CVec) -> CVec + Sync,
    ) {
        self.assert_compatible(x);
        self.assert_compatible(y);
        let cs = self.chunk_scalars();
        let Field { grid, data, .. } = self;
        let eng = grid.engine();
        let w = eng.word_len();
        let xd = x.data();
        let yd = y.data();
        data.par_chunks_mut(cs).enumerate().for_each(|(ci, chunk)| {
            let base = ci * cs;
            for (j, sw) in chunk.chunks_exact_mut(w).enumerate() {
                let off = base + j * w;
                let xv = eng.load(&xd[off..off + w]);
                let yv = eng.load(&yd[off..off + w]);
                eng.store(sw, f(eng, xv, yv));
            }
        });
    }

    /// Deterministic chunked tree reduction over this field's chunks.
    /// `leaf(chunk_index, chunk)` must accumulate in ascending word order so
    /// the serial and parallel paths agree bit-for-bit.
    fn chunk_reduce<R: Copy + Send>(
        &self,
        leaf: impl Fn(usize, &[E]) -> R + Sync,
        combine: impl Fn(R, R) -> R + Sync,
    ) -> R {
        let cs = self.chunk_scalars();
        let n = reduce::n_chunks(self.data.len(), cs);
        if rayon::current_num_threads() <= 1 || n <= 1 {
            let mut lf = |ci: usize| {
                let lo = ci * cs;
                let hi = (lo + cs).min(self.data.len());
                leaf(ci, &self.data[lo..hi])
            };
            reduce::reduce_serial(n, &mut lf, &combine)
        } else {
            let leaves: Vec<R> = self
                .data
                .par_chunks(cs)
                .enumerate()
                .map(|(ci, c)| leaf(ci, c))
                .collect();
            reduce::combine_tree(&leaves, &combine)
        }
    }

    /// As [`Self::chunk_reduce`], but the leaf also mutates its chunk (the
    /// fused update+reduce kernels).
    fn chunk_reduce_mut<R: Copy + Send>(
        &mut self,
        leaf: impl Fn(usize, &mut [E]) -> R + Sync,
        combine: impl Fn(R, R) -> R + Sync,
    ) -> R {
        let cs = self.chunk_scalars();
        let len = self.data.len();
        let n = reduce::n_chunks(len, cs);
        let data = &mut self.data;
        if rayon::current_num_threads() <= 1 || n <= 1 {
            let mut lf = |ci: usize| {
                let lo = ci * cs;
                let hi = (lo + cs).min(len);
                leaf(ci, &mut data[lo..hi])
            };
            reduce::reduce_serial(n, &mut lf, &combine)
        } else {
            let leaves: Vec<R> = data
                .par_chunks_mut(cs)
                .enumerate()
                .map(|(ci, c)| leaf(ci, c))
                .collect();
            reduce::combine_tree(&leaves, &combine)
        }
    }

    /// `self = a * x + y` lane-wise (one fused `fmla` per word).
    pub fn axpy(&mut self, a: f64, x: &Field<K, E>, y: &Field<K, E>) {
        let a_dup = self.grid.engine().dup_real(a);
        self.map_words2(x, y, move |eng, xv, yv| eng.axpy_word(a_dup, xv, yv));
    }

    /// `self += a * x`.
    pub fn axpy_inplace(&mut self, a: f64, x: &Field<K, E>) {
        let a_dup = self.grid.engine().dup_real(a);
        self.map_words1(x, move |eng, sv, xv| eng.axpy_word(a_dup, xv, sv));
    }

    /// `self = x + a * self` (the CG search-direction update).
    pub fn aypx(&mut self, a: f64, x: &Field<K, E>) {
        let a_dup = self.grid.engine().dup_real(a);
        self.map_words1(x, move |eng, sv, xv| eng.axpy_word(a_dup, sv, xv));
    }

    /// `self *= a` (real scale).
    pub fn scale(&mut self, a: f64) {
        let a_dup = self.grid.engine().dup_real(a);
        self.map_words0(move |eng, sv| eng.scale(a_dup, sv));
    }

    /// `self = x - y`.
    pub fn sub(&mut self, x: &Field<K, E>, y: &Field<K, E>) {
        self.map_words2(x, y, |eng, xv, yv| eng.sub(xv, yv));
    }

    /// `self = a * x + c * y` (two-term real linear combination, computed
    /// as `mul` then `fmla` — the exact op sequence of `scale` + `axpy`).
    pub fn scale_axpy_from(&mut self, a: f64, x: &Field<K, E>, c: f64, y: &Field<K, E>) {
        let eng = self.grid.engine();
        let a_dup = eng.dup_real(a);
        let c_dup = eng.dup_real(c);
        self.map_words2(x, y, move |eng, xv, yv| {
            eng.axpy_word(c_dup, yv, eng.scale(a_dup, xv))
        });
    }

    /// `self += a * x` with a complex scalar `a` (splat + complex FMA).
    pub fn axpy_complex(&mut self, a: Complex, x: &Field<K, E>) {
        let a_splat = self.grid.engine().splat(a);
        self.map_words1(x, move |eng, sv, xv| eng.madd(sv, a_splat, xv));
    }

    /// `self *= a` with a complex scalar `a`.
    pub fn scale_complex(&mut self, a: Complex) {
        let a_splat = self.grid.engine().splat(a);
        self.map_words0(move |eng, sv| eng.mult(a_splat, sv));
    }

    /// `self += x`.
    pub fn add_assign_field(&mut self, x: &Field<K, E>) {
        self.map_words1(x, |eng, sv, xv| eng.add(sv, xv));
    }

    /// `self = y + a * x` with complex `a` — one sweep instead of
    /// `clone` + `axpy_complex`.
    pub fn caxpy_from(&mut self, a: Complex, x: &Field<K, E>, y: &Field<K, E>) {
        let a_splat = self.grid.engine().splat(a);
        self.map_words2(x, y, move |eng, xv, yv| eng.madd(yv, a_splat, xv));
    }

    /// `self += a * x + b * y` with complex scalars — one sweep instead of
    /// two `axpy_complex` calls, same op sequence per word.
    pub fn caxpy2(&mut self, a: Complex, x: &Field<K, E>, b: Complex, y: &Field<K, E>) {
        self.assert_compatible(x);
        self.assert_compatible(y);
        let cs = self.chunk_scalars();
        let Field { grid, data, .. } = self;
        let eng = grid.engine();
        let w = eng.word_len();
        let a_splat = eng.splat(a);
        let b_splat = eng.splat(b);
        let xd = x.data();
        let yd = y.data();
        data.par_chunks_mut(cs).enumerate().for_each(|(ci, chunk)| {
            let base = ci * cs;
            for (j, sw) in chunk.chunks_exact_mut(w).enumerate() {
                let off = base + j * w;
                let sv = eng.load(sw);
                let xv = eng.load(&xd[off..off + w]);
                let yv = eng.load(&yd[off..off + w]);
                let t = eng.madd(sv, a_splat, xv);
                eng.store(sw, eng.madd(t, b_splat, yv));
            }
        });
    }

    /// The BiCGStab search-direction update `self = r + beta * (self -
    /// omega * v)`, fused into one sweep. Per word this performs the exact
    /// op sequence of `axpy_complex(-omega, v)` + `scale_complex(beta)` +
    /// `add_assign_field(r)`.
    pub fn bicg_p_update(
        &mut self,
        beta: Complex,
        omega: Complex,
        v: &Field<K, E>,
        r: &Field<K, E>,
    ) {
        self.assert_compatible(v);
        self.assert_compatible(r);
        let cs = self.chunk_scalars();
        let Field { grid, data, .. } = self;
        let eng = grid.engine();
        let w = eng.word_len();
        let no_splat = eng.splat(-omega);
        let b_splat = eng.splat(beta);
        let vd = v.data();
        let rd = r.data();
        data.par_chunks_mut(cs).enumerate().for_each(|(ci, chunk)| {
            let base = ci * cs;
            for (j, sw) in chunk.chunks_exact_mut(w).enumerate() {
                let off = base + j * w;
                let sv = eng.load(sw);
                let vv = eng.load(&vd[off..off + w]);
                let rv = eng.load(&rd[off..off + w]);
                let t = eng.madd(sv, no_splat, vv);
                let t = eng.mult(b_splat, t);
                eng.store(sw, eng.add(t, rv));
            }
        });
    }

    /// Global inner product `<self, other> = Σ conj(self) · other`
    /// (vectorized conjugate-FMA accumulation, one chunk-tree reduction).
    pub fn inner(&self, other: &Field<K, E>) -> Complex {
        self.assert_compatible(other);
        let cs = self.chunk_scalars();
        let eng = other.grid.engine();
        let w = eng.word_len();
        let od = other.data();
        self.chunk_reduce(
            |ci, chunk| {
                let base = ci * cs;
                let mut acc: CVec = eng.zero();
                for (j, aw) in chunk.chunks_exact(w).enumerate() {
                    let off = base + j * w;
                    let a = eng.load(aw);
                    let b = eng.load(&od[off..off + w]);
                    acc = eng.madd_conj(acc, a, b);
                }
                eng.reduce_sum(acc)
            },
            |a, b| a + b,
        )
    }

    /// Global squared norm `|self|^2` (always real, computed as a real
    /// lane-square accumulation with the deterministic chunk tree).
    pub fn norm2(&self) -> f64 {
        let eng = self.grid.engine();
        let w = eng.word_len();
        self.chunk_reduce(
            |_, chunk| {
                let mut t = 0.0;
                for aw in chunk.chunks_exact(w) {
                    t += eng.norm2(eng.load(aw));
                }
                t
            },
            |a, b| a + b,
        )
    }

    /// Scatter the per-site scalar `Σ_comp |f(x)|²` into `out` in **global
    /// lexicographic site order** (`out.len() == volume`). The order depends
    /// only on the lattice extents — never on the SIMD layout or the worker
    /// count — so [`reduce::canonical_sum`] over `out` returns the same bits
    /// at every vector length and thread count. This is the single-process
    /// form of the canonical scalars `dist_cg` reduces over ranks, and the
    /// primitive the `qcd-deflate` eigensolver builds its VL-invariant
    /// recurrences on.
    pub fn site_norm2_lex(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.grid.volume(), "scatter buffer != volume");
        let grid = &self.grid;
        let fdims = grid.fdims();
        out.par_chunks_mut(reduce::CHUNK_SITES)
            .enumerate()
            .for_each(|(ci, chunk)| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    let x = crate::layout::delex(ci * reduce::CHUNK_SITES + k, &fdims);
                    let (osite, lane) = grid.coor_to_osite_lane(&x);
                    let li = 2 * lane;
                    let mut s = 0.0;
                    for comp in 0..K::NCOMP {
                        let w = self.word(osite, comp);
                        let (re, im) = (w[li].to_f64(), w[li + 1].to_f64());
                        s += re * re + im * im;
                    }
                    *slot = s;
                }
            });
    }

    /// Scatter the per-site scalar `Re Σ_comp conj(self)·other` into `out`
    /// in global lexicographic site order (see [`Self::site_norm2_lex`]).
    pub fn site_inner_re_lex(&self, other: &Field<K, E>, out: &mut [f64]) {
        self.assert_compatible(other);
        assert_eq!(out.len(), self.grid.volume(), "scatter buffer != volume");
        let grid = &self.grid;
        let fdims = grid.fdims();
        out.par_chunks_mut(reduce::CHUNK_SITES)
            .enumerate()
            .for_each(|(ci, chunk)| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    let x = crate::layout::delex(ci * reduce::CHUNK_SITES + k, &fdims);
                    let (osite, lane) = grid.coor_to_osite_lane(&x);
                    let li = 2 * lane;
                    let mut s = 0.0;
                    for comp in 0..K::NCOMP {
                        let a = self.word(osite, comp);
                        let b = other.word(osite, comp);
                        s += a[li].to_f64() * b[li].to_f64()
                            + a[li + 1].to_f64() * b[li + 1].to_f64();
                    }
                    *slot = s;
                }
            });
    }

    /// Scatter the per-site complex `Σ_comp conj(self)·other` into
    /// `(out_re, out_im)` in global lexicographic site order.
    pub fn site_inner_lex(&self, other: &Field<K, E>, out_re: &mut [f64], out_im: &mut [f64]) {
        self.assert_compatible(other);
        assert_eq!(out_re.len(), self.grid.volume(), "scatter buffer != volume");
        assert_eq!(out_im.len(), self.grid.volume(), "scatter buffer != volume");
        let grid = &self.grid;
        let fdims = grid.fdims();
        out_re
            .par_chunks_mut(reduce::CHUNK_SITES)
            .zip(out_im.par_chunks_mut(reduce::CHUNK_SITES))
            .enumerate()
            .for_each(|(ci, (cre, cim))| {
                for (k, (sre, sim)) in cre.iter_mut().zip(cim.iter_mut()).enumerate() {
                    let x = crate::layout::delex(ci * reduce::CHUNK_SITES + k, &fdims);
                    let (osite, lane) = grid.coor_to_osite_lane(&x);
                    let li = 2 * lane;
                    let (mut re, mut im) = (0.0, 0.0);
                    for comp in 0..K::NCOMP {
                        let a = self.word(osite, comp);
                        let b = other.word(osite, comp);
                        let (ar, ai) = (a[li].to_f64(), a[li + 1].to_f64());
                        let (br, bi) = (b[li].to_f64(), b[li + 1].to_f64());
                        re += ar * br + ai * bi;
                        im += ar * bi - ai * br;
                    }
                    *sre = re;
                    *sim = im;
                }
            });
    }

    /// `|self|²` via the canonical (layout-independent) reduction: same bits
    /// at every vector length and thread count. Allocates a per-site scatter
    /// buffer; hot loops should hold one and call [`Self::site_norm2_lex`] +
    /// [`reduce::canonical_sum`] directly.
    pub fn canonical_norm2(&self) -> f64 {
        let mut buf = vec![0.0; self.grid.volume()];
        self.site_norm2_lex(&mut buf);
        reduce::canonical_sum(&buf)
    }

    /// `Re ⟨self, other⟩` via the canonical reduction.
    pub fn canonical_inner_re(&self, other: &Field<K, E>) -> f64 {
        let mut buf = vec![0.0; self.grid.volume()];
        self.site_inner_re_lex(other, &mut buf);
        reduce::canonical_sum(&buf)
    }

    /// `⟨self, other⟩` via the canonical reduction.
    pub fn canonical_inner(&self, other: &Field<K, E>) -> Complex {
        let mut re = vec![0.0; self.grid.volume()];
        let mut im = vec![0.0; self.grid.volume()];
        self.site_inner_lex(other, &mut re, &mut im);
        Complex::new(reduce::canonical_sum(&re), reduce::canonical_sum(&im))
    }

    /// Fused `self += a * x; |self|^2` in one sweep. Bit-identical to the
    /// unfused pair: the norm accumulates the freshly computed words in the
    /// same chunk order [`Self::norm2`] would read them back.
    pub fn axpy_norm2(&mut self, a: f64, x: &Field<K, E>) -> f64 {
        self.assert_compatible(x);
        let cs = self.chunk_scalars();
        let eng = x.grid.engine();
        let w = eng.word_len();
        let a_dup = eng.dup_real(a);
        let xd = x.data();
        self.chunk_reduce_mut(
            |ci, chunk| {
                let base = ci * cs;
                let mut t = 0.0;
                for (j, sw) in chunk.chunks_exact_mut(w).enumerate() {
                    let off = base + j * w;
                    let sv = eng.load(sw);
                    let xv = eng.load(&xd[off..off + w]);
                    let r = eng.axpy_word(a_dup, xv, sv);
                    eng.store(sw, r);
                    t += eng.norm2(r);
                }
                t
            },
            |a, b| a + b,
        )
    }

    /// Fused `self += a * x; |self|^2` with complex `a`, one sweep.
    pub fn caxpy_norm2(&mut self, a: Complex, x: &Field<K, E>) -> f64 {
        self.assert_compatible(x);
        let cs = self.chunk_scalars();
        let eng = x.grid.engine();
        let w = eng.word_len();
        let a_splat = eng.splat(a);
        let xd = x.data();
        self.chunk_reduce_mut(
            |ci, chunk| {
                let base = ci * cs;
                let mut t = 0.0;
                for (j, sw) in chunk.chunks_exact_mut(w).enumerate() {
                    let off = base + j * w;
                    let sv = eng.load(sw);
                    let xv = eng.load(&xd[off..off + w]);
                    let r = eng.madd(sv, a_splat, xv);
                    eng.store(sw, r);
                    t += eng.norm2(r);
                }
                t
            },
            |a, b| a + b,
        )
    }

    /// Fused `self = x - y; |self|^2` in one sweep (true-residual check).
    pub fn sub_norm2(&mut self, x: &Field<K, E>, y: &Field<K, E>) -> f64 {
        self.assert_compatible(x);
        self.assert_compatible(y);
        let cs = self.chunk_scalars();
        let eng = x.grid.engine();
        let w = eng.word_len();
        let xd = x.data();
        let yd = y.data();
        self.chunk_reduce_mut(
            |ci, chunk| {
                let base = ci * cs;
                let mut t = 0.0;
                for (j, sw) in chunk.chunks_exact_mut(w).enumerate() {
                    let off = base + j * w;
                    let xv = eng.load(&xd[off..off + w]);
                    let yv = eng.load(&yd[off..off + w]);
                    let r = eng.sub(xv, yv);
                    eng.store(sw, r);
                    t += eng.norm2(r);
                }
                t
            },
            |a, b| a + b,
        )
    }

    /// Maximum absolute difference to another field (test metric).
    pub fn max_abs_diff(&self, other: &Field<K, E>) -> f64 {
        self.assert_compatible(other);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }
}

/// The fused CG iterate/residual update: `x += alpha * p`, `r -= alpha *
/// ap`, returning the new `|r|^2` — one zipped sweep over `x`/`r` instead of
/// two axpys plus a separate norm. Bit-identical to the unfused sequence
/// (`axpy_inplace(alpha, p)`, `axpy_inplace(-alpha, ap)`, `norm2()`): every
/// word sees the same engine ops, and the norm accumulates per reduction
/// chunk in the order `norm2` would.
pub fn cg_update_x_r<K: FieldKind, E: SveFloat>(
    x: &mut Field<K, E>,
    r: &mut Field<K, E>,
    alpha: f64,
    p: &Field<K, E>,
    ap: &Field<K, E>,
) -> f64 {
    x.assert_compatible(r);
    x.assert_compatible(p);
    x.assert_compatible(ap);
    let cs = x.chunk_scalars();
    let eng = p.grid.engine();
    let w = eng.word_len();
    let a_dup = eng.dup_real(alpha);
    let na_dup = eng.dup_real(-alpha);
    let pd = p.data();
    let apd = ap.data();
    let xd = x.data.as_mut_slice();
    let rd = r.data.as_mut_slice();
    let len = xd.len();
    let kernel = |ci: usize, xc: &mut [E], rc: &mut [E]| -> f64 {
        let base = ci * cs;
        let mut t = 0.0;
        for (j, (xw, rw)) in xc
            .chunks_exact_mut(w)
            .zip(rc.chunks_exact_mut(w))
            .enumerate()
        {
            let off = base + j * w;
            let pv = eng.load(&pd[off..off + w]);
            let apv = eng.load(&apd[off..off + w]);
            let xv = eng.load(xw);
            eng.store(xw, eng.axpy_word(a_dup, pv, xv));
            let rv = eng.load(rw);
            let rn = eng.axpy_word(na_dup, apv, rv);
            eng.store(rw, rn);
            t += eng.norm2(rn);
        }
        t
    };
    let n = reduce::n_chunks(len, cs);
    if rayon::current_num_threads() <= 1 || n <= 1 {
        let mut lf = |ci: usize| {
            let lo = ci * cs;
            let hi = (lo + cs).min(len);
            kernel(ci, &mut xd[lo..hi], &mut rd[lo..hi])
        };
        reduce::reduce_serial(n, &mut lf, &|a, b| a + b)
    } else {
        let leaves: Vec<f64> = xd
            .par_chunks_mut(cs)
            .zip(rd.par_chunks_mut(cs))
            .enumerate()
            .map(|(ci, (xc, rc))| kernel(ci, xc, rc))
            .collect();
        reduce::combine_tree(&leaves, &|a, b| a + b)
    }
}

/// A batch of `N` right-hand-side fermion fields stored **site-major**: at
/// every outer site the `N` spinors are contiguous (site, rhs, component,
/// lanes), so the dslash loads each gauge link and projector table once per
/// site and applies them to all `N` spinors while they are hot.
///
/// The layout is the multi-RHS trick of Grid-on-A64FX: arithmetic intensity
/// of the hopping term grows from `1320 / (192N + 144)·N⁻¹` flops per read
/// toward the link-free limit as `N` grows, because the `8 × 18` link reals
/// per site are amortized over the batch.
///
/// Every per-RHS quantity (norms, inner products, CG recurrences) is
/// computed with the same fixed-chunk tree reductions as [`Field`] — chunks
/// cover [`reduce::CHUNK_SITES`] outer sites, so the chunk *count* and the
/// per-RHS accumulation order are identical to a single-RHS field on the
/// same grid. A block with `N = 1` is therefore bit-identical to the
/// single-RHS path, and per-RHS results at any `N` match `N` independent
/// single-RHS computations bit for bit.
pub struct FermionBlock<E: SveFloat = f64> {
    grid: Arc<Grid<E>>,
    nrhs: usize,
    data: Vec<E>,
}

impl<E: SveFloat> Clone for FermionBlock<E> {
    fn clone(&self) -> Self {
        FermionBlock {
            grid: self.grid.clone(),
            nrhs: self.nrhs,
            data: self.data.clone(),
        }
    }
}

impl<E: SveFloat> FermionBlock<E> {
    /// A zero block of `nrhs` right-hand sides on `grid`.
    pub fn zero(grid: Arc<Grid<E>>, nrhs: usize) -> Self {
        assert!(nrhs >= 1, "a fermion block needs at least one RHS");
        let word = grid.engine().word_len();
        let data = vec![E::zero(); grid.osites() * nrhs * FermionKind::NCOMP * word];
        FermionBlock { grid, nrhs, data }
    }

    /// Gather `fields` into one site-major block (RHS `i` = `fields[i]`).
    pub fn from_fields(fields: &[Field<FermionKind, E>]) -> Self {
        assert!(!fields.is_empty(), "a fermion block needs at least one RHS");
        let grid = fields[0].grid().clone();
        let mut block = Self::zero(grid, fields.len());
        for (i, f) in fields.iter().enumerate() {
            block.set_rhs(i, f);
        }
        block
    }

    /// The lattice this block lives on.
    pub fn grid(&self) -> &Arc<Grid<E>> {
        &self.grid
    }

    /// Number of right-hand sides in the batch.
    pub fn nrhs(&self) -> usize {
        self.nrhs
    }

    /// Scalars per outer site = `nrhs * 12 * 2 * lanes_c`.
    pub fn site_stride(&self) -> usize {
        self.nrhs * FermionKind::NCOMP * self.grid.engine().word_len()
    }

    /// One component word of one RHS at an outer site.
    #[inline]
    pub fn word(&self, osite: usize, rhs: usize, comp: usize) -> &[E] {
        let w = self.grid.engine().word_len();
        let off = ((osite * self.nrhs + rhs) * FermionKind::NCOMP + comp) * w;
        &self.data[off..off + w]
    }

    /// Mutable component word of one RHS at an outer site.
    #[inline]
    pub fn word_mut(&mut self, osite: usize, rhs: usize, comp: usize) -> &mut [E] {
        let w = self.grid.engine().word_len();
        let off = ((osite * self.nrhs + rhs) * FermionKind::NCOMP + comp) * w;
        &mut self.data[off..off + w]
    }

    /// Raw storage (site, rhs, component, interleaved lanes).
    pub fn data(&self) -> &[E] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn data_mut(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// Overwrite RHS `i` with a field's content (bit-exact copy).
    pub fn set_rhs(&mut self, i: usize, f: &Field<FermionKind, E>) {
        assert!(
            Arc::ptr_eq(&self.grid, f.grid()),
            "fields live on different grids"
        );
        assert!(i < self.nrhs, "RHS index out of range");
        let w = self.grid.engine().word_len();
        for osite in 0..self.grid.osites() {
            for comp in 0..FermionKind::NCOMP {
                self.word_mut(osite, i, comp)
                    .copy_from_slice(&f.data()[(osite * FermionKind::NCOMP + comp) * w..][..w]);
            }
        }
    }

    /// Extract RHS `i` into a freshly allocated field (bit-exact copy).
    pub fn rhs_field(&self, i: usize) -> Field<FermionKind, E> {
        let mut f = Field::<FermionKind, E>::zero(self.grid.clone());
        self.copy_rhs_into(i, &mut f);
        f
    }

    /// Copy RHS `i` into an existing field (bit-exact).
    pub fn copy_rhs_into(&self, i: usize, out: &mut Field<FermionKind, E>) {
        assert!(
            Arc::ptr_eq(&self.grid, out.grid()),
            "fields live on different grids"
        );
        assert!(i < self.nrhs, "RHS index out of range");
        let w = self.grid.engine().word_len();
        for osite in 0..self.grid.osites() {
            for comp in 0..FermionKind::NCOMP {
                out.data_mut()[(osite * FermionKind::NCOMP + comp) * w..][..w]
                    .copy_from_slice(self.word(osite, i, comp));
            }
        }
    }

    fn assert_compatible(&self, other: &FermionBlock<E>) {
        assert!(
            Arc::ptr_eq(&self.grid, &other.grid),
            "blocks live on different grids"
        );
        assert_eq!(self.nrhs, other.nrhs, "blocks hold different batch sizes");
    }

    /// Scalars per parallel work unit / reduction chunk: the block chunk
    /// covers the same [`reduce::CHUNK_SITES`] outer sites as a [`Field`]
    /// chunk, so the reduction tree has the same shape.
    #[inline]
    fn chunk_scalars(&self) -> usize {
        reduce::CHUNK_SITES * self.nrhs * FermionKind::NCOMP * self.grid.engine().word_len()
    }

    /// `self *= a` (real scale, uniform across the batch) — per word the
    /// exact op of [`Field::scale`].
    pub fn scale(&mut self, a: f64) {
        let cs = self.chunk_scalars();
        let eng = self.grid.engine();
        let w = eng.word_len();
        let a_dup = eng.dup_real(a);
        self.data.par_chunks_mut(cs).for_each(|chunk| {
            for sw in chunk.chunks_exact_mut(w) {
                let sv = eng.load(sw);
                eng.store(sw, eng.scale(a_dup, sv));
            }
        });
    }

    /// `self += a * x` (uniform across the batch) — per word the exact op of
    /// [`Field::axpy_inplace`].
    pub fn axpy_inplace(&mut self, a: f64, x: &FermionBlock<E>) {
        self.assert_compatible(x);
        let cs = self.chunk_scalars();
        let eng = self.grid.engine();
        let w = eng.word_len();
        let a_dup = eng.dup_real(a);
        let xd = x.data();
        self.data
            .par_chunks_mut(cs)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let base = ci * cs;
                for (j, sw) in chunk.chunks_exact_mut(w).enumerate() {
                    let off = base + j * w;
                    let sv = eng.load(sw);
                    let xv = eng.load(&xd[off..off + w]);
                    eng.store(sw, eng.axpy_word(a_dup, xv, sv));
                }
            });
    }

    /// `self = a * x + c * y` (uniform) — per word the exact op sequence of
    /// [`Field::scale_axpy_from`].
    pub fn scale_axpy_from(&mut self, a: f64, x: &FermionBlock<E>, c: f64, y: &FermionBlock<E>) {
        self.assert_compatible(x);
        self.assert_compatible(y);
        let cs = self.chunk_scalars();
        let eng = self.grid.engine();
        let w = eng.word_len();
        let a_dup = eng.dup_real(a);
        let c_dup = eng.dup_real(c);
        let xd = x.data();
        let yd = y.data();
        self.data
            .par_chunks_mut(cs)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let base = ci * cs;
                for (j, sw) in chunk.chunks_exact_mut(w).enumerate() {
                    let off = base + j * w;
                    let xv = eng.load(&xd[off..off + w]);
                    let yv = eng.load(&yd[off..off + w]);
                    eng.store(sw, eng.axpy_word(c_dup, yv, eng.scale(a_dup, xv)));
                }
            });
    }

    /// Per-RHS search-direction update `self_j = x_j + a[j] * self_j`,
    /// skipping inactive RHS entirely (their words are not even loaded).
    /// For an active RHS this is per word the exact op of [`Field::aypx`].
    pub fn aypx_masked(&mut self, a: &[f64], x: &FermionBlock<E>, active: &[bool]) {
        self.assert_compatible(x);
        assert_eq!(a.len(), self.nrhs);
        assert_eq!(active.len(), self.nrhs);
        let cs = self.chunk_scalars();
        let nrhs = self.nrhs;
        let eng = self.grid.engine();
        let w = eng.word_len();
        let a_dups: Vec<CVec> = a.iter().map(|&v| eng.dup_real(v)).collect();
        let xd = x.data();
        self.data
            .par_chunks_mut(cs)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let base = ci * cs;
                for (j, sw) in chunk.chunks_exact_mut(w).enumerate() {
                    let rhs = (j / FermionKind::NCOMP) % nrhs;
                    if !active[rhs] {
                        continue;
                    }
                    let off = base + j * w;
                    let sv = eng.load(sw);
                    let xv = eng.load(&xd[off..off + w]);
                    eng.store(sw, eng.axpy_word(a_dups[rhs], sv, xv));
                }
            });
    }

    /// Deterministic chunked tree reduction producing one partial *vector*
    /// (one entry per RHS) per chunk. Within a chunk the leaf walks words in
    /// storage order (site, rhs, component), so each RHS accumulates its
    /// values in exactly the order the corresponding [`Field`] reduction
    /// would; the partials combine element-wise through
    /// [`reduce::combine_tree_ref`], whose tree shape matches
    /// [`reduce::combine_tree`] — per-RHS results are bit-identical to `N`
    /// independent single-RHS reductions.
    fn chunk_reduce_vec<R: Clone + Send + Sync>(
        &self,
        leaf: impl Fn(usize, &[E]) -> Vec<R> + Sync,
        combine: impl Fn(&R, &R) -> R + Sync,
    ) -> Vec<R> {
        let cs = self.chunk_scalars();
        let n = reduce::n_chunks(self.data.len(), cs);
        let combine_vec = |a: &Vec<R>, b: &Vec<R>| -> Vec<R> {
            a.iter().zip(b.iter()).map(|(x, y)| combine(x, y)).collect()
        };
        if rayon::current_num_threads() <= 1 || n <= 1 {
            let mut lf = |ci: usize| {
                let lo = ci * cs;
                let hi = (lo + cs).min(self.data.len());
                leaf(ci, &self.data[lo..hi])
            };
            reduce::reduce_serial(n, &mut lf, &|a, b| combine_vec(&a, &b))
        } else {
            let leaves: Vec<Vec<R>> = self
                .data
                .par_chunks(cs)
                .enumerate()
                .map(|(ci, c)| leaf(ci, c))
                .collect();
            reduce::combine_tree_ref(&leaves, &combine_vec)
        }
    }

    /// Per-RHS squared norms, bit-identical to calling [`Field::norm2`] on
    /// each extracted RHS.
    pub fn norms2(&self) -> Vec<f64> {
        let eng = self.grid.engine();
        let w = eng.word_len();
        let nrhs = self.nrhs;
        self.chunk_reduce_vec(
            |_, chunk| {
                let mut t = vec![0.0; nrhs];
                for (j, aw) in chunk.chunks_exact(w).enumerate() {
                    t[(j / FermionKind::NCOMP) % nrhs] += eng.norm2(eng.load(aw));
                }
                t
            },
            |a, b| a + b,
        )
    }

    /// Per-RHS inner products `⟨self_j, other_j⟩`, bit-identical to
    /// [`Field::inner`] per extracted RHS (same conjugate-FMA word
    /// accumulation, one `reduce_sum` per chunk per RHS, same chunk tree).
    pub fn inners(&self, other: &FermionBlock<E>) -> Vec<Complex> {
        self.assert_compatible(other);
        let cs = self.chunk_scalars();
        let eng = self.grid.engine();
        let w = eng.word_len();
        let nrhs = self.nrhs;
        let od = other.data();
        self.chunk_reduce_vec(
            |ci, chunk| {
                let base = ci * cs;
                let mut acc: Vec<CVec> = vec![eng.zero(); nrhs];
                for (j, aw) in chunk.chunks_exact(w).enumerate() {
                    let off = base + j * w;
                    let a = eng.load(aw);
                    let b = eng.load(&od[off..off + w]);
                    let rhs = (j / FermionKind::NCOMP) % nrhs;
                    acc[rhs] = eng.madd_conj(acc[rhs], a, b);
                }
                acc.iter().map(|&a| eng.reduce_sum(a)).collect()
            },
            |a, b| *a + *b,
        )
    }

    /// Scatter per-site per-RHS `Σ_comp |·|²` into `out` in global
    /// lexicographic site order, RHS-major: `out[j * volume + lex(x)]` is
    /// RHS `j`'s contribution at site `x`. The per-site accumulation order
    /// (components ascending, `re² + im²`) matches [`Field::site_norm2_lex`]
    /// exactly, so per-RHS canonical sums are bit-identical to the extracted
    /// single-RHS field's — at every vector length, batch width, and thread
    /// count.
    pub fn site_norms2_lex(&self, out: &mut [f64]) {
        let vol = self.grid.volume();
        assert_eq!(
            out.len(),
            self.nrhs * vol,
            "scatter buffer != nrhs * volume"
        );
        let grid = &self.grid;
        let fdims = grid.fdims();
        for (rhs, row) in out.chunks_exact_mut(vol).enumerate() {
            row.par_chunks_mut(reduce::CHUNK_SITES)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        let x = crate::layout::delex(ci * reduce::CHUNK_SITES + k, &fdims);
                        let (osite, lane) = grid.coor_to_osite_lane(&x);
                        let li = 2 * lane;
                        let mut s = 0.0;
                        for comp in 0..FermionKind::NCOMP {
                            let w = self.word(osite, rhs, comp);
                            let (re, im) = (w[li].to_f64(), w[li + 1].to_f64());
                            s += re * re + im * im;
                        }
                        *slot = s;
                    }
                });
        }
    }

    /// Scatter per-site per-RHS `Re Σ_comp conj(self)·other` into `out`
    /// (RHS-major lexicographic, see [`Self::site_norms2_lex`]), matching
    /// [`Field::site_inner_re_lex`] per RHS bit for bit.
    pub fn site_inners_re_lex(&self, other: &FermionBlock<E>, out: &mut [f64]) {
        self.assert_compatible(other);
        let vol = self.grid.volume();
        assert_eq!(
            out.len(),
            self.nrhs * vol,
            "scatter buffer != nrhs * volume"
        );
        let grid = &self.grid;
        let fdims = grid.fdims();
        for (rhs, row) in out.chunks_exact_mut(vol).enumerate() {
            row.par_chunks_mut(reduce::CHUNK_SITES)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        let x = crate::layout::delex(ci * reduce::CHUNK_SITES + k, &fdims);
                        let (osite, lane) = grid.coor_to_osite_lane(&x);
                        let li = 2 * lane;
                        let mut s = 0.0;
                        for comp in 0..FermionKind::NCOMP {
                            let a = self.word(osite, rhs, comp);
                            let b = other.word(osite, rhs, comp);
                            s += a[li].to_f64() * b[li].to_f64()
                                + a[li + 1].to_f64() * b[li + 1].to_f64();
                        }
                        *slot = s;
                    }
                });
        }
    }

    /// Fused `self = x - y; per-RHS |self|²` in one sweep — the block form
    /// of [`Field::sub_norm2`], used for the batched true-residual check.
    pub fn sub_norms2(&mut self, x: &FermionBlock<E>, y: &FermionBlock<E>) -> Vec<f64> {
        self.assert_compatible(x);
        self.assert_compatible(y);
        let cs = self.chunk_scalars();
        let len = self.data.len();
        let n = reduce::n_chunks(len, cs);
        let eng = self.grid.engine();
        let w = eng.word_len();
        let nrhs = self.nrhs;
        let xd = x.data();
        let yd = y.data();
        let kernel = |ci: usize, chunk: &mut [E]| -> Vec<f64> {
            let base = ci * cs;
            let mut t = vec![0.0; nrhs];
            for (j, sw) in chunk.chunks_exact_mut(w).enumerate() {
                let off = base + j * w;
                let xv = eng.load(&xd[off..off + w]);
                let yv = eng.load(&yd[off..off + w]);
                let r = eng.sub(xv, yv);
                eng.store(sw, r);
                t[(j / FermionKind::NCOMP) % nrhs] += eng.norm2(r);
            }
            t
        };
        let combine = |a: &Vec<f64>, b: &Vec<f64>| -> Vec<f64> {
            a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
        };
        let data = &mut self.data;
        if rayon::current_num_threads() <= 1 || n <= 1 {
            let mut lf = |ci: usize| {
                let lo = ci * cs;
                let hi = (lo + cs).min(len);
                kernel(ci, &mut data[lo..hi])
            };
            reduce::reduce_serial(n, &mut lf, &|a, b| combine(&a, &b))
        } else {
            let leaves: Vec<Vec<f64>> = data
                .par_chunks_mut(cs)
                .enumerate()
                .map(|(ci, c)| kernel(ci, c))
                .collect();
            reduce::combine_tree_ref(&leaves, &combine)
        }
    }

    /// Maximum absolute difference to another block (test metric).
    pub fn max_abs_diff(&self, other: &FermionBlock<E>) -> f64 {
        self.assert_compatible(other);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }
}

/// The batched CG iterate/residual update: for every **active** RHS `j`,
/// `x_j += alpha[j] * p_j`, `r_j -= alpha[j] * ap_j`, returning the new
/// per-RHS `|r_j|²` — the block form of [`cg_update_x_r`]. Inactive RHS are
/// untouched (words not loaded, nothing accumulated; their result entry is
/// 0 and must be ignored). For an active RHS every word sees the exact op
/// sequence of [`cg_update_x_r`] and the norm accumulates in the same chunk
/// order and tree grouping, so per-RHS results match the single-RHS path
/// bit for bit.
pub fn block_cg_update_x_r<E: SveFloat>(
    x: &mut FermionBlock<E>,
    r: &mut FermionBlock<E>,
    alpha: &[f64],
    p: &FermionBlock<E>,
    ap: &FermionBlock<E>,
    active: &[bool],
) -> Vec<f64> {
    x.assert_compatible(r);
    x.assert_compatible(p);
    x.assert_compatible(ap);
    let nrhs = x.nrhs();
    assert_eq!(alpha.len(), nrhs);
    assert_eq!(active.len(), nrhs);
    let cs = x.chunk_scalars();
    let eng = p.grid.engine();
    let w = eng.word_len();
    let a_dups: Vec<CVec> = alpha.iter().map(|&a| eng.dup_real(a)).collect();
    let na_dups: Vec<CVec> = alpha.iter().map(|&a| eng.dup_real(-a)).collect();
    let pd = p.data();
    let apd = ap.data();
    let xd = x.data.as_mut_slice();
    let rd = r.data.as_mut_slice();
    let len = xd.len();
    let kernel = |ci: usize, xc: &mut [E], rc: &mut [E]| -> Vec<f64> {
        let base = ci * cs;
        let mut t = vec![0.0; nrhs];
        for (j, (xw, rw)) in xc
            .chunks_exact_mut(w)
            .zip(rc.chunks_exact_mut(w))
            .enumerate()
        {
            let rhs = (j / FermionKind::NCOMP) % nrhs;
            if !active[rhs] {
                continue;
            }
            let off = base + j * w;
            let pv = eng.load(&pd[off..off + w]);
            let apv = eng.load(&apd[off..off + w]);
            let xv = eng.load(xw);
            eng.store(xw, eng.axpy_word(a_dups[rhs], pv, xv));
            let rv = eng.load(rw);
            let rn = eng.axpy_word(na_dups[rhs], apv, rv);
            eng.store(rw, rn);
            t[rhs] += eng.norm2(rn);
        }
        t
    };
    let combine = |a: &Vec<f64>, b: &Vec<f64>| -> Vec<f64> {
        a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
    };
    let n = reduce::n_chunks(len, cs);
    if rayon::current_num_threads() <= 1 || n <= 1 {
        let mut lf = |ci: usize| {
            let lo = ci * cs;
            let hi = (lo + cs).min(len);
            kernel(ci, &mut xd[lo..hi], &mut rd[lo..hi])
        };
        reduce::reduce_serial(n, &mut lf, &|a, b| combine(&a, &b))
    } else {
        let leaves: Vec<Vec<f64>> = xd
            .par_chunks_mut(cs)
            .zip(rd.par_chunks_mut(cs))
            .enumerate()
            .map(|(ci, (xc, rc))| kernel(ci, xc, rc))
            .collect();
        reduce::combine_tree_ref(&leaves, &combine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::SimdBackend;
    use sve::VectorLength;

    fn grid() -> Arc<Grid> {
        Grid::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla)
    }

    #[test]
    fn zero_field_has_zero_norm() {
        let f = FermionField::zero(grid());
        assert_eq!(f.norm2(), 0.0);
    }

    #[test]
    fn peek_poke_round_trip() {
        let g = grid();
        let mut f = FermionField::zero(g.clone());
        let z = Complex::new(1.25, -0.5);
        f.poke(&[1, 2, 3, 0], spinor_comp(2, 1), z);
        assert_eq!(f.peek(&[1, 2, 3, 0], spinor_comp(2, 1)), z);
        // Other slots untouched.
        assert_eq!(f.peek(&[1, 2, 3, 0], spinor_comp(2, 2)), Complex::ZERO);
        assert_eq!(f.peek(&[0, 2, 3, 0], spinor_comp(2, 1)), Complex::ZERO);
        assert!((f.norm2() - z.norm2()).abs() < 1e-14);
    }

    #[test]
    fn random_field_is_layout_independent() {
        let a = FermionField::random(
            Grid::new([4, 4, 4, 4], VectorLength::of(128), SimdBackend::Fcmla),
            7,
        );
        let b = FermionField::random(
            Grid::new([4, 4, 4, 4], VectorLength::of(2048), SimdBackend::Fcmla),
            7,
        );
        for x in a.grid().coords() {
            for comp in 0..12 {
                assert_eq!(a.peek(&x, comp), b.peek(&x, comp), "{x:?} {comp}");
            }
        }
    }

    #[test]
    fn axpy_matches_scalar_reference() {
        let g = grid();
        let x = FermionField::random(g.clone(), 1);
        let y = FermionField::random(g.clone(), 2);
        let mut out = FermionField::zero(g.clone());
        out.axpy(2.5, &x, &y);
        for coor in g.coords().take(32) {
            for comp in 0..12 {
                let want = x.peek(&coor, comp) * 2.5 + y.peek(&coor, comp);
                let got = out.peek(&coor, comp);
                assert!((got - want).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn aypx_and_axpy_inplace() {
        let g = grid();
        let x = FermionField::random(g.clone(), 1);
        let mut p = FermionField::random(g.clone(), 2);
        let p0 = p.clone();
        p.aypx(0.5, &x); // p = x + 0.5 p
        for coor in g.coords().take(16) {
            let want = x.peek(&coor, 0) + p0.peek(&coor, 0) * 0.5;
            assert!((p.peek(&coor, 0) - want).abs() < 1e-13);
        }
        let mut r = p0.clone();
        r.axpy_inplace(-1.0, &x); // r -= x
        for coor in g.coords().take(16) {
            let want = p0.peek(&coor, 3) - x.peek(&coor, 3);
            assert!((r.peek(&coor, 3) - want).abs() < 1e-13);
        }
    }

    #[test]
    fn inner_product_is_conjugate_symmetric_and_positive() {
        let g = grid();
        let x = FermionField::random(g.clone(), 3);
        let y = FermionField::random(g.clone(), 4);
        let xy = x.inner(&y);
        let yx = y.inner(&x);
        assert!((xy - yx.conj()).abs() < 1e-10);
        let xx = x.inner(&x);
        assert!(xx.im.abs() < 1e-10);
        assert!(xx.re > 0.0);
        assert!((xx.re - x.norm2()).abs() < 1e-9 * xx.re);
    }

    #[test]
    fn canonical_reductions_are_bit_identical_across_vls() {
        // The canonical reductions sum per-site scalars in global lex order
        // with the fixed chunk tree: the exact bits must not depend on the
        // vector length (random fields are layout-independent by seed).
        let mut reference: Option<(u64, u64, u64, u64)> = None;
        for bits in [128usize, 256, 512, 1024, 2048] {
            let g = Grid::new([4, 4, 4, 4], VectorLength::of(bits), SimdBackend::Fcmla);
            let x = FermionField::random(g.clone(), 9);
            let y = FermionField::random(g.clone(), 10);
            let n = x.canonical_norm2();
            let ir = x.canonical_inner_re(&y);
            let z = x.canonical_inner(&y);
            assert!((n - x.norm2()).abs() < 1e-9 * n, "vl={bits}");
            assert!((z.re - ir).abs() == 0.0, "vl={bits}");
            let got = (n.to_bits(), ir.to_bits(), z.re.to_bits(), z.im.to_bits());
            match reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(got, want, "vl={bits}"),
            }
        }
    }

    #[test]
    fn block_canonical_scatter_matches_single_rhs() {
        let g = grid();
        let fields: Vec<FermionField> = (0..3)
            .map(|j| FermionField::random(g.clone(), 30 + j))
            .collect();
        let others: Vec<FermionField> = (0..3)
            .map(|j| FermionField::random(g.clone(), 40 + j))
            .collect();
        let a = FermionBlock::from_fields(&fields);
        let b = FermionBlock::from_fields(&others);
        let vol = g.volume();
        let mut outs = vec![0.0; 3 * vol];
        let mut dots = vec![0.0; 3 * vol];
        a.site_norms2_lex(&mut outs);
        a.site_inners_re_lex(&b, &mut dots);
        let mut single = vec![0.0; vol];
        for j in 0..3 {
            fields[j].site_norm2_lex(&mut single);
            assert_eq!(
                reduce::canonical_sum(&single).to_bits(),
                reduce::canonical_sum(&outs[j * vol..(j + 1) * vol]).to_bits(),
                "rhs {j} norm"
            );
            fields[j].site_inner_re_lex(&others[j], &mut single);
            assert_eq!(
                reduce::canonical_sum(&single).to_bits(),
                reduce::canonical_sum(&dots[j * vol..(j + 1) * vol]).to_bits(),
                "rhs {j} dot"
            );
        }
    }

    #[test]
    fn norm_is_layout_invariant_up_to_rounding() {
        let n128 = FermionField::random(
            Grid::new([4, 4, 4, 4], VectorLength::of(128), SimdBackend::Fcmla),
            9,
        )
        .norm2();
        let n1024 = FermionField::random(
            Grid::new([4, 4, 4, 4], VectorLength::of(1024), SimdBackend::Fcmla),
            9,
        )
        .norm2();
        assert!((n128 - n1024).abs() < 1e-9 * n128);
    }

    #[test]
    fn scale_and_sub() {
        let g = grid();
        let x = FermionField::random(g.clone(), 5);
        let mut y = x.clone();
        y.scale(3.0);
        let mut d = FermionField::zero(g.clone());
        d.sub(&y, &x); // 2x
        let ratio = d.norm2() / x.norm2();
        assert!((ratio - 4.0).abs() < 1e-10);
    }

    #[test]
    fn complex_scalar_ops_match_scalar_reference() {
        let g = grid();
        let a = Complex::new(0.75, -1.25);
        let x = FermionField::random(g.clone(), 6);
        let mut y = FermionField::random(g.clone(), 7);
        let y0 = y.clone();
        y.axpy_complex(a, &x); // y += a x
        for coor in g.coords().take(16) {
            for comp in [0usize, 11] {
                let want = y0.peek(&coor, comp) + a * x.peek(&coor, comp);
                assert!((y.peek(&coor, comp) - want).abs() < 1e-13);
            }
        }
        let mut z = x.clone();
        z.scale_complex(a);
        for coor in g.coords().take(16) {
            let want = a * x.peek(&coor, 5);
            assert!((z.peek(&coor, 5) - want).abs() < 1e-13);
        }
        let mut w = x.clone();
        w.add_assign_field(&y0);
        for coor in g.coords().take(16) {
            let want = x.peek(&coor, 3) + y0.peek(&coor, 3);
            assert!((w.peek(&coor, 3) - want).abs() < 1e-13);
        }
    }

    #[test]
    fn f32_fields_round_trip_and_compute() {
        let g32 = Grid::<f32>::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla);
        let mut f = Field::<FermionKind, f32>::zero(g32.clone());
        let z = Complex::new(0.5, -0.25); // exact in f32
        f.poke(&[1, 2, 3, 0], 4, z);
        assert_eq!(f.peek(&[1, 2, 3, 0], 4), z);
        let x = Field::<FermionKind, f32>::random(g32.clone(), 9);
        let n = x.norm2();
        assert!(n > 0.0);
        let ip = x.inner(&x);
        assert!((ip.re - n).abs() < 1e-4 * n);
        assert!(ip.im.abs() < 1e-4 * n);
    }

    #[test]
    #[should_panic(expected = "different grids")]
    fn cross_grid_ops_panic() {
        let a = FermionField::zero(grid());
        let b = FermionField::zero(grid());
        let _ = a.inner(&b);
    }

    #[test]
    fn fused_axpy_norm2_matches_unfused_bitwise() {
        let g = grid();
        let x = FermionField::random(g.clone(), 11);
        let mut a = FermionField::random(g.clone(), 12);
        let mut b = a.clone();
        let fused = a.axpy_norm2(-0.375, &x);
        b.axpy_inplace(-0.375, &x);
        let unfused = b.norm2();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert_eq!(fused.to_bits(), unfused.to_bits());
    }

    #[test]
    fn fused_caxpy_norm2_matches_unfused_bitwise() {
        let g = grid();
        let z = Complex::new(0.3, -0.8);
        let x = FermionField::random(g.clone(), 13);
        let mut a = FermionField::random(g.clone(), 14);
        let mut b = a.clone();
        let fused = a.caxpy_norm2(z, &x);
        b.axpy_complex(z, &x);
        let unfused = b.norm2();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert_eq!(fused.to_bits(), unfused.to_bits());
    }

    #[test]
    fn fused_sub_norm2_matches_unfused_bitwise() {
        let g = grid();
        let x = FermionField::random(g.clone(), 15);
        let y = FermionField::random(g.clone(), 16);
        let mut a = FermionField::zero(g.clone());
        let mut b = FermionField::zero(g.clone());
        let fused = a.sub_norm2(&x, &y);
        b.sub(&x, &y);
        let unfused = b.norm2();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert_eq!(fused.to_bits(), unfused.to_bits());
    }

    #[test]
    fn fused_cg_update_matches_unfused_bitwise() {
        let g = grid();
        let p = FermionField::random(g.clone(), 17);
        let ap = FermionField::random(g.clone(), 18);
        let mut x1 = FermionField::random(g.clone(), 19);
        let mut r1 = FermionField::random(g.clone(), 20);
        let mut x2 = x1.clone();
        let mut r2 = r1.clone();
        let alpha = 0.6875;
        let fused = cg_update_x_r(&mut x1, &mut r1, alpha, &p, &ap);
        x2.axpy_inplace(alpha, &p);
        r2.axpy_inplace(-alpha, &ap);
        let unfused = r2.norm2();
        assert_eq!(x1.max_abs_diff(&x2), 0.0);
        assert_eq!(r1.max_abs_diff(&r2), 0.0);
        assert_eq!(fused.to_bits(), unfused.to_bits());
    }

    #[test]
    fn fused_caxpy_helpers_match_unfused_bitwise() {
        let g = grid();
        let a = Complex::new(-0.21, 0.43);
        let b = Complex::new(0.9, 0.12);
        let x = FermionField::random(g.clone(), 21);
        let y = FermionField::random(g.clone(), 22);
        // caxpy_from
        let mut f1 = FermionField::zero(g.clone());
        f1.caxpy_from(a, &x, &y);
        let mut f2 = y.clone();
        f2.axpy_complex(a, &x);
        assert_eq!(f1.max_abs_diff(&f2), 0.0);
        // caxpy2
        let mut g1 = FermionField::random(g.clone(), 23);
        let mut g2 = g1.clone();
        g1.caxpy2(a, &x, b, &y);
        g2.axpy_complex(a, &x);
        g2.axpy_complex(b, &y);
        assert_eq!(g1.max_abs_diff(&g2), 0.0);
        // bicg_p_update
        let mut p1 = FermionField::random(g.clone(), 24);
        let mut p2 = p1.clone();
        p1.bicg_p_update(b, a, &x, &y);
        p2.axpy_complex(-a, &x);
        p2.scale_complex(b);
        p2.add_assign_field(&y);
        assert_eq!(p1.max_abs_diff(&p2), 0.0);
    }

    #[test]
    fn scale_axpy_from_matches_unfused_bitwise() {
        let g = grid();
        let x = FermionField::random(g.clone(), 25);
        let y = FermionField::random(g.clone(), 26);
        let mut f1 = FermionField::zero(g.clone());
        f1.scale_axpy_from(1.7, &x, -0.25, &y);
        let mut f2 = x.clone();
        f2.scale(1.7);
        f2.axpy_inplace(-0.25, &y);
        assert_eq!(f1.max_abs_diff(&f2), 0.0);
    }

    fn block_fields(g: &Arc<Grid>, n: usize, seed0: u64) -> Vec<FermionField> {
        (0..n)
            .map(|i| FermionField::random(g.clone(), seed0 + i as u64))
            .collect()
    }

    #[test]
    fn block_gather_extract_round_trips_bitwise() {
        let g = grid();
        let fields = block_fields(&g, 3, 30);
        let block = FermionBlock::from_fields(&fields);
        assert_eq!(block.nrhs(), 3);
        for (i, f) in fields.iter().enumerate() {
            assert_eq!(block.rhs_field(i).max_abs_diff(f), 0.0);
            let mut bits = f.clone();
            block.copy_rhs_into(i, &mut bits);
            assert_eq!(bits.max_abs_diff(f), 0.0);
        }
    }

    #[test]
    fn block_norms_and_inners_match_per_field_bitwise() {
        let g = grid();
        let xs = block_fields(&g, 4, 40);
        let ys = block_fields(&g, 4, 50);
        let bx = FermionBlock::from_fields(&xs);
        let by = FermionBlock::from_fields(&ys);
        let norms = bx.norms2();
        let inners = bx.inners(&by);
        for j in 0..4 {
            assert_eq!(norms[j].to_bits(), xs[j].norm2().to_bits(), "rhs {j}");
            let want = xs[j].inner(&ys[j]);
            assert_eq!(inners[j].re.to_bits(), want.re.to_bits(), "rhs {j}");
            assert_eq!(inners[j].im.to_bits(), want.im.to_bits(), "rhs {j}");
        }
    }

    #[test]
    fn block_blas_matches_per_field_bitwise() {
        let g = grid();
        let xs = block_fields(&g, 3, 60);
        let ys = block_fields(&g, 3, 63);
        let bx = FermionBlock::from_fields(&xs);
        let by = FermionBlock::from_fields(&ys);

        let mut s = bx.clone();
        s.scale(1.375);
        let mut a = bx.clone();
        a.axpy_inplace(-0.5, &by);
        let mut f = FermionBlock::zero(g.clone(), 3);
        f.scale_axpy_from(1.7, &bx, -0.25, &by);
        let mut sub = FermionBlock::zero(g.clone(), 3);
        let sn = sub.sub_norms2(&bx, &by);
        for j in 0..3 {
            let mut fs = xs[j].clone();
            fs.scale(1.375);
            assert_eq!(s.rhs_field(j).max_abs_diff(&fs), 0.0);
            let mut fa = xs[j].clone();
            fa.axpy_inplace(-0.5, &ys[j]);
            assert_eq!(a.rhs_field(j).max_abs_diff(&fa), 0.0);
            let mut ff = FermionField::zero(g.clone());
            ff.scale_axpy_from(1.7, &xs[j], -0.25, &ys[j]);
            assert_eq!(f.rhs_field(j).max_abs_diff(&ff), 0.0);
            let mut fsub = FermionField::zero(g.clone());
            let want = fsub.sub_norm2(&xs[j], &ys[j]);
            assert_eq!(sub.rhs_field(j).max_abs_diff(&fsub), 0.0);
            assert_eq!(sn[j].to_bits(), want.to_bits(), "rhs {j}");
        }
    }

    #[test]
    fn masked_block_ops_match_field_ops_and_freeze_inactive_rhs() {
        let g = grid();
        let xs = block_fields(&g, 3, 70);
        let ps = block_fields(&g, 3, 73);
        let aps = block_fields(&g, 3, 76);
        let rs = block_fields(&g, 3, 79);
        let bp = FermionBlock::from_fields(&ps);
        let bap = FermionBlock::from_fields(&aps);
        let mut bx = FermionBlock::from_fields(&xs);
        let mut br = FermionBlock::from_fields(&rs);
        let active = [true, false, true];
        let alphas = [0.6875, 123.0, -0.3125]; // inactive alpha must be ignored
        let r2 = block_cg_update_x_r(&mut bx, &mut br, &alphas, &bp, &bap, &active);
        let mut pb = bp.clone();
        pb.aypx_masked(&alphas, &br, &active);
        for j in 0..3 {
            if active[j] {
                let mut fx = xs[j].clone();
                let mut fr = rs[j].clone();
                let want = cg_update_x_r(&mut fx, &mut fr, alphas[j], &ps[j], &aps[j]);
                assert_eq!(bx.rhs_field(j).max_abs_diff(&fx), 0.0);
                assert_eq!(br.rhs_field(j).max_abs_diff(&fr), 0.0);
                assert_eq!(r2[j].to_bits(), want.to_bits(), "rhs {j}");
                let mut fp = ps[j].clone();
                fp.aypx(alphas[j], &fr);
                assert_eq!(pb.rhs_field(j).max_abs_diff(&fp), 0.0);
            } else {
                // Frozen RHS carry their words through bit-untouched.
                assert_eq!(bx.rhs_field(j).max_abs_diff(&xs[j]), 0.0);
                assert_eq!(br.rhs_field(j).max_abs_diff(&rs[j]), 0.0);
                assert_eq!(pb.rhs_field(j).max_abs_diff(&ps[j]), 0.0);
                assert_eq!(r2[j], 0.0);
            }
        }
    }

    #[test]
    fn single_rhs_block_reductions_are_bitwise_the_field_path() {
        // N = 1 block reductions must reproduce the Field reductions bit for
        // bit: same chunk count, same in-chunk order, same combine tree.
        let g = grid();
        let x = FermionField::random(g.clone(), 90);
        let y = FermionField::random(g.clone(), 91);
        let bx = FermionBlock::from_fields(std::slice::from_ref(&x));
        let by = FermionBlock::from_fields(std::slice::from_ref(&y));
        assert_eq!(bx.norms2()[0].to_bits(), x.norm2().to_bits());
        let bi = bx.inners(&by)[0];
        let fi = x.inner(&y);
        assert_eq!(bi.re.to_bits(), fi.re.to_bits());
        assert_eq!(bi.im.to_bits(), fi.im.to_bits());
    }
}
