//! Multi-rank domain decomposition with comms/compute overlap.
//!
//! [`DistWilson`] is the Wilson operator of [`crate::dirac`] run across the
//! ranks of a [`RankTopology`]: each rank owns a sub-lattice, and hopping
//! legs that cross a rank boundary read *halo* data received from the
//! neighbour instead of wrapping around the local periodic stencil. The
//! sweep is split so communication hides under compute:
//!
//! 1. **Post** — pack the ±d boundary faces of the source fermion and queue
//!    them to both neighbours along every split dimension
//!    ([`RankCtx::post_face_send`], non-blocking).
//! 2. **Interior** — run the unmodified eight-leg site kernel over every
//!    outer site whose legs stay on-rank, while the faces are in flight.
//! 3. **Collect** — block on each face as it lands
//!    ([`RankCtx::wait_face_into`]); only time not already covered by the
//!    interior sweep shows up as exposed wait.
//! 4. **Boundary** — finish the outer sites that touch a halo, patching the
//!    crossing SIMD lanes of each fetched word with face data (and ghost
//!    links on backward legs) before the spin projection runs.
//!
//! Because the patch replaces exactly the lanes whose stencil fetch wrapped
//! around the local lattice — after the fetch's lane permutation, before
//! any arithmetic — every engine operation sees the same per-lane values
//! the single-rank global operator would, and the distributed dslash is
//! **bit-identical** to it at any rank count (with uncompressed wire).
//!
//! Gauge links only move once: at construction each rank sends its
//! `x_d = L−1` link slice `U_d` toward `+d` and keeps the slice received
//! from `−d` as *ghost links* for its backward boundary legs, reusing the
//! two-row wire format (rows 0 and 1 on the wire, third row reconstructed
//! in registers after patching).
//!
//! [`dist_cg`]/[`dist_block_cg`] thread the overlapped operator through the
//! Hestenes–Stiefel recurrence with **canonical scalars**: every inner
//! product and norm is assembled per site, allgathered into global lexical
//! order ([`RankCtx::ring_allgather`]), and summed by the deterministic
//! chunk tree of [`reduce`] over the *global* volume — so α and β (and
//! therefore every iterate) are bitwise independent of the rank count, the
//! vector length, and the worker thread count.
//!
//! [`RankTopology`]: crate::topology::RankTopology
//! [`RankCtx::post_face_send`]: crate::comms::RankCtx::post_face_send
//! [`RankCtx::wait_face_into`]: crate::comms::RankCtx::wait_face_into
//! [`RankCtx::ring_allgather`]: crate::comms::RankCtx::ring_allgather

use crate::codec::{LINK_SCALARS_FULL, LINK_SCALARS_TWO_ROW};
use crate::comms::{Compression, GaugeWire, RankCtx};
use crate::dirac::{
    apply_coeff, WilsonDirac, FUSED_MASS_AXPY_FLOPS_PER_SITE, HOPPING_FLOPS_PER_SITE,
    HOPPING_READS_PER_SITE, HOPPING_WRITES_PER_SITE,
};
use crate::field::{
    cg_update_x_r, gauge_comp, spinor_comp, FermionBlock, FermionField, Field, FieldKind,
    GaugeField,
};
use crate::layout::{lex, Coor, NCOLOR, NDIM, NSPIN};
use crate::reduce::canonical_sum;
use crate::simd::{CVec, SimdEngine};
use crate::solver::{conclude_health, SolveReport};
use crate::stencil::{dir_index, StencilEntry};
use crate::tensor::gamma::proj_table;
use crate::tensor::su3::{mat_dag_vec, mat_vec, reconstruct_row2};
use crate::topology::{fermion_face_bytes, link_ghost_bytes, FERMION_FACE_SCALARS};
use qcd_metrics::HealthMonitor;
use std::cell::Cell;
use std::sync::Arc;

/// Complex components per spinor.
const NCOMP: usize = NSPIN * NCOLOR;

/// Stack buffer large enough for one SIMD word at any modeled vector
/// length (VL 2048 ⇒ 16 complex lanes ⇒ 32 f64 elements).
const MAX_WORD: usize = 64;

/// Everything precomputed for one split dimension: which `(outer site,
/// lane)` pairs form the two faces, and — inverted — which lanes of which
/// outer sites must be patched with halo data during the boundary pass.
struct DimPlan {
    /// The split dimension.
    dim: usize,
    /// Sites per face (`volume / L_dim`).
    face_sites: usize,
    /// My `x_d = 0` face in canonical (transverse-lex) order — sent toward
    /// the `−d` neighbour.
    send_prev: Vec<(u32, u16)>,
    /// My `x_d = L−1` face — sent toward the `+d` neighbour.
    send_next: Vec<(u32, u16)>,
    /// `patch_fwd[osite]` = the `(lane, face index)` pairs whose *forward*
    /// leg along `dim` crosses the rank boundary (sites at `x_d = L−1`);
    /// the halo value comes from the `+d` neighbour's `x_d = 0` face.
    patch_fwd: Vec<Vec<(u16, u32)>>,
    /// Same for the *backward* leg (sites at `x_d = 0`), patched from the
    /// `−d` neighbour's `x_d = L−1` face and its ghost links.
    patch_bwd: Vec<Vec<(u16, u32)>>,
}

/// The Wilson normal operator distributed over the ranks of a
/// [`RankCtx`], with overlapped halo exchange (see the module docs).
pub struct DistWilson<'a> {
    ctx: &'a RankCtx,
    op: WilsonDirac,
    wire: GaugeWire,
    compression: Compression,
    plans: Vec<DimPlan>,
    plan_of_dim: [Option<usize>; NDIM],
    /// Outer sites with no off-rank neighbour: the overlap window.
    interior: Vec<u32>,
    /// Outer sites holding at least one lane on a rank boundary.
    boundary: Vec<u32>,
    /// Per-plan ghost links `U_d` from the `−d` neighbour's `x_d = L−1`
    /// face, decoded once at construction.
    ghosts: Vec<Vec<f64>>,
    /// All local `(outer site, lane)` pairs in local coordinate order —
    /// the slab layout of the canonical scalar reductions.
    site_list: Vec<(u32, u16)>,
    /// `scatter[rank][j]` = global lexical index of rank `rank`'s `j`-th
    /// slab entry; every rank scatters every slab identically, so the
    /// canonical sum runs over the same global array on all ranks.
    scatter: Vec<Vec<u32>>,
    dslash_count: Cell<u64>,
}

/// Reusable storage for the distributed operator and solver: the `M p`
/// intermediate, the pre-sized face buffers, and the allgather slabs. Built
/// once, reused every iteration — the distributed hot path allocates
/// nothing in the steady state.
pub struct DistWorkspace {
    /// `M p` intermediate of the normal-equations application.
    pub tmp: FermionField,
    send_prev: Vec<Vec<f64>>,
    send_next: Vec<Vec<f64>>,
    halo_fwd: Vec<Vec<f64>>,
    halo_bwd: Vec<Vec<f64>>,
    slab: Vec<f64>,
    global_scalars: Vec<f64>,
}

impl DistWorkspace {
    /// Allocate every buffer the operator and solver will reuse.
    pub fn new(dw: &DistWilson) -> Self {
        let grid = dw.ctx.grid.clone();
        let face = |p: &DimPlan| vec![0.0; p.face_sites * FERMION_FACE_SCALARS];
        DistWorkspace {
            tmp: Field::zero(grid.clone()),
            send_prev: dw.plans.iter().map(face).collect(),
            send_next: dw.plans.iter().map(face).collect(),
            halo_fwd: dw.plans.iter().map(face).collect(),
            halo_bwd: dw.plans.iter().map(face).collect(),
            slab: vec![0.0; grid.volume()],
            global_scalars: vec![0.0; dw.ctx.global_dims.iter().product()],
        }
    }
}

impl<'a> DistWilson<'a> {
    /// Build the distributed operator on `ctx` from the *rank-local* gauge
    /// field (see [`restrict_field`]), exchanging ghost links with both
    /// neighbours along every split dimension. `wire` selects the gauge
    /// wire format *and* the in-memory link mode (two-row wire ⇒ two-row
    /// operator, so the third row is reconstructed after halo patching);
    /// `compression` applies binary16 to every face payload.
    pub fn new(
        ctx: &'a RankCtx,
        u: GaugeField,
        mass: f64,
        wire: GaugeWire,
        compression: Compression,
    ) -> Self {
        assert!(
            Arc::ptr_eq(u.grid(), &ctx.grid),
            "gauge field must live on the rank-local grid"
        );
        let op = match wire {
            GaugeWire::TwoRow => WilsonDirac::new_two_row(u, mass),
            GaugeWire::Full => WilsonDirac::new(u, mass),
        };
        let grid = ctx.grid.clone();
        let fdims = grid.fdims();
        let mut plans = Vec::new();
        let mut plan_of_dim = [None; NDIM];
        for d in 0..NDIM {
            if ctx.rank_grid[d] <= 1 {
                continue;
            }
            let l = fdims[d];
            assert!(
                l >= 2,
                "split dimension {d} leaves fewer than 2 local sites"
            );
            let st = op.stencil();
            let f0 = st.face_sites(d, 0);
            let f1 = st.face_sites(d, l - 1);
            let mut patch_fwd = vec![Vec::new(); grid.osites()];
            let mut patch_bwd = vec![Vec::new(); grid.osites()];
            for (i, &(o, lane)) in f1.iter().enumerate() {
                patch_fwd[o].push((lane as u16, i as u32));
            }
            for (i, &(o, lane)) in f0.iter().enumerate() {
                patch_bwd[o].push((lane as u16, i as u32));
            }
            plan_of_dim[d] = Some(plans.len());
            plans.push(DimPlan {
                dim: d,
                face_sites: f1.len(),
                send_prev: f0.iter().map(|&(o, l)| (o as u32, l as u16)).collect(),
                send_next: f1.iter().map(|&(o, l)| (o as u32, l as u16)).collect(),
                patch_fwd,
                patch_bwd,
            });
        }
        let mut interior = Vec::new();
        let mut boundary = Vec::new();
        for o in 0..grid.osites() {
            if plans
                .iter()
                .any(|p| op.stencil().osite_touches_face(o, p.dim))
            {
                boundary.push(o as u32);
            } else {
                interior.push(o as u32);
            }
        }
        let site_list: Vec<(u32, u16)> = grid
            .coords()
            .map(|x| {
                let (o, l) = grid.coor_to_osite_lane(&x);
                (o as u32, l as u16)
            })
            .collect();
        let topo = ctx.topology();
        let scatter: Vec<Vec<u32>> = (0..ctx.nranks)
            .map(|r| {
                let off = topo.offset(r, &ctx.global_dims);
                grid.coords()
                    .map(|x| {
                        let g: Coor = std::array::from_fn(|d| x[d] + off[d]);
                        lex(&g, &ctx.global_dims) as u32
                    })
                    .collect()
            })
            .collect();
        let mut dw = DistWilson {
            ctx,
            op,
            wire,
            compression,
            plans,
            plan_of_dim,
            interior,
            boundary,
            ghosts: Vec::new(),
            site_list,
            scatter,
            dslash_count: Cell::new(0),
        };
        dw.exchange_ghost_links();
        dw
    }

    /// The rank-local single-process operator this wraps.
    pub fn op(&self) -> &WilsonDirac {
        &self.op
    }

    /// The communication context.
    pub fn ctx(&self) -> &RankCtx {
        self.ctx
    }

    /// Outer sites with no off-rank neighbour (the overlap window) and
    /// outer sites touching a halo, as counts.
    pub fn interior_boundary_sites(&self) -> (usize, usize) {
        (self.interior.len(), self.boundary.len())
    }

    /// Overlapped dslash sweeps performed so far (each normal-operator
    /// application counts two).
    pub fn dslash_count(&self) -> u64 {
        self.dslash_count.get()
    }

    /// Reset the sweep counter (pairs with
    /// [`RankCtx::reset_comm_counters`] when starting a measured region).
    ///
    /// [`RankCtx::reset_comm_counters`]: crate::comms::RankCtx::reset_comm_counters
    pub fn reset_dslash_count(&self) {
        self.dslash_count.set(0);
    }

    /// Fermion face bytes one overlapped sweep puts on the wire (both
    /// directions of every split dimension), per the pinned wire model.
    pub fn face_bytes_per_sweep(&self) -> usize {
        self.plans
            .iter()
            .map(|p| 2 * fermion_face_bytes(p.face_sites, self.compression))
            .sum()
    }

    /// Ghost-link bytes the construction-time exchange put on the wire.
    pub fn ghost_bytes(&self) -> usize {
        self.plans
            .iter()
            .map(|p| link_ghost_bytes(p.face_sites, self.wire, self.compression))
            .sum()
    }

    /// Model-predicted total face bytes: the one-time ghost exchange plus
    /// [`face_bytes_per_sweep`](Self::face_bytes_per_sweep) per sweep.
    /// Equals [`RankCtx::sent_bytes`] exactly — the proptest in
    /// `tests/dist_wire_model.rs` pins this.
    ///
    /// [`RankCtx::sent_bytes`]: crate::comms::RankCtx::sent_bytes
    pub fn modeled_wire_bytes(&self) -> usize {
        self.ghost_bytes() + self.dslash_count.get() as usize * self.face_bytes_per_sweep()
    }

    fn link_scalars(&self) -> usize {
        if self.op.two_row() {
            LINK_SCALARS_TWO_ROW
        } else {
            LINK_SCALARS_FULL
        }
    }

    /// Send my `x_d = L−1` link slice toward `+d` and keep the slice
    /// arriving from `−d`: the ghost links backward boundary legs multiply
    /// by. One face per split dimension, once per operator lifetime.
    fn exchange_ghost_links(&mut self) {
        let gs = self.link_scalars();
        let nrows = if self.op.two_row() { 2 } else { 3 };
        let u = self.op.gauge();
        for plan in &self.plans {
            let mut buf = vec![0.0; plan.face_sites * gs];
            for (j, &(o, lane)) in plan.send_next.iter().enumerate() {
                let (o, li) = (o as usize, 2 * lane as usize);
                for r in 0..nrows {
                    for c in 0..NCOLOR {
                        let w = u.word(o, gauge_comp(plan.dim, r, c));
                        let base = j * gs + (r * NCOLOR + c) * 2;
                        buf[base] = w[li];
                        buf[base + 1] = w[li + 1];
                    }
                }
            }
            let mut ghost = vec![0.0; plan.face_sites * gs];
            self.ctx
                .post_face_send(plan.dim, true, &buf, self.compression);
            self.ctx.wait_face_into(plan.dim, false, &mut ghost);
            self.ghosts.push(ghost);
        }
    }

    /// Overwrite the crossing lanes of a fetched word with halo scalars:
    /// `halo` is laid out `stride` scalars per face site, the patched
    /// complex number at scalar offset `offset` within the site.
    fn patch_word(
        &self,
        v: CVec,
        patches: &[(u16, u32)],
        halo: &[f64],
        stride: usize,
        offset: usize,
    ) -> CVec {
        let eng = self.ctx.grid.engine();
        let word = eng.word_len();
        let mut buf = [0.0f64; MAX_WORD];
        eng.store(&mut buf[..word], v);
        for &(lane, fidx) in patches {
            let base = fidx as usize * stride + offset;
            buf[2 * lane as usize] = halo[base];
            buf[2 * lane as usize + 1] = halo[base + 1];
        }
        eng.load(&buf[..word])
    }

    /// `U_d` at the backward leg's neighbour with crossing lanes patched
    /// from ghost links. In two-row mode the patch lands on rows 0 and 1
    /// and the third row is reconstructed *afterwards*, exactly as the
    /// global operator reconstructs from the true neighbour rows.
    fn load_link_bwd_patched(
        &self,
        entry: StencilEntry,
        mu: usize,
        patches: &[(u16, u32)],
        ghost: &[f64],
    ) -> [[CVec; NCOLOR]; NCOLOR] {
        let eng = self.ctx.grid.engine();
        let st = self.op.stencil();
        let gs = self.link_scalars();
        let u = self.op.gauge();
        let fetch_row = |r: usize, c: usize| {
            let v = st.fetch(u, gauge_comp(mu, r, c), entry);
            self.patch_word(v, patches, ghost, gs, (r * NCOLOR + c) * 2)
        };
        if self.op.two_row() {
            let rows: [[CVec; NCOLOR]; 2] =
                std::array::from_fn(|r| std::array::from_fn(|c| fetch_row(r, c)));
            [rows[0], rows[1], reconstruct_row2(eng, &rows[0], &rows[1])]
        } else {
            std::array::from_fn(|r| std::array::from_fn(|c| fetch_row(r, c)))
        }
    }

    /// The eight-leg site kernel of [`WilsonDirac::site_hopping`] with halo
    /// patching on the legs that cross a rank boundary. The op sequence is
    /// identical; only the *values* of the crossing lanes differ (they
    /// become the true neighbour-rank values), so interior lanes are
    /// untouched bit for bit.
    fn site_hopping_patched(
        &self,
        psi: &FermionField,
        osite: usize,
        dagger: bool,
        halo_fwd: &[Vec<f64>],
        halo_bwd: &[Vec<f64>],
    ) -> [[CVec; NCOLOR]; NSPIN] {
        let eng = self.ctx.grid.engine();
        let st = self.op.stencil();
        let mut out = [[eng.zero(); NCOLOR]; NSPIN];
        for mu in 0..4 {
            for forward in [true, false] {
                let plus = forward ^ dagger;
                let dir = dir_index(mu, forward);
                let entry = st.leg(dir, osite);
                let t = proj_table(mu, plus);
                let (patches, halo, ghost): (&[(u16, u32)], &[f64], &[f64]) =
                    match self.plan_of_dim[mu] {
                        Some(i) if forward => (&self.plans[i].patch_fwd[osite], &halo_fwd[i], &[]),
                        Some(i) => (
                            &self.plans[i].patch_bwd[osite],
                            &halo_bwd[i],
                            &self.ghosts[i],
                        ),
                        None => (&[], &[], &[]),
                    };
                let fetch = |comp: usize| -> CVec {
                    let v = st.fetch(psi, comp, entry);
                    if patches.is_empty() {
                        v
                    } else {
                        self.patch_word(v, patches, halo, FERMION_FACE_SCALARS, 2 * comp)
                    }
                };

                let mut h = [[eng.zero(); NCOLOR]; 2];
                for (k, row) in h.iter_mut().enumerate() {
                    let (src, coeff) = t.proj[k];
                    for (c, out_w) in row.iter_mut().enumerate() {
                        let sk = fetch(spinor_comp(k, c));
                        let ss = fetch(spinor_comp(src, c));
                        *out_w = eng.add(sk, apply_coeff(eng, coeff, ss));
                    }
                }

                let uh: [[CVec; NCOLOR]; 2] = if forward {
                    let uw = self.op.load_link_local(osite, mu);
                    [mat_vec(eng, &uw, &h[0]), mat_vec(eng, &uw, &h[1])]
                } else {
                    let uw = if patches.is_empty() {
                        self.op.load_link_leg(entry, mu)
                    } else {
                        self.load_link_bwd_patched(entry, mu, patches, ghost)
                    };
                    [mat_dag_vec(eng, &uw, &h[0]), mat_dag_vec(eng, &uw, &h[1])]
                };

                for c in 0..NCOLOR {
                    out[0][c] = eng.add(out[0][c], uh[0][c]);
                    out[1][c] = eng.add(out[1][c], uh[1][c]);
                    for k in 0..2 {
                        let (row, coeff) = t.recon[k];
                        out[2 + k][c] = eng.add(out[2 + k][c], apply_coeff(eng, coeff, uh[row][c]));
                    }
                }
            }
        }
        out
    }

    /// One overlapped hopping sweep: post faces, interior pass, collect
    /// halos, boundary pass. `mass_axpy = Some(m+4)` fuses the Wilson mass
    /// term into the store exactly like the single-process fused sweep.
    #[allow(clippy::too_many_arguments)]
    fn dslash_overlapped(
        &self,
        psi: &FermionField,
        out: &mut FermionField,
        dagger: bool,
        mass_axpy: Option<f64>,
        send_prev: &mut [Vec<f64>],
        send_next: &mut [Vec<f64>],
        halo_fwd: &mut [Vec<f64>],
        halo_bwd: &mut [Vec<f64>],
    ) {
        let grid = &self.ctx.grid;
        assert!(
            Arc::ptr_eq(psi.grid(), grid),
            "fermion field lives on a different grid"
        );
        assert!(
            Arc::ptr_eq(out.grid(), grid),
            "output field lives on a different grid"
        );
        let eng = grid.engine();
        let _span = self.ctx.detail_spans().then(|| {
            qcd_trace::span!(
                if dagger { "dist.hop_dag" } else { "dist.hop" },
                grid.engine().ctx()
            )
        });
        let sites = grid.volume() as u64;
        let mut flops = HOPPING_FLOPS_PER_SITE;
        let mut reads = HOPPING_READS_PER_SITE - 8 * 18 + 8 * self.link_scalars() as u64;
        if mass_axpy.is_some() {
            flops += FUSED_MASS_AXPY_FLOPS_PER_SITE;
            reads += HOPPING_WRITES_PER_SITE;
        }
        qcd_trace::record_sites(sites);
        qcd_trace::record_flops(sites * flops);
        qcd_trace::record_bytes(sites * reads * 8, sites * HOPPING_WRITES_PER_SITE * 8);

        // 1. Post both faces of every split dimension; the network carries
        // them while the interior pass runs.
        for (i, plan) in self.plans.iter().enumerate() {
            pack_face(psi, &plan.send_prev, &mut send_prev[i]);
            self.ctx
                .post_face_send(plan.dim, false, &send_prev[i], self.compression);
            pack_face(psi, &plan.send_next, &mut send_next[i]);
            self.ctx
                .post_face_send(plan.dim, true, &send_next[i], self.compression);
        }

        let mass_dup = mass_axpy.map(|m| eng.dup_real(m));
        let neg_half = eng.dup_real(-0.5);

        // 2. Interior pass — no leg leaves the rank, the plain kernel runs.
        for &o in &self.interior {
            let o = o as usize;
            let acc = self.op.site_hopping(psi, o, dagger);
            store_site(eng, psi, out, o, &acc, mass_dup, neg_half);
        }

        // 3. Collect the halos (exposed wait is whatever the interior pass
        // did not hide).
        for (i, plan) in self.plans.iter().enumerate() {
            self.ctx.wait_face_into(plan.dim, false, &mut halo_bwd[i]);
            self.ctx.wait_face_into(plan.dim, true, &mut halo_fwd[i]);
        }

        // 4. Boundary pass — same kernel with crossing lanes patched.
        for &o in &self.boundary {
            let o = o as usize;
            let acc = self.site_hopping_patched(psi, o, dagger, halo_fwd, halo_bwd);
            store_site(eng, psi, out, o, &acc, mass_dup, neg_half);
        }
        self.dslash_count.set(self.dslash_count.get() + 1);
    }

    /// `out = Dh ψ` (distributed hopping term, no mass).
    pub fn hopping_into(&self, psi: &FermionField, ws: &mut DistWorkspace, out: &mut FermionField) {
        let DistWorkspace {
            send_prev,
            send_next,
            halo_fwd,
            halo_bwd,
            ..
        } = ws;
        self.dslash_overlapped(
            psi, out, false, None, send_prev, send_next, halo_fwd, halo_bwd,
        );
    }

    /// `out = M ψ = (m+4)ψ − ½ Dh ψ`, mass fused into the store.
    pub fn apply_into(&self, psi: &FermionField, ws: &mut DistWorkspace, out: &mut FermionField) {
        let m = self.op.mass + 4.0;
        let DistWorkspace {
            send_prev,
            send_next,
            halo_fwd,
            halo_bwd,
            ..
        } = ws;
        self.dslash_overlapped(
            psi,
            out,
            false,
            Some(m),
            send_prev,
            send_next,
            halo_fwd,
            halo_bwd,
        );
    }

    /// `out = M† ψ`.
    pub fn apply_dag_into(
        &self,
        psi: &FermionField,
        ws: &mut DistWorkspace,
        out: &mut FermionField,
    ) {
        let m = self.op.mass + 4.0;
        let DistWorkspace {
            send_prev,
            send_next,
            halo_fwd,
            halo_bwd,
            ..
        } = ws;
        self.dslash_overlapped(
            psi,
            out,
            true,
            Some(m),
            send_prev,
            send_next,
            halo_fwd,
            halo_bwd,
        );
    }

    /// `out = M†M ψ` — two overlapped sweeps through `ws.tmp`.
    pub fn mdag_m_into(&self, psi: &FermionField, ws: &mut DistWorkspace, out: &mut FermionField) {
        let m = self.op.mass + 4.0;
        let DistWorkspace {
            tmp,
            send_prev,
            send_next,
            halo_fwd,
            halo_bwd,
            ..
        } = ws;
        self.dslash_overlapped(
            psi,
            tmp,
            false,
            Some(m),
            send_prev,
            send_next,
            halo_fwd,
            halo_bwd,
        );
        self.dslash_overlapped(
            tmp,
            out,
            true,
            Some(m),
            send_prev,
            send_next,
            halo_fwd,
            halo_bwd,
        );
    }

    // ---- Canonical (rank-count-invariant) scalar reductions ---------------

    /// Scatter this rank's slab (and every other rank's, as they circulate
    /// the ring) into global lexical order, then sum with the deterministic
    /// chunk tree over the *global* volume. Identical on every rank, at
    /// every rank count, vector length, and thread count.
    fn gather_and_sum(&self, ws: &mut DistWorkspace) -> f64 {
        let slab = std::mem::take(&mut ws.slab);
        let global = &mut ws.global_scalars;
        let scatter = &self.scatter;
        ws.slab = self.ctx.ring_allgather(slab, |src, s| {
            for (j, &g) in scatter[src].iter().enumerate() {
                global[g as usize] = s[j];
            }
        });
        canonical_sum(&ws.global_scalars)
    }

    /// Globally canonical `|f|²`.
    pub fn canon_norm2(&self, f: &FermionField, ws: &mut DistWorkspace) -> f64 {
        for (j, &(o, lane)) in self.site_list.iter().enumerate() {
            let (o, li) = (o as usize, 2 * lane as usize);
            let mut s = 0.0;
            for comp in 0..NCOMP {
                let w = f.word(o, comp);
                s += w[li] * w[li] + w[li + 1] * w[li + 1];
            }
            ws.slab[j] = s;
        }
        self.gather_and_sum(ws)
    }

    /// Globally canonical `Re ⟨a, b⟩`.
    pub fn canon_inner_re(
        &self,
        a: &FermionField,
        b: &FermionField,
        ws: &mut DistWorkspace,
    ) -> f64 {
        for (j, &(o, lane)) in self.site_list.iter().enumerate() {
            let (o, li) = (o as usize, 2 * lane as usize);
            let mut s = 0.0;
            for comp in 0..NCOMP {
                let wa = a.word(o, comp);
                let wb = b.word(o, comp);
                s += wa[li] * wb[li] + wa[li + 1] * wb[li + 1];
            }
            ws.slab[j] = s;
        }
        self.gather_and_sum(ws)
    }
}

/// Serialize the listed `(outer site, lane)` pairs of a fermion field into
/// a face buffer, [`FERMION_FACE_SCALARS`] per site.
fn pack_face(psi: &FermionField, list: &[(u32, u16)], buf: &mut [f64]) {
    for (j, &(o, lane)) in list.iter().enumerate() {
        let (o, li) = (o as usize, 2 * lane as usize);
        for comp in 0..NCOMP {
            let w = psi.word(o, comp);
            let base = j * FERMION_FACE_SCALARS + 2 * comp;
            buf[base] = w[li];
            buf[base + 1] = w[li + 1];
        }
    }
}

/// The fused store of the hopping sweep: optional mass axpy (the exact op
/// sequence of the single-process fused path), then one store per
/// component word.
fn store_site(
    eng: &SimdEngine<f64>,
    psi: &FermionField,
    out: &mut FermionField,
    osite: usize,
    acc: &[[CVec; NCOLOR]; NSPIN],
    mass_dup: Option<CVec>,
    neg_half: CVec,
) {
    for s in 0..NSPIN {
        for c in 0..NCOLOR {
            let comp = spinor_comp(s, c);
            let mut r = acc[s][c];
            if let Some(m_dup) = mass_dup {
                let hs = eng.scale(neg_half, r);
                let pv = eng.load(psi.word(osite, comp));
                r = eng.axpy_word(m_dup, pv, hs);
            }
            eng.store(out.word_mut(osite, comp), r);
        }
    }
}

/// Restrict a globally-seeded field to the rank-local lattice, site by
/// site: each rank builds the same global field and keeps its own block.
pub fn restrict_field<K: FieldKind>(ctx: &RankCtx, global: &Field<K>) -> Field<K> {
    let mut out = Field::<K>::zero(ctx.grid.clone());
    for local in ctx.grid.coords() {
        let g = ctx.to_global(&local);
        for comp in 0..K::NCOMP {
            out.poke(&local, comp, global.peek(&g, comp));
        }
    }
    out
}

/// Distributed Conjugate Gradient on `M†M x = b` through a caller-provided
/// workspace. The operator applications overlap comms with interior
/// compute; every recurrence scalar is globally canonical, so for a fixed
/// global lattice the solution and residual history are **bit-identical at
/// any rank count** (uncompressed wire), and invariant under vector length
/// and worker thread count.
pub fn dist_cg_ws(
    dw: &DistWilson,
    b: &FermionField,
    ws: &mut DistWorkspace,
    tol: f64,
    max_iter: usize,
) -> (FermionField, SolveReport) {
    let grid = b.grid().clone();
    let span = qcd_trace::span!("solver.dist_cg", grid.engine().ctx());
    let b_norm2 = dw.canon_norm2(b, ws);
    assert!(b_norm2 > 0.0, "CG needs a nonzero right-hand side");
    let mut x = FermionField::zero(grid.clone());
    let mut r = b.clone();
    let mut p = r.clone();
    let mut ap = FermionField::zero(grid.clone());
    let mut r2 = b_norm2;
    let mut iterations = 0usize;
    let mut history = Vec::with_capacity(max_iter + 2);
    history.push((r2 / b_norm2).sqrt());
    let mut monitor = HealthMonitor::new("solver.dist_cg");
    monitor.replay(&history);

    while iterations < max_iter && r2 > tol * tol * b_norm2 {
        dw.mdag_m_into(&p, ws, &mut ap);
        let p_ap = dw.canon_inner_re(&p, &ap, ws);
        assert!(
            p_ap > 0.0,
            "search direction has non-positive curvature: operator not HPD?"
        );
        let alpha = r2 / p_ap;
        // The fused sweep's local |r|² is discarded: the recurrence runs on
        // the canonical norm below so scalars match at every rank count.
        let _local_r2 = cg_update_x_r(&mut x, &mut r, alpha, &p, &ap);
        let r2_new = dw.canon_norm2(&r, ws);
        let beta = r2_new / r2;
        p.aypx(beta, &r);
        r2 = r2_new;
        iterations += 1;
        history.push((r2 / b_norm2).sqrt());
        monitor.observe(*history.last().unwrap());
    }

    let converged = r2 <= tol * tol * b_norm2;
    // True residual (canonical), reusing the spent search direction.
    dw.mdag_m_into(&x, ws, &mut ap);
    p.sub(b, &ap);
    let residual = (dw.canon_norm2(&p, ws) / b_norm2).sqrt();
    let (history, health) = conclude_health("solver.dist_cg", monitor, &history, iterations);
    (
        x,
        SolveReport {
            iterations,
            residual,
            converged,
            history,
            health,
            telemetry: span.finish(),
        },
    )
}

/// [`dist_cg_ws`] with an internally allocated workspace.
pub fn dist_cg(
    dw: &DistWilson,
    b: &FermionField,
    tol: f64,
    max_iter: usize,
) -> (FermionField, SolveReport) {
    let mut ws = DistWorkspace::new(dw);
    dist_cg_ws(dw, b, &mut ws, tol, max_iter)
}

/// Distributed multi-RHS solve: each right-hand side runs an independent
/// [`dist_cg_ws`] through one shared workspace. Unlike the single-process
/// block solver there is no shared-Krylov coupling across the batch, so
/// every RHS inherits the full per-RHS determinism guarantee: bit-identical
/// at any rank count to the same RHS solved at `R = 1`.
pub fn dist_block_cg(
    dw: &DistWilson,
    b: &FermionBlock,
    tol: f64,
    max_iter: usize,
) -> (FermionBlock, Vec<SolveReport>) {
    let grid = b.grid().clone();
    let nrhs = b.nrhs();
    let mut ws = DistWorkspace::new(dw);
    let mut x = FermionBlock::zero(grid.clone(), nrhs);
    let mut rhs = FermionField::zero(grid.clone());
    let mut reports = Vec::with_capacity(nrhs);
    for j in 0..nrhs {
        for o in 0..grid.osites() {
            for comp in 0..NCOMP {
                rhs.word_mut(o, comp).copy_from_slice(b.word(o, j, comp));
            }
        }
        let (xj, report) = dist_cg_ws(dw, &rhs, &mut ws, tol, max_iter);
        for o in 0..grid.osites() {
            for comp in 0..NCOMP {
                x.word_mut(o, j, comp).copy_from_slice(xj.word(o, comp));
            }
        }
        reports.push(report);
    }
    (x, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comms::{run_multinode_grid, run_multinode_topo, NetworkModel};
    use crate::layout::Grid;
    use crate::simd::SimdBackend;
    use crate::solver::cg;
    use crate::tensor::su3::random_gauge;
    use crate::topology::RankTopology;
    use sve::VectorLength;

    const GLOBAL: Coor = [4, 4, 4, 8];
    const VL: VectorLength = VectorLength::of(256);

    fn global_op(two_row: bool) -> (WilsonDirac, FermionField) {
        let g = Grid::new(GLOBAL, VL, SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 7);
        let psi = FermionField::random(g.clone(), 11);
        let d = if two_row {
            WilsonDirac::new_two_row(u, 0.3)
        } else {
            WilsonDirac::new(u, 0.3)
        };
        (d, psi)
    }

    fn local_setup<'c>(ctx: &'c RankCtx, wire: GaugeWire) -> (DistWilson<'c>, FermionField) {
        let g = Grid::new(GLOBAL, VL, SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 7);
        let psi = FermionField::random(g, 11);
        let ul = restrict_field(ctx, &u);
        let psil = restrict_field(ctx, &psi);
        (DistWilson::new(ctx, ul, 0.3, wire, Compression::None), psil)
    }

    /// Per-site bit comparison of a rank-local field against the matching
    /// block of a global reference field.
    fn assert_matches_global(ctx: &RankCtx, local: &FermionField, global: &FermionField) {
        for x in ctx.grid.coords() {
            let g = ctx.to_global(&x);
            for comp in 0..NCOMP {
                let lv = local.peek(&x, comp);
                let gv = global.peek(&g, comp);
                assert_eq!(
                    (lv.re.to_bits(), lv.im.to_bits()),
                    (gv.re.to_bits(), gv.im.to_bits()),
                    "site {g:?} comp {comp} rank {}",
                    ctx.rank
                );
            }
        }
    }

    #[test]
    fn distributed_hopping_matches_the_global_operator_bitwise() {
        for rank_grid in [[1, 1, 1, 2], [1, 1, 2, 2], [1, 1, 1, 4], [2, 1, 1, 2]] {
            for wire in [GaugeWire::Full, GaugeWire::TwoRow] {
                for dagger in [false, true] {
                    let (d, psi) = global_op(matches!(wire, GaugeWire::TwoRow));
                    let reference = if dagger {
                        d.hopping_dag(&psi)
                    } else {
                        d.hopping(&psi)
                    };
                    run_multinode_grid(GLOBAL, rank_grid, VL, SimdBackend::Fcmla, |ctx| {
                        let (dw, psil) = local_setup(ctx, wire);
                        let mut ws = DistWorkspace::new(&dw);
                        let mut out = FermionField::zero(ctx.grid.clone());
                        let DistWorkspace {
                            send_prev,
                            send_next,
                            halo_fwd,
                            halo_bwd,
                            ..
                        } = &mut ws;
                        dw.dslash_overlapped(
                            &psil, &mut out, dagger, None, send_prev, send_next, halo_fwd, halo_bwd,
                        );
                        assert_matches_global(ctx, &out, &reference);
                    });
                }
            }
        }
    }

    #[test]
    fn distributed_normal_operator_matches_the_global_one_bitwise() {
        let (d, psi) = global_op(true);
        let reference = d.mdag_m(&psi);
        run_multinode_grid(GLOBAL, [1, 1, 2, 2], VL, SimdBackend::Fcmla, |ctx| {
            let (dw, psil) = local_setup(ctx, GaugeWire::TwoRow);
            let mut ws = DistWorkspace::new(&dw);
            let mut out = FermionField::zero(ctx.grid.clone());
            dw.mdag_m_into(&psil, &mut ws, &mut out);
            assert_matches_global(ctx, &out, &reference);
        });
    }

    /// One rank count's outcome: sorted per-component solution bits plus
    /// the residual-history bits.
    type SolveBits = (Vec<(usize, u64, u64)>, Vec<u64>);

    /// Gather one rank's solution into (global site, comp) → bit pairs.
    fn solution_bits(ctx: &RankCtx, x: &FermionField) -> Vec<(usize, u64, u64)> {
        let mut out = Vec::new();
        for local in ctx.grid.coords() {
            let g = ctx.to_global(&local);
            let gidx = lex(&g, &ctx.global_dims);
            for comp in 0..NCOMP {
                let v = x.peek(&local, comp);
                out.push((gidx * NCOMP + comp, v.re.to_bits(), v.im.to_bits()));
            }
        }
        out
    }

    #[test]
    fn distributed_solve_is_bit_identical_across_rank_counts() {
        let mut runs: Vec<SolveBits> = Vec::new();
        for nranks in [1usize, 2, 4] {
            let mut rank_grid = [1; NDIM];
            rank_grid[3] = nranks;
            let mut per_rank =
                run_multinode_grid(GLOBAL, rank_grid, VL, SimdBackend::Fcmla, |ctx| {
                    let g = Grid::new(GLOBAL, VL, SimdBackend::Fcmla);
                    let u = random_gauge(g.clone(), 7);
                    let b = FermionField::random(g, 13);
                    let ul = restrict_field(ctx, &u);
                    let bl = restrict_field(ctx, &b);
                    let dw = DistWilson::new(ctx, ul, 0.3, GaugeWire::TwoRow, Compression::None);
                    let (x, report) = dist_cg(&dw, &bl, 1e-8, 60);
                    assert!(report.converged, "R={nranks} failed to converge");
                    assert!(report.residual < 1e-7);
                    (
                        solution_bits(ctx, &x),
                        report
                            .history
                            .iter()
                            .map(|h| h.to_bits())
                            .collect::<Vec<_>>(),
                    )
                });
            let mut bits: Vec<(usize, u64, u64)> = per_rank
                .iter_mut()
                .flat_map(|(b, _)| std::mem::take(b))
                .collect();
            bits.sort_unstable();
            let history = per_rank.pop().unwrap().1;
            for (_, h) in &per_rank {
                assert_eq!(*h, history, "ranks disagree on the residual history");
            }
            runs.push((bits, history));
        }
        for run in &runs[1..] {
            assert_eq!(run.0, runs[0].0, "solutions differ across rank counts");
            assert_eq!(run.1, runs[0].1, "histories differ across rank counts");
        }
    }

    #[test]
    fn distributed_solve_agrees_with_the_single_process_solver() {
        let g = Grid::new(GLOBAL, VL, SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 7);
        let b = FermionField::random(g.clone(), 13);
        let d = WilsonDirac::new_two_row(u.clone(), 0.3);
        let (x_ref, rep_ref) = cg(&d, &b, 1e-10, 120);
        assert!(rep_ref.converged);
        run_multinode_grid(GLOBAL, [1, 1, 1, 2], VL, SimdBackend::Fcmla, |ctx| {
            let ul = restrict_field(ctx, &u);
            let bl = restrict_field(ctx, &b);
            let dw = DistWilson::new(ctx, ul, 0.3, GaugeWire::TwoRow, Compression::None);
            let (x, report) = dist_cg(&dw, &bl, 1e-10, 120);
            assert!(report.converged);
            for local in ctx.grid.coords() {
                let gc = ctx.to_global(&local);
                for comp in 0..NCOMP {
                    let a = x.peek(&local, comp);
                    let r = x_ref.peek(&gc, comp);
                    assert!(
                        (a.re - r.re).abs() < 1e-6 && (a.im - r.im).abs() < 1e-6,
                        "distributed and single-process solutions disagree at {gc:?}"
                    );
                }
            }
        });
    }

    #[test]
    fn distributed_block_solve_matches_per_rhs_dist_cg() {
        run_multinode_grid(GLOBAL, [1, 1, 1, 2], VL, SimdBackend::Fcmla, |ctx| {
            let g = Grid::new(GLOBAL, VL, SimdBackend::Fcmla);
            let u = random_gauge(g, 7);
            let ul = restrict_field(ctx, &u);
            let dw = DistWilson::new(ctx, ul, 0.3, GaugeWire::TwoRow, Compression::None);
            let nrhs = 3;
            let mut b = FermionBlock::zero(ctx.grid.clone(), nrhs);
            for j in 0..nrhs {
                let g = Grid::new(GLOBAL, VL, SimdBackend::Fcmla);
                let bj = restrict_field(ctx, &FermionField::random(g, 20 + j as u64));
                for o in 0..ctx.grid.osites() {
                    for comp in 0..NCOMP {
                        b.word_mut(o, j, comp).copy_from_slice(bj.word(o, comp));
                    }
                }
            }
            let (x, reports) = dist_block_cg(&dw, &b, 1e-8, 60);
            assert_eq!(reports.len(), nrhs);
            for j in 0..nrhs {
                assert!(reports[j].converged);
                let g = Grid::new(GLOBAL, VL, SimdBackend::Fcmla);
                let bj = restrict_field(ctx, &FermionField::random(g, 20 + j as u64));
                let (xj, _) = dist_cg(&dw, &bj, 1e-8, 60);
                for o in 0..ctx.grid.osites() {
                    for comp in 0..NCOMP {
                        assert_eq!(
                            x.word(o, j, comp),
                            xj.word(o, comp),
                            "block RHS {j} differs from its standalone solve"
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn face_traffic_matches_the_pinned_wire_model() {
        for (wire, compression) in [
            (GaugeWire::Full, Compression::None),
            (GaugeWire::TwoRow, Compression::None),
            (GaugeWire::TwoRow, Compression::F16),
        ] {
            run_multinode_grid(GLOBAL, [1, 1, 1, 2], VL, SimdBackend::Fcmla, |ctx| {
                let g = Grid::new(GLOBAL, VL, SimdBackend::Fcmla);
                let u = random_gauge(g.clone(), 7);
                let psi = FermionField::random(g, 11);
                let ul = restrict_field(ctx, &u);
                let psil = restrict_field(ctx, &psi);
                let dw = DistWilson::new(ctx, ul, 0.3, wire, compression);
                assert_eq!(
                    ctx.sent_bytes.get(),
                    dw.ghost_bytes(),
                    "ghost exchange off-model for {wire:?}/{compression:?}"
                );
                let mut ws = DistWorkspace::new(&dw);
                let mut out = FermionField::zero(ctx.grid.clone());
                for _ in 0..3 {
                    dw.apply_into(&psil, &mut ws, &mut out);
                }
                assert_eq!(
                    ctx.sent_bytes.get(),
                    dw.modeled_wire_bytes(),
                    "face traffic off-model for {wire:?}/{compression:?}"
                );
            });
        }
    }

    #[test]
    fn overlap_accounting_attributes_flight_time_to_every_sweep() {
        // [4,4,8,8] over 2 t-ranks: the local [4,4,8,4] lattice puts its
        // vnode split on dim 2 (largest extent), leaving rdims[3] = 4 and a
        // genuine interior window between the two t-faces.
        run_multinode_topo(
            [4, 4, 8, 8],
            RankTopology::one_dim(2),
            VL,
            SimdBackend::Fcmla,
            NetworkModel::custom(10_000, 1.0),
            |ctx| {
                let g = Grid::new([4, 4, 8, 8], VL, SimdBackend::Fcmla);
                let ul = restrict_field(ctx, &random_gauge(g.clone(), 7));
                let psil = restrict_field(ctx, &FermionField::random(g, 11));
                let dw = DistWilson::new(ctx, ul, 0.3, GaugeWire::TwoRow, Compression::None);
                let (interior, boundary) = dw.interior_boundary_sites();
                assert!(interior > 0, "no overlap window on this geometry");
                assert!(boundary > 0);
                ctx.reset_comm_counters();
                let mut ws = DistWorkspace::new(&dw);
                let mut out = FermionField::zero(ctx.grid.clone());
                dw.apply_into(&psil, &mut ws, &mut out);
                // Two faces landed, each with ≥ 10 µs modeled latency.
                assert!(ctx.flight_ns() >= 20_000, "flight {}", ctx.flight_ns());
            },
        );
    }

    #[test]
    fn r1_topology_needs_no_channels_and_still_solves() {
        run_multinode_grid(GLOBAL, [1, 1, 1, 1], VL, SimdBackend::Fcmla, |ctx| {
            let g = Grid::new(GLOBAL, VL, SimdBackend::Fcmla);
            let u = random_gauge(g.clone(), 7);
            let b = FermionField::random(g, 13);
            let dw = DistWilson::new(
                ctx,
                restrict_field(ctx, &u),
                0.3,
                GaugeWire::TwoRow,
                Compression::None,
            );
            let (interior, boundary) = dw.interior_boundary_sites();
            assert_eq!(boundary, 0);
            assert_eq!(interior, ctx.grid.osites());
            let (x, report) = dist_cg(&dw, &restrict_field(ctx, &b), 1e-8, 60);
            assert!(report.converged);
            assert_eq!(ctx.sent_bytes.get(), 0);
            drop(x);
        });
    }
}
