//! Scalar complex arithmetic.
//!
//! The scalar counterpart of the vectorized kernels: used for reference
//! implementations, reductions (inner products, norms) and test oracles.
//! Lattice QCD data is complex throughout — a quark field has `12 V` complex
//! entries (paper, Section II-A).

/// A complex number over `f64`.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared modulus `|z|^2`.
    pub fn norm2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    pub fn abs(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Multiplication by the imaginary unit: `i*z`.
    pub fn times_i(self) -> Self {
        Complex::new(-self.im, self.re)
    }

    /// Multiplication by `-i`.
    pub fn times_minus_i(self) -> Self {
        Complex::new(self.im, -self.re)
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 3.0);
        let c = Complex::new(2.0, -1.0);
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        assert_eq!((a + b) + c, a + (b + c));
        let d = a * (b + c);
        let e = a * b + a * c;
        assert!((d - e).abs() < 1e-14);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a + Complex::ZERO, a);
    }

    #[test]
    fn conjugation_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.norm2(), 25.0);
        assert_eq!(a.abs(), 5.0);
        let p = a * a.conj();
        assert_eq!(p.re, 25.0);
        assert_eq!(p.im, 0.0);
    }

    #[test]
    fn times_i_matches_multiplication_by_i() {
        let a = Complex::new(2.0, -3.0);
        assert_eq!(a.times_i(), Complex::I * a);
        assert_eq!(a.times_minus_i(), -(Complex::I) * a);
        assert_eq!(a.times_i().times_minus_i(), a);
        // i^2 = -1
        assert_eq!(Complex::I * Complex::I, -Complex::ONE);
    }
}
