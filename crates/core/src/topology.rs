//! Explicit rank topology for multi-rank domain decomposition.
//!
//! "For the coarsest level a set of sub-lattices is distributed over (a
//! very large number of) different processes" (paper, Section II-A). This
//! module owns the *geometry* of that level: how R ranks tile the global
//! lattice ([`RankTopology`]), which dimensions are split, what the halo
//! faces of one rank look like ([`FaceGeometry`]), and exactly how many
//! bytes each face puts on the wire under every wire format — the model
//! the comms telemetry and the `qcd-bench-comms/v1` regression gate pin
//! against.

use crate::comms::{Compression, GaugeWire};
use crate::layout::{delex, lex, Coor, NDIM};

/// Scalars per site in a full-spinor fermion halo (12 complex components).
pub const FERMION_FACE_SCALARS: usize = 24;

/// How R ranks tile the four lattice dimensions: entry `d` is the number
/// of ranks along dimension `d`, ranks are numbered in lexicographic order
/// of their rank-grid coordinate (x0 fastest), and every split dimension
/// is a periodic ring — the same convention the site layout uses, so rank
/// and virtual-node decompositions compose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankTopology {
    rank_grid: Coor,
    nranks: usize,
}

impl RankTopology {
    /// Topology over an explicit rank grid ("domain decomposition in 1 to
    /// 4 dimensions", paper Section II-A).
    pub fn new(rank_grid: Coor) -> Self {
        let nranks: usize = rank_grid.iter().product();
        assert!(nranks >= 1, "rank grid must hold at least one rank");
        RankTopology { rank_grid, nranks }
    }

    /// The single-rank topology (no split dimensions, no faces).
    pub fn single() -> Self {
        RankTopology::new([1; NDIM])
    }

    /// The legacy 1-D decomposition: all ranks along the time dimension.
    pub fn one_dim(nranks: usize) -> Self {
        let mut rank_grid = [1; NDIM];
        rank_grid[crate::comms::SPLIT_DIM] = nranks;
        RankTopology::new(rank_grid)
    }

    /// Canonical topology for a power-of-two rank count: fold ranks onto
    /// dimensions from the time direction down (R=2 → `[1,1,1,2]`,
    /// R=4 → `[1,1,2,2]`, R=16 → `[2,2,2,2]`), mirroring how
    /// [`Grid`](crate::layout::Grid) prefers to split its highest even
    /// dimension for virtual nodes.
    pub fn from_nranks(nranks: usize) -> Self {
        assert!(
            nranks >= 1 && nranks.is_power_of_two(),
            "canonical decomposition needs a power-of-two rank count, got {nranks}"
        );
        let mut rank_grid = [1; NDIM];
        let mut left = nranks;
        let mut d = NDIM - 1;
        while left > 1 {
            rank_grid[d] *= 2;
            left /= 2;
            d = if d == 0 { NDIM - 1 } else { d - 1 };
        }
        RankTopology::new(rank_grid)
    }

    /// Ranks per dimension.
    pub fn rank_grid(&self) -> Coor {
        self.rank_grid
    }

    /// Total ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The dimensions actually split across ranks, in ascending order.
    pub fn split_dims(&self) -> impl Iterator<Item = usize> + '_ {
        (0..NDIM).filter(|&d| self.rank_grid[d] > 1)
    }

    /// This rank's coordinate in the rank grid.
    pub fn rank_coor(&self, rank: usize) -> Coor {
        assert!(rank < self.nranks);
        delex(rank, &self.rank_grid)
    }

    /// Linear rank id of a rank-grid coordinate.
    pub fn rank_of(&self, coor: &Coor) -> usize {
        lex(coor, &self.rank_grid)
    }

    /// The neighbouring rank one step along `±d` (periodic).
    pub fn neighbour(&self, rank: usize, d: usize, forward: bool) -> usize {
        let mut c = self.rank_coor(rank);
        c[d] = if forward {
            (c[d] + 1) % self.rank_grid[d]
        } else {
            (c[d] + self.rank_grid[d] - 1) % self.rank_grid[d]
        };
        self.rank_of(&c)
    }

    /// Local lattice extents for a given global lattice; every split
    /// dimension must divide evenly.
    pub fn local_dims(&self, global_dims: &Coor) -> Coor {
        std::array::from_fn(|d| {
            assert!(
                global_dims[d].is_multiple_of(self.rank_grid[d]),
                "dimension {d} ({} sites) must divide evenly over {} ranks",
                global_dims[d],
                self.rank_grid[d]
            );
            global_dims[d] / self.rank_grid[d]
        })
    }

    /// Global coordinate of `rank`'s local origin.
    pub fn offset(&self, rank: usize, global_dims: &Coor) -> Coor {
        let local = self.local_dims(global_dims);
        let coor = self.rank_coor(rank);
        std::array::from_fn(|d| coor[d] * local[d])
    }

    /// The halo faces of one rank (every rank has the same set): one
    /// [`FaceGeometry`] per split dimension, covering both the `+d` and
    /// `−d` exchange.
    pub fn faces(&self, global_dims: &Coor) -> Vec<FaceGeometry> {
        let local = self.local_dims(global_dims);
        self.split_dims()
            .map(|d| FaceGeometry {
                dim: d,
                sites: local.iter().product::<usize>() / local[d],
            })
            .collect()
    }
}

/// One halo face of a rank: the slice of sites orthogonal to a split
/// dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaceGeometry {
    /// The split dimension this face is orthogonal to.
    pub dim: usize,
    /// Sites in the face (local volume / local extent along `dim`).
    pub sites: usize,
}

/// Bytes one scalar occupies on the wire under `compression`.
fn scalar_bytes(compression: Compression) -> usize {
    match compression {
        Compression::None => 8,
        Compression::F16 => 2,
    }
}

/// Wire bytes of a full-spinor fermion face: 12 complex components per
/// site, (re, im) interleaved.
pub fn fermion_face_bytes(sites: usize, compression: Compression) -> usize {
    sites * FERMION_FACE_SCALARS * scalar_bytes(compression)
}

/// Wire bytes of a gauge face carrying all four link directions per site —
/// the [`cshift_dist_gauge`](crate::comms::cshift_dist_gauge) payload.
/// This is the pinned per-site model:
///
/// | wire    | compression | bytes/site |
/// |---------|-------------|------------|
/// | full    | f64         | 576        |
/// | two-row | f64         | 384        |
/// | two-row | f16         | 96         |
pub fn gauge_face_bytes(sites: usize, wire: GaugeWire, compression: Compression) -> usize {
    let scalars_per_link = match wire {
        GaugeWire::Full => crate::codec::LINK_SCALARS_FULL,
        GaugeWire::TwoRow => crate::codec::LINK_SCALARS_TWO_ROW,
    };
    sites * NDIM * scalars_per_link * scalar_bytes(compression)
}

/// Wire bytes of the operator's one-direction gauge ghost (only `U_d`
/// crosses a `d` face): one link per site.
pub fn link_ghost_bytes(sites: usize, wire: GaugeWire, compression: Compression) -> usize {
    gauge_face_bytes(sites, wire, compression) / NDIM
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_decomposition_folds_from_time_down() {
        assert_eq!(RankTopology::from_nranks(1).rank_grid(), [1, 1, 1, 1]);
        assert_eq!(RankTopology::from_nranks(2).rank_grid(), [1, 1, 1, 2]);
        assert_eq!(RankTopology::from_nranks(4).rank_grid(), [1, 1, 2, 2]);
        assert_eq!(RankTopology::from_nranks(8).rank_grid(), [1, 2, 2, 2]);
        assert_eq!(RankTopology::from_nranks(16).rank_grid(), [2, 2, 2, 2]);
        assert_eq!(RankTopology::from_nranks(32).rank_grid(), [2, 2, 2, 4]);
    }

    #[test]
    fn neighbours_form_periodic_rings() {
        let t = RankTopology::new([1, 1, 2, 4]);
        assert_eq!(t.nranks(), 8);
        assert_eq!(t.split_dims().collect::<Vec<_>>(), vec![2, 3]);
        for r in 0..t.nranks() {
            for d in t.split_dims().collect::<Vec<_>>() {
                let up = t.neighbour(r, d, true);
                assert_eq!(t.neighbour(up, d, false), r, "rank {r} dim {d}");
            }
        }
        // Wrap-around along the 4-long time ring.
        let last_t = t.rank_of(&[0, 0, 0, 3]);
        assert_eq!(t.neighbour(last_t, 3, true), t.rank_of(&[0, 0, 0, 0]));
    }

    #[test]
    fn offsets_tile_the_global_lattice() {
        let t = RankTopology::new([2, 1, 2, 2]);
        let global = [4, 4, 4, 8];
        assert_eq!(t.local_dims(&global), [2, 4, 2, 4]);
        let mut seen = std::collections::HashSet::new();
        for r in 0..t.nranks() {
            assert!(seen.insert(t.offset(r, &global)));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn face_sites_match_slice_volumes() {
        let t = RankTopology::new([1, 1, 2, 2]);
        let faces = t.faces(&[4, 4, 4, 8]);
        // Local lattice is [4,4,2,4]: the z face is 4*4*4, the t face 4*4*2.
        assert_eq!(faces.len(), 2);
        assert_eq!(faces[0], FaceGeometry { dim: 2, sites: 64 });
        assert_eq!(faces[1], FaceGeometry { dim: 3, sites: 32 });
    }

    #[test]
    fn gauge_wire_model_is_pinned() {
        // The 576/384/96 B/site model the comms tests and the bench gate
        // both pin.
        for (wire, comp, per_site) in [
            (GaugeWire::Full, Compression::None, 576),
            (GaugeWire::TwoRow, Compression::None, 384),
            (GaugeWire::TwoRow, Compression::F16, 96),
        ] {
            assert_eq!(gauge_face_bytes(1, wire, comp), per_site);
            assert_eq!(gauge_face_bytes(64, wire, comp), 64 * per_site);
            assert_eq!(link_ghost_bytes(1, wire, comp), per_site / 4);
        }
        assert_eq!(fermion_face_bytes(1, Compression::None), 192);
        assert_eq!(fermion_face_bytes(1, Compression::F16), 48);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn indivisible_dimension_is_rejected() {
        RankTopology::new([1, 1, 1, 3]).local_dims(&[4, 4, 4, 8]);
    }
}
