//! The `vec<T>`/`acle<T>` abstraction layer of the port (paper, Section V).
//!
//! Grid's lower-level abstraction layer keeps vector data as class member
//! data; since SVE ACLE types are sizeless, the port stores "ordinary arrays
//! as class member data and implements SVE ACLE only for data processing
//! within functions" (Section V-A). [`CVec`] is one such array's worth of
//! data — a single SIMD word of interleaved complex numbers — and
//! [`SimdEngine`] is the `acle<T>` utility: it caches the predicates and
//! lookup tables every kernel needs and lowers each complex operation to the
//! instruction sequence of the selected [`SimdBackend`].
//!
//! All three backends produce the same values (up to FP rounding-order
//! differences between fused and unfused formulations); they differ in
//! instruction count and mix, which the context's counters expose.

use crate::simd::backend::SimdBackend;
use crate::Complex;
use std::sync::Arc;
use sve::intrinsics as sv;
use sve::{PReg, Rot, SveCtx, SveFloat, VReg};

/// One SIMD word of complex numbers in FCMLA layout: real components in
/// even lanes, imaginary in odd lanes (paper, Section III-D). The number of
/// complex lanes is half the element lane count, fixed by the engine's
/// vector length and element precision.
#[derive(Clone, Copy, Debug, Default)]
pub struct CVec {
    reg: VReg,
}

impl CVec {
    /// Wrap a raw vector register.
    pub fn from_reg(reg: VReg) -> Self {
        CVec { reg }
    }

    /// The underlying register.
    pub fn reg(&self) -> &VReg {
        &self.reg
    }
}

/// The per-"machine" SIMD execution engine: vector length, backend and the
/// cached predicates/constants that Grid's `acle<T>` struct provides
/// ("various definitions for predication", Section V-B).
#[derive(Clone)]
pub struct SimdEngine<E: SveFloat = f64> {
    ctx: Arc<SveCtx>,
    backend: SimdBackend,
    /// ptrue over all element lanes.
    pg: PReg,
    /// Even (real-part) lanes only.
    pg_even: PReg,
    /// Odd (imaginary-part) lanes only.
    pg_odd: PReg,
    /// First `lanes_c` element lanes — governs reductions after
    /// de-interleaving.
    pg_half: PReg,
    /// Pairwise lane swap (1,0,3,2,...) for real-arithmetic kernels.
    swap_tbl: Vec<usize>,
    /// Cached all-zero register (accumulator seed).
    zero: VReg,
    /// Complex lanes per vector.
    lanes_c: usize,
    _e: std::marker::PhantomData<E>,
}

impl<E: SveFloat> SimdEngine<E> {
    /// Build an engine over `ctx` with the given backend. Predicates and
    /// constants are materialized once here (and counted once), mirroring
    /// how Grid hoists `acle<T>::pg1()` out of kernels.
    pub fn new(ctx: Arc<SveCtx>, backend: SimdBackend) -> Self {
        let lanes = ctx.vl().lanes_of(E::BYTES);
        assert!(lanes >= 2, "need at least one complex lane");
        let pg = sv::svptrue::<E>(&ctx);
        let mut pg_even = PReg::none();
        let mut pg_odd = PReg::none();
        for e in 0..lanes {
            if e % 2 == 0 {
                pg_even.set_elem_active::<E>(e, true);
            } else {
                pg_odd.set_elem_active::<E>(e, true);
            }
        }
        let pg_half = PReg::whilelt::<E>(ctx.vl(), 0, (lanes / 2) as u64);
        let swap_tbl: Vec<usize> = (0..lanes).map(|e| e ^ 1).collect();
        let zero = sv::svdup::<E>(&ctx, E::zero());
        SimdEngine {
            ctx,
            backend,
            pg,
            pg_even,
            pg_odd,
            pg_half,
            swap_tbl,
            zero,
            lanes_c: lanes / 2,
            _e: std::marker::PhantomData,
        }
    }

    /// The SVE context (vector length, counters).
    pub fn ctx(&self) -> &SveCtx {
        &self.ctx
    }

    /// The backend this engine lowers complex arithmetic to.
    pub fn backend(&self) -> SimdBackend {
        self.backend
    }

    /// Complex lanes per SIMD word — the number of virtual nodes a thread's
    /// sub-lattice is decomposed over (paper, Fig. 1).
    pub fn lanes_c(&self) -> usize {
        self.lanes_c
    }

    /// Scalars (of the engine's element type) per SIMD word = `2 * lanes_c`.
    pub fn word_len(&self) -> usize {
        2 * self.lanes_c
    }

    // ---- memory ----

    /// Load one SIMD word from an interleaved slice (`svld1`).
    #[inline]
    pub fn load(&self, src: &[E]) -> CVec {
        CVec::from_reg(sv::svld1(&self.ctx, &self.pg, src))
    }

    /// Store one SIMD word to an interleaved slice (`svst1`).
    #[inline]
    pub fn store(&self, dst: &mut [E], v: CVec) {
        sv::svst1(&self.ctx, &self.pg, dst, &v.reg);
    }

    // ---- constants ----

    /// The zero word (cached; costs nothing per use).
    #[inline]
    pub fn zero(&self) -> CVec {
        CVec::from_reg(self.zero)
    }

    /// Broadcast a complex scalar into all complex lanes.
    pub fn splat(&self, z: Complex) -> CVec {
        // Two dups + zip would be faithful; a single `index`-style ld1rqd
        // would too. Model as one dup-pair (counted as 2 dup).
        let re = sv::svdup::<E>(&self.ctx, E::from_f64(z.re));
        let im = sv::svdup::<E>(&self.ctx, E::from_f64(z.im));
        CVec::from_reg(sv::svzip1::<E>(&self.ctx, &re, &im))
    }

    /// Broadcast a real scalar (imaginary parts zero).
    pub fn splat_re(&self, s: f64) -> CVec {
        self.splat(Complex::new(s, 0.0))
    }

    // ---- backend-independent lane arithmetic ----

    /// Lane-wise complex addition (`fadd`).
    #[inline]
    pub fn add(&self, a: CVec, b: CVec) -> CVec {
        CVec::from_reg(sv::svadd_x::<E>(&self.ctx, &self.pg, &a.reg, &b.reg))
    }

    /// Lane-wise complex subtraction (`fsub`).
    #[inline]
    pub fn sub(&self, a: CVec, b: CVec) -> CVec {
        CVec::from_reg(sv::svsub_x::<E>(&self.ctx, &self.pg, &a.reg, &b.reg))
    }

    /// Negate every lane (`fneg`).
    #[inline]
    pub fn neg(&self, a: CVec) -> CVec {
        CVec::from_reg(sv::svneg_x::<E>(&self.ctx, &self.pg, &a.reg))
    }

    /// Complex conjugate: negate the odd (imaginary) lanes — one merging
    /// `fneg`.
    #[inline]
    pub fn conj(&self, a: CVec) -> CVec {
        CVec::from_reg(sv::svneg_m::<E>(&self.ctx, &self.pg_odd, &a.reg))
    }

    /// Multiply every complex lane by the real parts of `s` lane-wise
    /// (`fmul` by a re-duplicated operand): Grid's `MultRealPart`.
    #[inline]
    pub fn mul_real_part(&self, s: CVec, a: CVec) -> CVec {
        let re_dup = sv::svtrn1::<E>(&self.ctx, &s.reg, &s.reg);
        CVec::from_reg(sv::svmul_x::<E>(&self.ctx, &self.pg, &re_dup, &a.reg))
    }

    /// Scale all lanes by a pre-splat real factor (plain `fmul`; `scale`
    /// must have equal re/im duplicates, as produced by [`Self::dup_real`]).
    #[inline]
    pub fn scale(&self, scale_dup: CVec, a: CVec) -> CVec {
        CVec::from_reg(sv::svmul_x::<E>(
            &self.ctx,
            &self.pg,
            &scale_dup.reg,
            &a.reg,
        ))
    }

    /// Duplicate a real factor across *all* (even and odd) lanes, for
    /// [`Self::scale`] and [`Self::axpy_word`].
    pub fn dup_real(&self, s: f64) -> CVec {
        CVec::from_reg(sv::svdup::<E>(&self.ctx, E::from_f64(s)))
    }

    /// Fused `y + a*x` with a real, pre-duplicated `a` — one `fmla`; the
    /// kernel of every BLAS-1 field operation in the solvers.
    #[inline]
    pub fn axpy_word(&self, a_dup: CVec, x: CVec, y: CVec) -> CVec {
        CVec::from_reg(sv::svmla_m::<E>(
            &self.ctx, &self.pg, &y.reg, &a_dup.reg, &x.reg,
        ))
    }

    // ---- backend-dispatched complex arithmetic ----

    /// Complex multiply `a * b` lane-wise.
    #[inline]
    pub fn mult(&self, a: CVec, b: CVec) -> CVec {
        self.madd(self.zero(), a, b)
    }

    /// Complex multiply-accumulate `acc + a * b` lane-wise.
    pub fn madd(&self, acc: CVec, a: CVec, b: CVec) -> CVec {
        match self.backend {
            SimdBackend::Fcmla => CVec::from_reg(sv::fcmla_mul_add::<E>(
                &self.ctx, &self.pg, &acc.reg, &a.reg, &b.reg,
            )),
            SimdBackend::RealArith => {
                // Section V-E: duplicate re/im parts, swap pairs, flip one
                // sign, two real FMAs. 6 instructions vs FCMLA's 2.
                let re_dup = sv::svtrn1::<E>(&self.ctx, &a.reg, &a.reg);
                let im_dup = sv::svtrn2::<E>(&self.ctx, &a.reg, &a.reg);
                let b_swap = sv::svtbl::<E>(&self.ctx, &b.reg, &self.swap_tbl);
                let b_swap_sgn = sv::svneg_m::<E>(&self.ctx, &self.pg_even, &b_swap);
                let t = sv::svmla_m::<E>(&self.ctx, &self.pg, &acc.reg, &re_dup, &b.reg);
                CVec::from_reg(sv::svmla_m::<E>(
                    &self.ctx,
                    &self.pg,
                    &t,
                    &im_dup,
                    &b_swap_sgn,
                ))
            }
            SimdBackend::GenericAutovec => {
                // Section IV-B as an in-register dance: de-interleave with
                // uzp, the listing's fmul/fmla/fnmls/movprfx body, zip back.
                let ar = sv::svuzp1::<E>(&self.ctx, &a.reg, &a.reg);
                let ai = sv::svuzp2::<E>(&self.ctx, &a.reg, &a.reg);
                let br = sv::svuzp1::<E>(&self.ctx, &b.reg, &b.reg);
                let bi = sv::svuzp2::<E>(&self.ctx, &b.reg, &b.reg);
                let z4 = sv::svmul_x::<E>(&self.ctx, &self.pg, &ar, &bi);
                let z5 = sv::svmul_x::<E>(&self.ctx, &self.pg, &ai, &bi);
                let z7 = sv::movprfx(&self.ctx, &z4);
                let im = sv::svmla_m::<E>(&self.ctx, &self.pg, &z7, &ai, &br);
                let z6 = sv::movprfx(&self.ctx, &z5);
                let re = sv::svnmls_m::<E>(&self.ctx, &self.pg, &z6, &ar, &br);
                let prod = sv::svzip1::<E>(&self.ctx, &re, &im);
                CVec::from_reg(sv::svadd_x::<E>(&self.ctx, &self.pg, &acc.reg, &prod))
            }
        }
    }

    /// Conjugated multiply `conj(a) * b` lane-wise.
    #[inline]
    pub fn mult_conj(&self, a: CVec, b: CVec) -> CVec {
        self.madd_conj(self.zero(), a, b)
    }

    /// Conjugated multiply-accumulate `acc + conj(a) * b` lane-wise — the
    /// `U†` side of the hopping term (paper Eq. (1)) and the kernel of inner
    /// products.
    pub fn madd_conj(&self, acc: CVec, a: CVec, b: CVec) -> CVec {
        match self.backend {
            SimdBackend::Fcmla => CVec::from_reg(sv::fcmla_conj_mul_add::<E>(
                &self.ctx, &self.pg, &acc.reg, &a.reg, &b.reg,
            )),
            SimdBackend::RealArith => {
                // re: +ar*br + ai*bi ; im: +ar*bi - ai*br.
                let re_dup = sv::svtrn1::<E>(&self.ctx, &a.reg, &a.reg);
                let im_dup = sv::svtrn2::<E>(&self.ctx, &a.reg, &a.reg);
                let b_swap = sv::svtbl::<E>(&self.ctx, &b.reg, &self.swap_tbl);
                let b_swap_sgn = sv::svneg_m::<E>(&self.ctx, &self.pg_odd, &b_swap);
                let t = sv::svmla_m::<E>(&self.ctx, &self.pg, &acc.reg, &re_dup, &b.reg);
                CVec::from_reg(sv::svmla_m::<E>(
                    &self.ctx,
                    &self.pg,
                    &t,
                    &im_dup,
                    &b_swap_sgn,
                ))
            }
            SimdBackend::GenericAutovec => {
                let ar = sv::svuzp1::<E>(&self.ctx, &a.reg, &a.reg);
                let ai = sv::svuzp2::<E>(&self.ctx, &a.reg, &a.reg);
                let br = sv::svuzp1::<E>(&self.ctx, &b.reg, &b.reg);
                let bi = sv::svuzp2::<E>(&self.ctx, &b.reg, &b.reg);
                // re = ar*br + ai*bi ; im = ar*bi - ai*br
                let t0 = sv::svmul_x::<E>(&self.ctx, &self.pg, &ai, &bi);
                let re = sv::svmla_m::<E>(&self.ctx, &self.pg, &t0, &ar, &br);
                let t1 = sv::svmul_x::<E>(&self.ctx, &self.pg, &ai, &br);
                let im = sv::svnmls_m::<E>(&self.ctx, &self.pg, &t1, &ar, &bi);
                let prod = sv::svzip1::<E>(&self.ctx, &re, &im);
                CVec::from_reg(sv::svadd_x::<E>(&self.ctx, &self.pg, &acc.reg, &prod))
            }
        }
    }

    /// Multiply every complex lane by `+i` (Grid's `timesI`).
    pub fn times_i(&self, a: CVec) -> CVec {
        match self.backend {
            SimdBackend::Fcmla => CVec::from_reg(sv::svcadd::<E>(
                &self.ctx,
                &self.pg,
                &self.zero,
                &a.reg,
                Rot::R90,
            )),
            _ => {
                // (re, im) -> (-im, re): pair swap + negate even lanes.
                let sw = sv::svtbl::<E>(&self.ctx, &a.reg, &self.swap_tbl);
                CVec::from_reg(sv::svneg_m::<E>(&self.ctx, &self.pg_even, &sw))
            }
        }
    }

    /// Multiply every complex lane by `-i` (Grid's `timesMinusI`).
    pub fn times_minus_i(&self, a: CVec) -> CVec {
        match self.backend {
            SimdBackend::Fcmla => CVec::from_reg(sv::svcadd::<E>(
                &self.ctx,
                &self.pg,
                &self.zero,
                &a.reg,
                Rot::R270,
            )),
            _ => {
                let sw = sv::svtbl::<E>(&self.ctx, &a.reg, &self.swap_tbl);
                CVec::from_reg(sv::svneg_m::<E>(&self.ctx, &self.pg_odd, &sw))
            }
        }
    }

    /// Lane select (`svsel`): active lanes of `mask` from `a`, inactive
    /// from `b`. Used by the even-odd machinery to mask parities within a
    /// word (both f64 lanes of a complex element must agree in `mask`).
    #[inline]
    pub fn select_lanes(&self, mask: &PReg, a: CVec, b: CVec) -> CVec {
        CVec::from_reg(sv::svsel::<E>(&self.ctx, mask, &a.reg, &b.reg))
    }

    // ---- permutation (virtual-node boundary shuffles) ----

    /// Permute complex lanes: output complex lane `p` takes input complex
    /// lane `perm[p]` (`svtbl` on the expanded f64 index table).
    pub fn permute(&self, a: CVec, perm: &[usize]) -> CVec {
        self.permute_elems(a, &self.expand_perm(perm))
    }

    /// Permute with a precomputed *element* index table (length `2 *
    /// lanes_c`, as produced by [`Self::expand_perm`]). This is the
    /// allocation-free hot path used by the stencil; [`Self::permute`]
    /// expands its complex-lane table on every call.
    #[inline]
    pub fn permute_elems(&self, a: CVec, tbl: &[usize]) -> CVec {
        debug_assert_eq!(tbl.len(), 2 * self.lanes_c);
        CVec::from_reg(sv::svtbl::<E>(&self.ctx, &a.reg, tbl))
    }

    /// Expand a complex-lane permutation to the element-index table
    /// [`Self::permute_elems`] consumes (done once at stencil build).
    pub fn expand_perm(&self, perm: &[usize]) -> Vec<usize> {
        debug_assert_eq!(perm.len(), self.lanes_c);
        let mut tbl = vec![0usize; 2 * self.lanes_c];
        for (p, &src) in perm.iter().enumerate() {
            tbl[2 * p] = 2 * src;
            tbl[2 * p + 1] = 2 * src + 1;
        }
        tbl
    }

    // ---- reductions and lane access ----

    /// Sum the complex lanes to a scalar (`uzp1`/`uzp2` + two `faddv`):
    /// Grid's `Reduce`.
    pub fn reduce_sum(&self, a: CVec) -> Complex {
        let re = sv::svuzp1::<E>(&self.ctx, &a.reg, &a.reg);
        let im = sv::svuzp2::<E>(&self.ctx, &a.reg, &a.reg);
        Complex::new(
            sv::svaddv::<E>(&self.ctx, &self.pg_half, &re).to_f64(),
            sv::svaddv::<E>(&self.ctx, &self.pg_half, &im).to_f64(),
        )
    }

    /// Sum of `|lane|^2` over all complex lanes (`fmul` + `faddv`).
    pub fn norm2(&self, a: CVec) -> f64 {
        let sq = sv::svmul_x::<E>(&self.ctx, &self.pg, &a.reg, &a.reg);
        sv::svaddv::<E>(&self.ctx, &self.pg, &sq).to_f64()
    }

    /// Read complex lane `p` (test/debug path; not an SVE operation).
    pub fn lane(&self, a: CVec, p: usize) -> Complex {
        Complex::new(
            a.reg.lane::<E>(2 * p).to_f64(),
            a.reg.lane::<E>(2 * p + 1).to_f64(),
        )
    }

    /// Build a word from a per-lane function (test/debug path).
    pub fn from_fn(&self, mut f: impl FnMut(usize) -> Complex) -> CVec {
        let lanes_c = self.lanes_c;
        CVec::from_reg(VReg::from_fn::<E>(self.ctx.vl(), |e| {
            let z = f((e / 2).min(lanes_c - 1));
            E::from_f64(if e % 2 == 0 { z.re } else { z.im })
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sve::VectorLength;

    fn engines() -> Vec<SimdEngine> {
        SimdBackend::all()
            .into_iter()
            .map(|b| SimdEngine::new(Arc::new(SveCtx::new(VectorLength::of(512))), b))
            .collect()
    }

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn approx(a: Complex, b: Complex) -> bool {
        (a - b).abs() <= 1e-12 * b.abs().max(1.0)
    }

    #[test]
    fn load_store_round_trip() {
        for eng in engines() {
            let data: Vec<f64> = (0..eng.word_len()).map(|i| i as f64 * 0.5).collect();
            let v = eng.load(&data);
            let mut out = vec![0.0; eng.word_len()];
            eng.store(&mut out, v);
            assert_eq!(out, data, "{:?}", eng.backend());
        }
    }

    #[test]
    fn all_backends_multiply_identically() {
        let mut results = Vec::new();
        for eng in engines() {
            let a = eng.from_fn(|p| c(p as f64 + 1.0, -(p as f64) * 0.5));
            let b = eng.from_fn(|p| c(0.5 - p as f64, 2.0 + p as f64));
            let r = eng.mult(a, b);
            results.push(
                (0..eng.lanes_c())
                    .map(|p| eng.lane(r, p))
                    .collect::<Vec<_>>(),
            );
        }
        for p in 0..results[0].len() {
            let want = c(p as f64 + 1.0, -(p as f64) * 0.5) * c(0.5 - p as f64, 2.0 + p as f64);
            for (bi, res) in results.iter().enumerate() {
                assert!(
                    approx(res[p], want),
                    "backend {bi} lane {p}: {:?} vs {want:?}",
                    res[p]
                );
            }
        }
    }

    #[test]
    fn madd_accumulates() {
        for eng in engines() {
            let acc = eng.from_fn(|_| c(10.0, -10.0));
            let a = eng.from_fn(|_| c(1.0, 2.0));
            let b = eng.from_fn(|_| c(3.0, -1.0));
            let r = eng.madd(acc, a, b);
            let want = c(10.0, -10.0) + c(1.0, 2.0) * c(3.0, -1.0);
            assert!(approx(eng.lane(r, 0), want), "{:?}", eng.backend());
        }
    }

    #[test]
    fn conjugated_multiply_all_backends() {
        for eng in engines() {
            let a = eng.from_fn(|p| c(1.5, p as f64 - 1.0));
            let b = eng.from_fn(|p| c(-0.5 * p as f64, 2.0));
            let r = eng.mult_conj(a, b);
            for p in 0..eng.lanes_c() {
                let want = c(1.5, p as f64 - 1.0).conj() * c(-0.5 * p as f64, 2.0);
                assert!(approx(eng.lane(r, p), want), "{:?} lane {p}", eng.backend());
            }
        }
    }

    #[test]
    fn times_i_and_conj() {
        for eng in engines() {
            let a = eng.from_fn(|p| c(2.0 + p as f64, -1.0));
            let ti = eng.times_i(a);
            let tmi = eng.times_minus_i(a);
            let cj = eng.conj(a);
            for p in 0..eng.lanes_c() {
                let z = c(2.0 + p as f64, -1.0);
                assert_eq!(eng.lane(ti, p), z.times_i(), "{:?}", eng.backend());
                assert_eq!(eng.lane(tmi, p), z.times_minus_i());
                assert_eq!(eng.lane(cj, p), z.conj());
            }
        }
    }

    #[test]
    fn add_sub_neg_scale() {
        for eng in engines() {
            let a = eng.from_fn(|p| c(p as f64, 1.0));
            let b = eng.from_fn(|p| c(1.0, p as f64));
            assert_eq!(eng.lane(eng.add(a, b), 2), c(3.0, 3.0));
            assert_eq!(eng.lane(eng.sub(a, b), 2), c(1.0, -1.0));
            assert_eq!(eng.lane(eng.neg(a), 2), c(-2.0, -1.0));
            let s = eng.dup_real(2.5);
            assert_eq!(eng.lane(eng.scale(s, a), 2), c(5.0, 2.5));
        }
    }

    #[test]
    fn permute_rotates_complex_lanes() {
        for eng in engines() {
            let lanes = eng.lanes_c();
            let a = eng.from_fn(|p| c(p as f64, 100.0 + p as f64));
            let perm: Vec<usize> = (0..lanes).map(|p| (p + 1) % lanes).collect();
            let r = eng.permute(a, &perm);
            for p in 0..lanes {
                let src = (p + 1) % lanes;
                assert_eq!(eng.lane(r, p), c(src as f64, 100.0 + src as f64));
            }
        }
    }

    #[test]
    fn reduce_and_norm() {
        for eng in engines() {
            let a = eng.from_fn(|p| c(p as f64 + 1.0, -1.0));
            let lanes = eng.lanes_c() as f64;
            let sum = eng.reduce_sum(a);
            assert!((sum.re - (lanes * (lanes + 1.0) / 2.0)).abs() < 1e-12);
            assert!((sum.im + lanes).abs() < 1e-12);
            let n2 = eng.norm2(a);
            let want: f64 = (0..eng.lanes_c())
                .map(|p| c(p as f64 + 1.0, -1.0).norm2())
                .sum();
            assert!((n2 - want).abs() < 1e-12);
        }
    }

    #[test]
    fn splat_fills_all_lanes() {
        for eng in engines() {
            let v = eng.splat(c(3.0, -4.0));
            for p in 0..eng.lanes_c() {
                assert_eq!(eng.lane(v, p), c(3.0, -4.0));
            }
        }
    }

    #[test]
    fn mul_real_part_uses_only_real_components() {
        for eng in engines() {
            let s = eng.from_fn(|_| c(2.0, 999.0)); // imaginary must be ignored
            let a = eng.from_fn(|_| c(3.0, -5.0));
            let r = eng.mul_real_part(s, a);
            assert_eq!(eng.lane(r, 0), c(6.0, -10.0));
        }
    }

    #[test]
    fn backend_instruction_counts_are_ordered() {
        // FCMLA: 2 arith instructions per madd. RealArith: 6. Autovec: 12.
        use sve::Opcode;
        let mut totals = Vec::new();
        for eng in engines() {
            let before = eng.ctx().counters().total();
            let a = eng.from_fn(|_| c(1.0, 1.0));
            let b = eng.from_fn(|_| c(1.0, -1.0));
            let acc = eng.zero();
            let _ = eng.madd(acc, a, b);
            totals.push((eng.backend(), eng.ctx().counters().total() - before));
        }
        let fcmla = totals.iter().find(|t| t.0 == SimdBackend::Fcmla).unwrap().1;
        let real = totals
            .iter()
            .find(|t| t.0 == SimdBackend::RealArith)
            .unwrap()
            .1;
        let auto = totals
            .iter()
            .find(|t| t.0 == SimdBackend::GenericAutovec)
            .unwrap()
            .1;
        assert!(fcmla < real, "fcmla {fcmla} !< real {real}");
        assert!(real < auto, "real {real} !< autovec {auto}");
        // And the FCMLA backend issues exactly two fcmla per madd.
        let eng = SimdEngine::<f64>::new(
            Arc::new(SveCtx::new(VectorLength::of(256))),
            SimdBackend::Fcmla,
        );
        let a = eng.zero();
        let _ = eng.madd(a, a, a);
        assert_eq!(eng.ctx().counters().get(Opcode::Fcmla), 2);
    }

    #[test]
    fn works_at_every_vector_length() {
        for vl in VectorLength::sweep() {
            for backend in SimdBackend::all() {
                let eng = SimdEngine::<f64>::new(Arc::new(SveCtx::new(vl)), backend);
                let a = eng.from_fn(|p| c(p as f64, 1.0));
                let b = eng.from_fn(|p| c(1.0, -(p as f64)));
                let r = eng.mult(a, b);
                for p in 0..eng.lanes_c() {
                    let want = c(p as f64, 1.0) * c(1.0, -(p as f64));
                    assert!(approx(eng.lane(r, p), want), "{vl} {backend:?} lane {p}");
                }
            }
        }
    }

    #[test]
    fn single_precision_engine_has_twice_the_lanes() {
        for vl in VectorLength::sweep() {
            let e64 = SimdEngine::<f64>::new(Arc::new(SveCtx::new(vl)), SimdBackend::Fcmla);
            let e32 = SimdEngine::<f32>::new(Arc::new(SveCtx::new(vl)), SimdBackend::Fcmla);
            assert_eq!(e32.lanes_c(), 2 * e64.lanes_c());
            // Complex multiply correct in f32 on all backends.
            for backend in SimdBackend::all() {
                let eng = SimdEngine::<f32>::new(Arc::new(SveCtx::new(vl)), backend);
                let a = eng.from_fn(|p| c(p as f64 * 0.5, 1.0));
                let b = eng.from_fn(|p| c(1.0, -(p as f64) * 0.25));
                let r = eng.mult(a, b);
                for p in 0..eng.lanes_c() {
                    let want = c(p as f64 * 0.5, 1.0) * c(1.0, -(p as f64) * 0.25);
                    assert!((eng.lane(r, p) - want).abs() < 1e-5, "{vl} {backend:?}");
                }
            }
        }
    }
}
