//! SIMD backend selection and the architecture table.
//!
//! Grid confines machine-specific code to a small abstraction layer with one
//! implementation per SIMD family (paper, Table I). This reproduction keeps
//! the table and adds the SVE entries the paper contributes, in the three
//! arithmetic styles it discusses.

use sve::VectorLength;

/// How complex arithmetic is lowered to vector instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SimdBackend {
    /// The paper's chosen strategy (Sections IV-D, V-C): dedicated complex
    /// instructions — two `FCMLA` per multiply, `FCADD` for `±i` factors —
    /// on interleaved (re,im) data.
    Fcmla,
    /// The paper's fallback (Section V-E): complex arithmetic "based on
    /// instructions for real arithmetics at the cost of higher instruction
    /// count" — in-register de-interleave/duplicate permutes plus real FMAs.
    RealArith,
    /// What the armclang 18 auto-vectorizer produced (Section IV-B): split
    /// re/im processing with real arithmetic, modelled in-register by a full
    /// de-interleave → 4 real ops + 2 `movprfx` → re-interleave round trip.
    GenericAutovec,
}

impl SimdBackend {
    /// All backends, for sweeps.
    pub fn all() -> [SimdBackend; 3] {
        [
            SimdBackend::Fcmla,
            SimdBackend::RealArith,
            SimdBackend::GenericAutovec,
        ]
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Fcmla => "sve-fcmla",
            SimdBackend::RealArith => "sve-real",
            SimdBackend::GenericAutovec => "generic",
        }
    }
}

/// One row of the supported-architecture table (paper, Table I, extended
/// with the SVE rows this work adds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArchRow {
    /// SIMD family name.
    pub family: &'static str,
    /// Supported vector lengths in bits (empty = user-defined).
    pub vector_bits: &'static [usize],
    /// Whether the entry is contributed by the paper's port.
    pub sve_contribution: bool,
}

/// The architectures supported by Grid at the time of the paper (Table I)
/// plus the SVE support the paper adds (Section V-B: 128/256/512 enabled,
/// wider vectors "possible but specialization ... necessary" — implemented
/// here through 2048).
pub fn architecture_table() -> Vec<ArchRow> {
    vec![
        ArchRow {
            family: "Intel SSE4",
            vector_bits: &[128],
            sve_contribution: false,
        },
        ArchRow {
            family: "Intel AVX/AVX2",
            vector_bits: &[256],
            sve_contribution: false,
        },
        ArchRow {
            family: "Intel ICMI, AVX-512",
            vector_bits: &[512],
            sve_contribution: false,
        },
        ArchRow {
            family: "IBM QPX",
            vector_bits: &[256],
            sve_contribution: false,
        },
        ArchRow {
            family: "ARM NEONv8",
            vector_bits: &[128],
            sve_contribution: false,
        },
        ArchRow {
            family: "generic C/C++",
            vector_bits: &[],
            sve_contribution: false,
        },
        ArchRow {
            family: "ARM SVE (this work)",
            vector_bits: &[128, 256, 512],
            sve_contribution: true,
        },
        ArchRow {
            family: "ARM SVE (future-work widths, implemented here)",
            vector_bits: &[1024, 2048],
            sve_contribution: true,
        },
    ]
}

/// Vector lengths enabled for the SVE port in this reproduction.
pub fn supported_vector_lengths() -> Vec<VectorLength> {
    VectorLength::sweep().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_papers_rows() {
        let table = architecture_table();
        let families: Vec<_> = table.iter().map(|r| r.family).collect();
        for f in [
            "Intel SSE4",
            "Intel AVX/AVX2",
            "Intel ICMI, AVX-512",
            "IBM QPX",
            "ARM NEONv8",
            "generic C/C++",
        ] {
            assert!(families.contains(&f), "{f} missing");
        }
    }

    #[test]
    fn sve_rows_cover_paper_and_future_widths() {
        let sve: Vec<_> = architecture_table()
            .into_iter()
            .filter(|r| r.sve_contribution)
            .flat_map(|r| r.vector_bits.to_vec())
            .collect();
        assert_eq!(sve, vec![128, 256, 512, 1024, 2048]);
        assert_eq!(supported_vector_lengths().len(), 5);
    }

    #[test]
    fn backend_names_unique() {
        let names: Vec<_> = SimdBackend::all().iter().map(|b| b.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }
}
