//! The paper's functor layer (Section V-C).
//!
//! Grid wires architecture-specific arithmetic into its expression templates
//! through small function objects (`MultComplex`, `TimesI`, ...). The
//! listing in Section V-C shows `MultComplex` implemented with two
//! `svcmla_x` calls on data loaded from a `vec<T>`'s member array — these
//! structs are the same objects, operating on in-memory words exactly like
//! the listing (load → ACLE compute → store), so their instruction counts
//! include the `ld1`/`st1` traffic the paper's code performs.

use crate::simd::engine::SimdEngine;
use sve::SveFloat;

/// Shared shape of the word-level functors: read operand words from
/// interleaved slices, compute, write the result word.
pub trait WordFunctor {
    /// Apply to one SIMD word: `out = f(x, y)`.
    fn apply<E: SveFloat>(&self, eng: &SimdEngine<E>, x: &[E], y: &[E], out: &mut [E]);
}

/// `MultComplex` — the Section V-C listing: `out_i = x_i * y_i`.
pub struct MultComplex;

impl WordFunctor for MultComplex {
    fn apply<E: SveFloat>(&self, eng: &SimdEngine<E>, x: &[E], y: &[E], out: &mut [E]) {
        let xv = eng.load(x);
        let yv = eng.load(y);
        let r = eng.mult(xv, yv);
        eng.store(out, r);
    }
}

/// `MultConjComplex` — `out_i = conj(x_i) * y_i` (the `U†` data path).
pub struct MultConjComplex;

impl WordFunctor for MultConjComplex {
    fn apply<E: SveFloat>(&self, eng: &SimdEngine<E>, x: &[E], y: &[E], out: &mut [E]) {
        let xv = eng.load(x);
        let yv = eng.load(y);
        let r = eng.mult_conj(xv, yv);
        eng.store(out, r);
    }
}

/// `MaddComplex` — `out_i += x_i * y_i`.
pub struct MaddComplex;

impl WordFunctor for MaddComplex {
    fn apply<E: SveFloat>(&self, eng: &SimdEngine<E>, x: &[E], y: &[E], out: &mut [E]) {
        let acc = eng.load(out);
        let xv = eng.load(x);
        let yv = eng.load(y);
        let r = eng.madd(acc, xv, yv);
        eng.store(out, r);
    }
}

/// `MultRealPart` — `out_i = Re(x_i) * y_i`.
pub struct MultRealPart;

impl WordFunctor for MultRealPart {
    fn apply<E: SveFloat>(&self, eng: &SimdEngine<E>, x: &[E], y: &[E], out: &mut [E]) {
        let xv = eng.load(x);
        let yv = eng.load(y);
        let r = eng.mul_real_part(xv, yv);
        eng.store(out, r);
    }
}

/// `AddComplex` — `out_i = x_i + y_i`.
pub struct AddComplex;

impl WordFunctor for AddComplex {
    fn apply<E: SveFloat>(&self, eng: &SimdEngine<E>, x: &[E], y: &[E], out: &mut [E]) {
        let xv = eng.load(x);
        let yv = eng.load(y);
        let r = eng.add(xv, yv);
        eng.store(out, r);
    }
}

/// `SubComplex` — `out_i = x_i - y_i`.
pub struct SubComplex;

impl WordFunctor for SubComplex {
    fn apply<E: SveFloat>(&self, eng: &SimdEngine<E>, x: &[E], y: &[E], out: &mut [E]) {
        let xv = eng.load(x);
        let yv = eng.load(y);
        let r = eng.sub(xv, yv);
        eng.store(out, r);
    }
}

/// Unary functors: `Conj`, `TimesI`, `TimesMinusI` (Grid names).
pub trait UnaryWordFunctor {
    /// Apply to one SIMD word: `out = f(x)`.
    fn apply<E: SveFloat>(&self, eng: &SimdEngine<E>, x: &[E], out: &mut [E]);
}

/// `Conj` — lane-wise complex conjugation.
pub struct Conj;

impl UnaryWordFunctor for Conj {
    fn apply<E: SveFloat>(&self, eng: &SimdEngine<E>, x: &[E], out: &mut [E]) {
        let xv = eng.load(x);
        let r = eng.conj(xv);
        eng.store(out, r);
    }
}

/// `TimesI` — lane-wise multiplication by `+i`.
pub struct TimesI;

impl UnaryWordFunctor for TimesI {
    fn apply<E: SveFloat>(&self, eng: &SimdEngine<E>, x: &[E], out: &mut [E]) {
        let xv = eng.load(x);
        let r = eng.times_i(xv);
        eng.store(out, r);
    }
}

/// `TimesMinusI` — lane-wise multiplication by `-i`.
pub struct TimesMinusI;

impl UnaryWordFunctor for TimesMinusI {
    fn apply<E: SveFloat>(&self, eng: &SimdEngine<E>, x: &[E], out: &mut [E]) {
        let xv = eng.load(x);
        let r = eng.times_minus_i(xv);
        eng.store(out, r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::backend::SimdBackend;
    use crate::Complex;
    use std::sync::Arc;
    use sve::{SveCtx, VectorLength};

    fn eng(backend: SimdBackend) -> SimdEngine {
        SimdEngine::new(Arc::new(SveCtx::new(VectorLength::of(512))), backend)
    }

    fn word(eng: &SimdEngine, f: impl Fn(usize) -> Complex) -> Vec<f64> {
        let mut v = vec![0.0; eng.word_len()];
        for p in 0..eng.lanes_c() {
            let z = f(p);
            v[2 * p] = z.re;
            v[2 * p + 1] = z.im;
        }
        v
    }

    #[test]
    fn mult_complex_matches_section_vc_semantics() {
        for backend in SimdBackend::all() {
            let eng = eng(backend);
            let x = word(&eng, |p| Complex::new(1.0 + p as f64, -0.5));
            let y = word(&eng, |p| Complex::new(0.5, p as f64));
            let mut out = vec![0.0; eng.word_len()];
            MultComplex.apply(&eng, &x, &y, &mut out);
            for p in 0..eng.lanes_c() {
                let want = Complex::new(1.0 + p as f64, -0.5) * Complex::new(0.5, p as f64);
                assert!((out[2 * p] - want.re).abs() < 1e-12, "{backend:?}");
                assert!((out[2 * p + 1] - want.im).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn madd_adds_into_out() {
        let eng = eng(SimdBackend::Fcmla);
        let x = word(&eng, |_| Complex::new(2.0, 0.0));
        let y = word(&eng, |_| Complex::new(0.0, 3.0));
        let mut out = word(&eng, |_| Complex::new(1.0, 1.0));
        MaddComplex.apply(&eng, &x, &y, &mut out);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[1], 7.0);
    }

    #[test]
    fn unary_functors() {
        for backend in SimdBackend::all() {
            let eng = eng(backend);
            let x = word(&eng, |p| Complex::new(p as f64, 1.0));
            let mut out = vec![0.0; eng.word_len()];
            Conj.apply(&eng, &x, &mut out);
            assert_eq!(out[1], -1.0);
            TimesI.apply(&eng, &x, &mut out);
            assert_eq!((out[0], out[1]), (-1.0, 0.0));
            TimesMinusI.apply(&eng, &x, &mut out);
            assert_eq!((out[0], out[1]), (1.0, -0.0));
        }
    }

    #[test]
    fn fcmla_mult_complex_instruction_budget_matches_listing() {
        // The Section V-C listing: 2 x svld1 + 2 x svcmla + 1 x svst1.
        use sve::Opcode;
        let eng = eng(SimdBackend::Fcmla);
        let x = word(&eng, |_| Complex::ONE);
        let y = word(&eng, |_| Complex::I);
        let mut out = vec![0.0; eng.word_len()];
        eng.ctx().counters().reset();
        MultComplex.apply(&eng, &x, &y, &mut out);
        assert_eq!(eng.ctx().counters().get(Opcode::Ld1), 2);
        assert_eq!(eng.ctx().counters().get(Opcode::Fcmla), 2);
        assert_eq!(eng.ctx().counters().get(Opcode::St1), 1);
        assert_eq!(eng.ctx().counters().total(), 5);
    }
}
