//! The SIMD abstraction layer — the machine-specific core of the port.
//!
//! Grid is "designed to maximize the flexibility in choosing the data layout
//! ... without compromising on portability", confining machine-specific
//! code to a small abstraction layer (paper, Section II-C). This module is
//! that layer for SVE: [`SimdEngine`] (the `acle<T>` analog) lowers complex
//! arithmetic to one of three instruction strategies ([`SimdBackend`]), and
//! the [`functors`] mirror the paper's Section V-C function objects.

pub mod backend;
pub mod engine;
pub mod functors;

pub use backend::{architecture_table, supported_vector_lengths, ArchRow, SimdBackend};
pub use engine::{CVec, SimdEngine};
