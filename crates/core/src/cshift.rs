//! Circular shift of whole fields — Grid's `Cshift`.
//!
//! `cshift(f, mu, +1)(x) = f(x + µ̂)` with periodic wrap-around. On the
//! virtual-node layout this is a pure data-movement kernel: one load per
//! word, plus a lane permutation on the sub-lattice boundary — the
//! data-parallel primitive many of Grid's ready-made tests are built from
//! (paper, Section V-D).

use crate::field::{Field, FieldKind};
use crate::stencil::{dir_index, Stencil};
use sve::SveFloat;

/// Shifted copy: `out(x) = f(x + disp * µ̂)` for `disp = ±1`.
pub fn cshift<K: FieldKind, E: SveFloat>(f: &Field<K, E>, mu: usize, disp: i32) -> Field<K, E> {
    assert!(disp == 1 || disp == -1, "cshift supports displacement ±1");
    let stencil = Stencil::new(f.grid().clone());
    cshift_with(&stencil, f, mu, disp)
}

/// [`cshift`] with a caller-provided (reusable) stencil.
pub fn cshift_with<K: FieldKind, E: SveFloat>(
    stencil: &Stencil<E>,
    f: &Field<K, E>,
    mu: usize,
    disp: i32,
) -> Field<K, E> {
    let grid = f.grid().clone();
    let eng = grid.engine();
    let _span = qcd_trace::span!("cshift", eng.ctx());
    let sites = grid.volume() as u64;
    let word_bytes = (K::NCOMP * 2 * std::mem::size_of::<E>()) as u64;
    qcd_trace::record_sites(sites);
    qcd_trace::record_bytes(sites * word_bytes, sites * word_bytes);
    let dir = dir_index(mu, disp == 1);
    let mut out = Field::<K, E>::zero(grid.clone());
    for osite in 0..grid.osites() {
        let entry = stencil.leg(dir, osite);
        for comp in 0..K::NCOMP {
            let v = stencil.fetch(f, comp, entry);
            eng.store(out.word_mut(osite, comp), v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::field::{ComplexField, FermionField};
    use crate::layout::Grid;
    use crate::simd::SimdBackend;
    use sve::VectorLength;

    fn coord_field(grid: &std::sync::Arc<Grid>) -> ComplexField {
        let mut f = ComplexField::zero(grid.clone());
        for x in grid.coords() {
            f.poke(
                &x,
                0,
                Complex::new(grid.global_index(&x) as f64, x[0] as f64),
            );
        }
        f
    }

    #[test]
    fn shift_moves_every_site_correctly() {
        for bits in [128, 512, 2048] {
            let grid = Grid::new([4, 4, 4, 8], VectorLength::of(bits), SimdBackend::Fcmla);
            let f = coord_field(&grid);
            for mu in 0..4 {
                let s = cshift(&f, mu, 1);
                for x in grid.coords() {
                    let mut y = x;
                    y[mu] = (y[mu] + 1) % grid.fdims()[mu];
                    assert_eq!(s.peek(&x, 0), f.peek(&y, 0), "vl={bits} mu={mu} {x:?}");
                }
            }
        }
    }

    #[test]
    fn forward_backward_round_trip() {
        let grid = Grid::new([4, 4, 4, 8], VectorLength::of(512), SimdBackend::Fcmla);
        let f = FermionField::random(grid.clone(), 3);
        for mu in 0..4 {
            let round = cshift(&cshift(&f, mu, 1), mu, -1);
            assert_eq!(round.max_abs_diff(&f), 0.0, "mu={mu}");
        }
    }

    #[test]
    fn l_shifts_wrap_to_identity() {
        let grid = Grid::new([4, 4, 4, 8], VectorLength::of(1024), SimdBackend::Fcmla);
        let f = FermionField::random(grid.clone(), 4);
        for mu in 0..4 {
            let mut s = f.clone();
            for _ in 0..grid.fdims()[mu] {
                s = cshift(&s, mu, 1);
            }
            assert_eq!(s.max_abs_diff(&f), 0.0, "mu={mu}");
        }
    }

    #[test]
    fn shift_is_norm_preserving() {
        let grid = Grid::new([4, 4, 4, 4], VectorLength::of(256), SimdBackend::Fcmla);
        let f = FermionField::random(grid.clone(), 5);
        let s = cshift(&f, 3, 1);
        assert!((s.norm2() - f.norm2()).abs() < 1e-9 * f.norm2());
    }
}
