//! Even-odd (red-black) preconditioning of the Wilson operator.
//!
//! The hopping term connects only sites of opposite parity
//! (checkerboards), so the Wilson operator is 2×2 block-structured:
//!
//! ```text
//! M = [  a·1      -½ D_eo ]          a = m + 4
//!     [ -½ D_oe    a·1    ]
//! ```
//!
//! Eliminating the odd block gives the Schur complement on the even
//! checkerboard, `S = a − D_eo D_oe / (4a)`, a better-conditioned operator
//! on half the degrees of freedom — the standard production solver
//! formulation in Grid (its `SchurRedBlack` family). Parity in the
//! virtual-node layout is interesting in its own right: a SIMD word mixes
//! both parities (lanes belong to different virtual nodes), so checkerboard
//! projection is a predicated lane-select (`svsel`), not a slice operation.
//!
//! Storage note: unlike Grid, which compacts checkerboards into half-volume
//! fields, this implementation keeps full-volume fields with the opposite
//! parity zeroed. The *iteration-count* benefit of the preconditioning is
//! preserved and measured; the memory-halving is not (documented
//! simplification).

use crate::dirac::{gamma5_block_inplace, gamma5_inplace, WilsonDirac};
use crate::field::{FermionBlock, FermionField, Field, FieldKind};
use crate::layout::{delex, Grid, NDIM};
use crate::solver::{
    block_cg_ws_from_state, cg_ws_from_state, BlockCgState, BlockSolveReport, BlockWorkspace,
    CgState, SolveReport, SolverWorkspace,
};
use std::sync::Arc;
use sve::PReg;

/// Parity masks for a grid: `mask[q]` activates the f64 lanes of complex
/// lanes whose *virtual-node* coordinate has parity `q`.
pub fn vnode_parity_masks(grid: &Grid) -> [PReg; 2] {
    let sl = grid.simd_layout();
    let mut masks = [PReg::none(), PReg::none()];
    for l in 0..grid.lanes_c() {
        let n = delex(l, &sl);
        let q = n.iter().sum::<usize>() % 2;
        masks[q].set_elem_active::<f64>(2 * l, true);
        masks[q].set_elem_active::<f64>(2 * l + 1, true);
    }
    masks
}

/// Project a field onto one checkerboard: sites of the other parity are
/// zeroed. One predicated `svsel` per word.
pub fn parity_project<K: FieldKind>(f: &Field<K>, parity: usize) -> Field<K> {
    assert!(parity < 2);
    let grid = f.grid().clone();
    let eng = grid.engine();
    let masks = vnode_parity_masks(&grid);
    let mut out = Field::<K>::zero(grid.clone());
    let zero = eng.zero();
    for osite in 0..grid.osites() {
        // Site parity = parity(vnode origin) + parity(inner coordinate);
        // the mask activating lanes of the requested parity is the same for
        // every component of the site.
        let mask = osite_parity_mask(&grid, &masks, osite, parity);
        for comp in 0..K::NCOMP {
            let v = eng.load(f.word(osite, comp));
            let r = eng.select_lanes(&mask, v, zero);
            eng.store(out.word_mut(osite, comp), r);
        }
    }
    out
}

/// The per-osite lane mask selecting lanes of global parity `parity`.
fn osite_parity_mask(grid: &Grid, masks: &[PReg; 2], osite: usize, parity: usize) -> PReg {
    let rd = grid.rdims();
    let sl = grid.simd_layout();
    let inner = delex(osite, &rd);
    let p_inner = inner.iter().sum::<usize>() % 2;
    // Lane l's vnode origin parity: Σ_d n[d]*rd[d] (mod 2). If every block
    // extent rd[d] is even, all origins are even and the two vnode parity
    // classes collapse; recompute exactly per lane in that case.
    let origins_follow_vnode_parity = (0..NDIM).all(|d| rd[d] % 2 == 1);
    if origins_follow_vnode_parity {
        // origin parity == vnode parity, so class q = parity - p_inner.
        let q = (2 + parity - p_inner) % 2;
        masks[q]
    } else {
        let mut mask = PReg::none();
        for l in 0..grid.lanes_c() {
            let n = delex(l, &sl);
            let origin: usize = (0..NDIM).map(|d| n[d] * rd[d]).sum();
            if (origin + p_inner) % 2 == parity {
                mask.set_elem_active::<f64>(2 * l, true);
                mask.set_elem_active::<f64>(2 * l + 1, true);
            }
        }
        mask
    }
}

/// Schur-complement (even-odd preconditioned) Wilson solve: `M x = b`
/// through CG on the normal equations of `S = a − Dh²/(4a)` restricted to
/// the even checkerboard, followed by back-substitution for the odd sites.
///
/// Runs on the allocation-free path: one [`SolverWorkspace`] carries every
/// hopping intermediate of the nested `S†S` application, so a steady-state
/// CG iteration (four hopping sweeps plus the fused BLAS) allocates
/// nothing.
pub fn solve_eo(
    op: &WilsonDirac,
    b: &FermionField,
    tol: f64,
    max_iter: usize,
) -> (FermionField, SolveReport) {
    let grid: Arc<Grid> = b.grid().clone();
    let span = qcd_trace::span!("solver.eo", grid.engine().ctx());
    let a = op.mass + 4.0;
    let be = parity_project(b, 0);
    let bo = parity_project(b, 1);
    let mut ws = SolverWorkspace::new(grid.clone());

    // b'_e = b_e + D_eo b_o / (2a).
    let mut bp = FermionField::zero(grid.clone());
    op.hopping_into(&bo, &mut bp); // odd-supported input -> even-supported
    bp.scale(0.5 / a);
    bp.add_assign_field(&be);

    // rhs = S† b'_e. γ5-hermiticity gives S† = γ5 S γ5 (γ5 is
    // parity-diagonal), with S w = a w − Dh(Dh w)/(4a) applied in place.
    let mut rhs = bp;
    gamma5_inplace(&mut rhs);
    {
        let SolverWorkspace { tmp, hop, .. } = &mut ws;
        op.hopping_into(&rhs, hop);
        op.hopping_into(hop, tmp);
    }
    rhs.scale(a);
    rhs.axpy_inplace(-0.25 / a, &ws.tmp);
    gamma5_inplace(&mut rhs);

    // A v = S†S v into ws.ap, returning the CG curvature Re ⟨v, A v⟩.
    // The second Schur application runs in place on the output field.
    let apply = |v: &FermionField, ws: &mut SolverWorkspace| {
        let SolverWorkspace { tmp, ap, hop } = ws;
        op.hopping_into(v, hop);
        op.hopping_into(hop, tmp);
        ap.scale_axpy_from(a, v, -0.25 / a, tmp); // ap = S v
        gamma5_inplace(ap);
        op.hopping_into(ap, hop);
        op.hopping_into(hop, tmp);
        ap.scale(a);
        ap.axpy_inplace(-0.25 / a, tmp);
        gamma5_inplace(ap); // ap = γ5 S γ5 (S v) = S†S v
        v.inner(ap).re
    };
    let state = CgState::new(&rhs);
    let (xe, inner_report) = cg_ws_from_state(apply, &rhs, &mut ws, state, tol, max_iter);

    // Back-substitution: x_o = (b_o + ½ D_oe x_e) / a.
    let xo = &mut ws.hop;
    op.hopping_into(&xe, xo); // even-supported input -> odd-supported
    xo.scale(0.5);
    xo.add_assign_field(&bo);
    xo.scale(1.0 / a);

    let mut x = xe;
    x.add_assign_field(&ws.hop);

    // True residual of the original full system (one fused sweep).
    op.apply_into(&x, &mut ws.tmp);
    let residual = (ws.ap.sub_norm2(b, &ws.tmp) / b.norm2()).sqrt();
    (
        x,
        SolveReport {
            iterations: inner_report.iterations,
            residual,
            converged: residual <= tol * 100.0,
            history: inner_report.history,
            health: inner_report.health,
            telemetry: span.finish(),
        },
    )
}

/// Batched Schur-complement Wilson solve: [`solve_eo`] for `N` right-hand
/// sides at once. The per-RHS prologue (checkerboard split, `b'_e`
/// assembly, `S†` application) and epilogue (back-substitution, true
/// residual) run through the exact single-RHS op sequences on extracted
/// fields; the expensive part — the `S†S` Conjugate Gradient, four hopping
/// sweeps per iteration — runs batched, loading each gauge link once per
/// site for the whole block. RHS `j` of the result is bit-identical to an
/// independent [`solve_eo`] of that RHS.
pub fn solve_eo_block(
    op: &WilsonDirac,
    b: &FermionBlock,
    tol: f64,
    max_iter: usize,
) -> (FermionBlock, BlockSolveReport) {
    let grid: Arc<Grid> = b.grid().clone();
    let nrhs = b.nrhs();
    let span = qcd_trace::span!("solver.eo", grid.engine().ctx());
    let a = op.mass + 4.0;
    let mut sws = SolverWorkspace::new(grid.clone());

    // Per-RHS prologue, single-RHS ops verbatim: b'_e = b_e + D_eo b_o/(2a),
    // then rhs_j = S† b'_e via the γ5 sandwich.
    let mut rhs_block = FermionBlock::zero(grid.clone(), nrhs);
    let mut bos = Vec::with_capacity(nrhs);
    for j in 0..nrhs {
        let bj = b.rhs_field(j);
        let be = parity_project(&bj, 0);
        let bo = parity_project(&bj, 1);
        let mut bp = FermionField::zero(grid.clone());
        op.hopping_into(&bo, &mut bp);
        bp.scale(0.5 / a);
        bp.add_assign_field(&be);
        let mut rhs = bp;
        gamma5_inplace(&mut rhs);
        {
            let SolverWorkspace { tmp, hop, .. } = &mut sws;
            op.hopping_into(&rhs, hop);
            op.hopping_into(hop, tmp);
        }
        rhs.scale(a);
        rhs.axpy_inplace(-0.25 / a, &sws.tmp);
        gamma5_inplace(&mut rhs);
        rhs_block.set_rhs(j, &rhs);
        bos.push(bo);
    }

    // Batched A v = S†S v into ws.ap with per-RHS curvatures — every block
    // op is per-RHS bit-identical to its single-RHS twin in `solve_eo`.
    let mut ws = BlockWorkspace::new(grid.clone(), nrhs);
    let apply = |v: &FermionBlock, ws: &mut BlockWorkspace| {
        let BlockWorkspace { tmp, ap, hop } = ws;
        op.hopping_block_into(v, hop);
        op.hopping_block_into(hop, tmp);
        ap.scale_axpy_from(a, v, -0.25 / a, tmp); // ap = S v
        gamma5_block_inplace(ap);
        op.hopping_block_into(ap, hop);
        op.hopping_block_into(hop, tmp);
        ap.scale(a);
        ap.axpy_inplace(-0.25 / a, tmp);
        gamma5_block_inplace(ap); // ap = γ5 S γ5 (S v) = S†S v
        v.inners(ap).iter().map(|z| z.re).collect()
    };
    let state = BlockCgState::new(&rhs_block);
    let (xe_block, inner) =
        block_cg_ws_from_state(apply, &rhs_block, &mut ws, state, tol, max_iter);

    // Per-RHS epilogue, single-RHS ops verbatim: back-substitute the odd
    // checkerboard and report the true residual of the full system.
    let mut x_block = FermionBlock::zero(grid.clone(), nrhs);
    let mut residuals = Vec::with_capacity(nrhs);
    let mut converged = Vec::with_capacity(nrhs);
    for (j, bo) in bos.iter().enumerate() {
        let xe = xe_block.rhs_field(j);
        let xo = &mut sws.hop;
        op.hopping_into(&xe, xo);
        xo.scale(0.5);
        xo.add_assign_field(bo);
        xo.scale(1.0 / a);
        let mut x = xe;
        x.add_assign_field(&sws.hop);
        op.apply_into(&x, &mut sws.tmp);
        let bj = b.rhs_field(j);
        let residual = (sws.ap.sub_norm2(&bj, &sws.tmp) / bj.norm2()).sqrt();
        residuals.push(residual);
        converged.push(residual <= tol * 100.0);
        x_block.set_rhs(j, &x);
    }
    (
        x_block,
        BlockSolveReport {
            iterations: inner.iterations,
            per_rhs_iterations: inner.per_rhs_iterations,
            residuals,
            converged,
            histories: inner.histories,
            health: inner.health,
            telemetry: span.finish(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::simd::SimdBackend;
    use crate::solver::solve_wilson;
    use crate::tensor::su3::random_gauge;
    use sve::VectorLength;

    fn grid(bits: usize) -> Arc<Grid> {
        Grid::new([4, 4, 4, 4], VectorLength::of(bits), SimdBackend::Fcmla)
    }

    #[test]
    fn parity_projection_splits_and_reassembles() {
        for bits in [128usize, 512, 2048] {
            let g = grid(bits);
            let f = FermionField::random(g.clone(), 71);
            let even = parity_project(&f, 0);
            let odd = parity_project(&f, 1);
            for x in g.coords() {
                let p = g.parity(&x);
                for comp in [0usize, 7] {
                    let want_e = if p == 0 {
                        f.peek(&x, comp)
                    } else {
                        Complex::ZERO
                    };
                    let want_o = if p == 1 {
                        f.peek(&x, comp)
                    } else {
                        Complex::ZERO
                    };
                    assert_eq!(even.peek(&x, comp), want_e, "vl={bits} {x:?}");
                    assert_eq!(odd.peek(&x, comp), want_o, "vl={bits} {x:?}");
                }
            }
            let mut sum = even.clone();
            sum.add_assign_field(&odd);
            assert_eq!(sum.max_abs_diff(&f), 0.0);
        }
    }

    #[test]
    fn projections_are_idempotent_and_orthogonal() {
        let g = grid(512);
        let f = FermionField::random(g.clone(), 72);
        let even = parity_project(&f, 0);
        let twice = parity_project(&even, 0);
        assert_eq!(twice.max_abs_diff(&even), 0.0);
        let cross = parity_project(&even, 1);
        assert_eq!(cross.norm2(), 0.0);
        // Pythagoras across checkerboards.
        let odd = parity_project(&f, 1);
        assert!((even.norm2() + odd.norm2() - f.norm2()).abs() < 1e-9 * f.norm2());
    }

    #[test]
    fn schur_solve_inverts_the_full_operator() {
        let g = grid(512);
        let op = WilsonDirac::new(random_gauge(g.clone(), 73), 0.3);
        let b = FermionField::random(g.clone(), 74);
        let (x, report) = solve_eo(&op, &b, 1e-9, 1000);
        assert!(report.residual < 1e-7, "residual {}", report.residual);
        let mx = op.apply(&x);
        let mut diff = FermionField::zero(g);
        diff.sub(&mx, &b);
        assert!((diff.norm2() / b.norm2()).sqrt() < 1e-7);
    }

    #[test]
    fn schur_solve_agrees_with_plain_solve() {
        let g = grid(256);
        let op = WilsonDirac::new(random_gauge(g.clone(), 75), 0.3);
        let b = FermionField::random(g.clone(), 76);
        let (x_eo, _) = solve_eo(&op, &b, 1e-10, 1000);
        let (x_plain, _) = solve_wilson(&op, &b, 1e-10, 2000);
        let mut diff = FermionField::zero(g);
        diff.sub(&x_eo, &x_plain);
        let rel = (diff.norm2() / x_plain.norm2()).sqrt();
        assert!(rel < 1e-7, "solutions differ by {rel}");
    }

    #[test]
    fn preconditioning_reduces_iteration_count() {
        // The point of even-odd: the Schur system is better conditioned
        // than the full normal equations.
        let g = grid(256);
        let op = WilsonDirac::new(random_gauge(g.clone(), 77), 0.2);
        let b = FermionField::random(g.clone(), 78);
        let (_, eo) = solve_eo(&op, &b, 1e-8, 2000);
        let (_, plain) = solve_wilson(&op, &b, 1e-8, 2000);
        assert!(
            eo.iterations < plain.iterations,
            "EO {} !< plain {}",
            eo.iterations,
            plain.iterations
        );
    }

    #[test]
    fn block_schur_solve_is_bit_identical_to_independent_eo_solves() {
        // RHS j of the batched Schur solve — solution bits, iteration
        // count, histories, residual — must match an independent solve_eo
        // of that RHS exactly, including when the batch converges unevenly.
        let g = grid(256);
        let op = WilsonDirac::new(random_gauge(g.clone(), 81), 0.3);
        let rhss = vec![
            FermionField::random(g.clone(), 82),
            FermionField::random(g.clone(), 83),
        ];
        let block = FermionBlock::from_fields(&rhss);
        let (bx, brep) = solve_eo_block(&op, &block, 1e-9, 1000);
        for (j, bj) in rhss.iter().enumerate() {
            let (x, rep) = solve_eo(&op, bj, 1e-9, 1000);
            assert_eq!(brep.per_rhs_iterations[j], rep.iterations, "rhs {j}");
            assert_eq!(
                brep.residuals[j].to_bits(),
                rep.residual.to_bits(),
                "rhs {j} residual"
            );
            assert_eq!(brep.converged[j], rep.converged, "rhs {j}");
            assert_eq!(brep.histories[j].len(), rep.history.len(), "rhs {j}");
            for (a, c) in brep.histories[j].iter().zip(&rep.history) {
                assert_eq!(a.to_bits(), c.to_bits(), "rhs {j} history diverged");
            }
            assert_eq!(
                bx.rhs_field(j).max_abs_diff(&x),
                0.0,
                "rhs {j} solution diverged"
            );
        }
    }

    #[test]
    fn schur_operator_preserves_the_even_checkerboard() {
        let g = grid(512);
        let op = WilsonDirac::new(random_gauge(g.clone(), 79), 0.2);
        let v = parity_project(&FermionField::random(g.clone(), 80), 0);
        let a = op.mass + 4.0;
        let dd = op.hopping(&op.hopping(&v));
        let mut s = v.clone();
        s.scale(a);
        s.axpy_inplace(-0.25 / a, &dd);
        // The result must live entirely on even sites.
        let leak = parity_project(&s, 1);
        assert!(leak.norm2() < 1e-24 * s.norm2().max(1.0));
    }
}
