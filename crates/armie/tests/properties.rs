//! Property-based tests of the emulator: the paper's listings must agree
//! with scalar references for arbitrary sizes and operands at every vector
//! length — including the tail-predication corner cases the paper's
//! toolchain got wrong.

use armie::listings;
use proptest::prelude::*;
use sve::{SveCtx, ToolchainFault, VectorLength};

fn any_vl() -> impl Strategy<Value = VectorLength> {
    proptest::sample::select(VectorLength::sweep().to_vec())
}

fn data(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9);
            ((h >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        })
        .collect()
}

fn close(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(p, q)| (p - q).abs() <= 1e-12 * q.abs().max(1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Listing IV-A matches the scalar product for any size and VL.
    #[test]
    fn listing_a_correct(vl in any_vl(), n in 0usize..200, seed in any::<u64>()) {
        let x = data(n, seed);
        let y = data(n, seed ^ 0xffff);
        let run = listings::run_mult_real(SveCtx::new(vl), &x, &y);
        prop_assert!(close(&run.z, &listings::mult_real_ref(&x, &y)));
    }

    /// Listings IV-B and IV-C agree with the scalar complex product and
    /// with each other for any size and VL.
    #[test]
    fn listings_b_c_correct(vl in any_vl(), n in 0usize..120, seed in any::<u64>()) {
        let x = data(2 * n, seed);
        let y = data(2 * n, seed ^ 0xaaaa);
        let want = listings::mult_cplx_ref(&x, &y);
        let b = listings::run_mult_cplx_autovec(SveCtx::new(vl), &x, &y);
        let c = listings::run_mult_cplx_fcmla_vla(SveCtx::new(vl), &x, &y);
        prop_assert!(close(&b.z, &want));
        prop_assert!(close(&c.z, &want));
        prop_assert!(close(&b.z, &c.z));
    }

    /// Results are identical whatever the vector length (the ArmIE
    /// multi-VL verification, as a property).
    #[test]
    fn results_are_vl_independent(n in 1usize..100, seed in any::<u64>()) {
        let x = data(2 * n, seed);
        let y = data(2 * n, seed ^ 0x1234);
        let reference =
            listings::run_mult_cplx_fcmla_vla(SveCtx::new(VectorLength::of(128)), &x, &y);
        for vl in VectorLength::sweep() {
            let run = listings::run_mult_cplx_fcmla_vla(SveCtx::new(vl), &x, &y);
            prop_assert_eq!(&run.z, &reference.z, "vl = {}", vl);
        }
    }

    /// Dynamic instruction count is monotone non-increasing in VL for a
    /// fixed workload.
    #[test]
    fn instruction_count_monotone_in_vl(n in 8usize..100, seed in any::<u64>()) {
        let x = data(2 * n, seed);
        let y = data(2 * n, seed ^ 0x5555);
        let mut last = u64::MAX;
        for vl in VectorLength::sweep() {
            let run = listings::run_mult_cplx_fcmla_vla(SveCtx::new(vl), &x, &y);
            prop_assert!(run.report.steps <= last, "steps grew at {}", vl);
            last = run.report.steps;
        }
    }

    /// Under a tail-predication fault, sizes that divide the vector length
    /// are always correct; other sizes are always wrong (deterministic
    /// failure, as §V-D observed "for some choices of the SVE vector
    /// length").
    #[test]
    fn fault_determinism(k in 1usize..12, extra in 0usize..8, seed in any::<u64>()) {
        let vl = VectorLength::of(512);
        let fault = ToolchainFault::TailPredicationBug(vl);
        let lanes = vl.lanes64();
        let n2 = k * lanes + extra; // doubles
        prop_assume!(n2.is_multiple_of(2));
        let x = data(n2, seed);
        let y = data(n2, seed ^ 0x9999);
        let want = listings::mult_cplx_ref(&x, &y);
        let run = listings::run_mult_cplx_fcmla_vla(SveCtx::with_fault(vl, fault), &x, &y);
        if extra == 0 {
            prop_assert!(close(&run.z, &want), "full vectors must survive");
        } else {
            prop_assert!(!close(&run.z, &want), "partial tails must corrupt");
        }
    }

    /// The fixed-length listing IV-D is immune to the fault at any VL
    /// (it never generates a whilelt predicate).
    #[test]
    fn fixed_size_immune_to_fault(vl in any_vl(), seed in any::<u64>()) {
        let fault = ToolchainFault::TailPredicationBug(vl);
        let lanes = vl.lanes64();
        let x = data(lanes, seed);
        let y = data(lanes, seed ^ 0x7777);
        let run = listings::run_mult_cplx_fcmla_fixed(SveCtx::with_fault(vl, fault), &x, &y);
        prop_assert!(close(&run.z, &listings::mult_cplx_ref(&x, &y)));
    }
}
