//! ArmIE-like emulator for an AArch64 + SVE instruction subset.
//!
//! The paper *"SVE-enabling Lattice QCD Codes"* (Meyer et al., CLUSTER 2018)
//! verified its port functionally with the ARM Instruction Emulator (ArmIE
//! 18.1), which executes SVE binaries on plain AArch64 hardware with the
//! vector length supplied "as a command-line parameter". This crate is that
//! emulator for the reproduction: an instruction IR covering every mnemonic
//! in the paper's listings, a register-file + memory machine model, an
//! interpreter with tracing and per-opcode accounting, and the paper's four
//! Section IV listings pre-encoded as programs.
//!
//! ```
//! use armie::listings;
//! use sve::{SveCtx, VectorLength};
//!
//! // Run the paper's listing IV-C (FCMLA complex multiply, VLA loop)
//! // "emulating multiple vector lengths" as the authors did:
//! let x = vec![1.0, 2.0, 3.0, -4.0]; // 2 complex numbers, interleaved
//! let y = vec![0.5, 0.5, -1.0, 2.0];
//! for vl in VectorLength::sweep() {
//!     let run = listings::run_mult_cplx_fcmla_vla(SveCtx::new(vl), &x, &y);
//!     assert_eq!(run.z, listings::mult_cplx_ref(&x, &y));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod inst;
pub mod listings;
mod machine;
pub mod parse;

pub use exec::{run, run_traced, run_with, Halt, RunReport, DEFAULT_STEP_LIMIT};
pub use inst::{Cond, Inst, PId, Program, XId, ZId, XZR};
pub use machine::{Machine, Memory};
pub use parse::{parse, ParseError};
