//! Assembly text parser.
//!
//! Accepts the textual assembly exactly as printed in the paper's listings
//! (modulo whitespace) and produces a [`Program`]. Together with
//! [`Program::disassemble`] this closes the loop: the paper's listings can
//! be carried as text, parsed, executed, and printed back.
//!
//! Grammar: one instruction or label per line; labels end with `:`;
//! comments start with `//` or `;`. Supported mnemonics are exactly the
//! subset the listings use.

use crate::inst::{Cond, Inst, Program, XZR};
use std::collections::HashMap;
use sve::Rot;

/// Parse error with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Strip comments, trim, and classify each surviving line.
fn significant_lines(src: &str) -> Vec<(usize, &str)> {
    src.lines()
        .enumerate()
        .filter_map(|(i, raw)| {
            let no_comment = raw.split("//").next().unwrap_or("");
            let no_comment = no_comment.split(';').next().unwrap_or("");
            let t = no_comment.trim();
            if t.is_empty() {
                None
            } else {
                Some((i + 1, t))
            }
        })
        .collect()
}

fn parse_xreg(tok: &str, line: usize) -> Result<u8, ParseError> {
    let t = tok.trim_end_matches(',');
    if t == "xzr" {
        return Ok(XZR);
    }
    if let Some(n) = t.strip_prefix('x') {
        if let Ok(v) = n.parse::<u8>() {
            if v < 31 {
                return Ok(v);
            }
        }
    }
    err(line, format!("expected scalar register, got `{tok}`"))
}

fn parse_zreg(tok: &str, line: usize) -> Result<u8, ParseError> {
    let t = tok
        .trim_end_matches(',')
        .trim_start_matches('{')
        .trim_end_matches('}');
    let t = t.split('.').next().unwrap_or(t);
    if let Some(n) = t.strip_prefix('z') {
        if let Ok(v) = n.parse::<u8>() {
            if v < 32 {
                return Ok(v);
            }
        }
    }
    err(line, format!("expected vector register, got `{tok}`"))
}

fn parse_preg(tok: &str, line: usize) -> Result<u8, ParseError> {
    // Accept p1, p1.d, p1.b, p0/z, p1/m combinations.
    let t = tok.trim_end_matches(',');
    let t = t.split(['.', '/']).next().unwrap_or(t);
    if let Some(n) = t.strip_prefix('p') {
        if let Ok(v) = n.parse::<u8>() {
            if v < 16 {
                return Ok(v);
            }
        }
    }
    err(line, format!("expected predicate register, got `{tok}`"))
}

fn parse_imm(tok: &str, line: usize) -> Result<u64, ParseError> {
    let t = tok.trim_end_matches(',');
    let t = t.strip_prefix('#').unwrap_or(t);
    // Accept integers and a plain `0`-like float for `mov z0.d, #0`.
    if let Ok(v) = t.parse::<u64>() {
        return Ok(v);
    }
    if let Ok(v) = t.parse::<f64>() {
        if v >= 0.0 && v.fract() == 0.0 {
            return Ok(v as u64);
        }
    }
    err(line, format!("expected immediate, got `{tok}`"))
}

/// Parse a `[xbase]` or `[xbase, xidx, lsl #3]` memory operand from the
/// token stream following the predicate.
fn parse_mem(tokens: &[&str], line: usize) -> Result<(u8, u8), ParseError> {
    let joined = tokens.join(" ");
    let inner = joined
        .trim_start_matches('[')
        .trim_end_matches(']')
        .trim_end_matches("]!");
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    match parts.len() {
        1 => Ok((parse_xreg(parts[0], line)?, XZR)),
        3 => {
            if parts[2] != "lsl #3" {
                return err(line, format!("unsupported index scale `{}`", parts[2]));
            }
            Ok((parse_xreg(parts[0], line)?, parse_xreg(parts[1], line)?))
        }
        _ => err(line, format!("bad memory operand `{joined}`")),
    }
}

fn parse_rot(tok: &str, line: usize) -> Result<Rot, ParseError> {
    match parse_imm(tok, line)? {
        0 => Ok(Rot::R0),
        90 => Ok(Rot::R90),
        180 => Ok(Rot::R180),
        270 => Ok(Rot::R270),
        other => err(line, format!("invalid fcmla rotation #{other}")),
    }
}

/// Parse assembly text into a [`Program`].
pub fn parse(name: &str, src: &str) -> Result<Program, ParseError> {
    let lines = significant_lines(src);
    // Pass 1: map labels to instruction indices.
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut idx = 0usize;
    for &(lineno, text) in &lines {
        if let Some(label) = text.strip_suffix(':') {
            if labels.insert(label.to_string(), idx).is_some() {
                return err(lineno, format!("duplicate label `{label}`"));
            }
        } else {
            idx += 1;
        }
    }
    // Pass 2: instructions.
    let mut insts = Vec::with_capacity(idx);
    for &(line, text) in &lines {
        if text.ends_with(':') {
            continue;
        }
        let toks: Vec<&str> = text.split_whitespace().collect();
        let mnemonic = toks[0];
        let rest = &toks[1..];
        let inst = match mnemonic {
            "ret" => Inst::Ret,
            "mov" => parse_mov(rest, line)?,
            "lsl" => Inst::Lsl {
                xd: parse_xreg(rest[0], line)?,
                xn: parse_xreg(rest[1], line)?,
                shift: parse_imm(rest[2], line)? as u8,
            },
            "add" => Inst::AddXImm {
                xd: parse_xreg(rest[0], line)?,
                xn: parse_xreg(rest[1], line)?,
                imm: parse_imm(rest[2], line)?,
            },
            "incd" => Inst::IncD {
                xd: parse_xreg(rest[0], line)?,
            },
            "cmp" => Inst::CmpX {
                xn: parse_xreg(rest[0], line)?,
                xm: parse_xreg(rest[1], line)?,
            },
            "b" | "b.mi" | "b.lo" => {
                let cond = match mnemonic {
                    "b.mi" => Cond::Mi,
                    "b.lo" => Cond::Lo,
                    _ => Cond::Always,
                };
                let label = rest[0];
                let target = *labels.get(label).ok_or(ParseError {
                    line,
                    message: format!("unknown label `{label}`"),
                })?;
                Inst::B { cond, target }
            }
            "ptrue" => Inst::Ptrue {
                pd: parse_preg(rest[0], line)?,
            },
            "whilelo" => Inst::Whilelo {
                pd: parse_preg(rest[0], line)?,
                xn: parse_xreg(rest[1], line)?,
                xm: parse_xreg(rest[2], line)?,
            },
            "brkns" => Inst::Brkns {
                pd: parse_preg(rest[0], line)?,
                pg: parse_preg(rest[1], line)?,
                pn: parse_preg(rest[2], line)?,
                pm: parse_preg(rest[3], line)?,
            },
            "movprfx" => Inst::Movprfx {
                zd: parse_zreg(rest[0], line)?,
                zn: parse_zreg(rest[1], line)?,
            },
            "ld1d" => {
                let zt = parse_zreg(rest[0], line)?;
                let pg = parse_preg(rest[1], line)?;
                let (xbase, xidx) = parse_mem(&rest[2..], line)?;
                Inst::Ld1D {
                    zt,
                    pg,
                    xbase,
                    xidx,
                }
            }
            "st1d" => {
                let zt = parse_zreg(rest[0], line)?;
                let pg = parse_preg(rest[1], line)?;
                let (xbase, xidx) = parse_mem(&rest[2..], line)?;
                Inst::St1D {
                    zt,
                    pg,
                    xbase,
                    xidx,
                }
            }
            "ld2d" => {
                let zt = parse_zreg(rest[0], line)?;
                let zt2 = parse_zreg(rest[1], line)?;
                let pg = parse_preg(rest[2], line)?;
                let (xbase, xidx) = parse_mem(&rest[3..], line)?;
                Inst::Ld2D {
                    zt,
                    zt2,
                    pg,
                    xbase,
                    xidx,
                }
            }
            "st2d" => {
                let zt = parse_zreg(rest[0], line)?;
                let zt2 = parse_zreg(rest[1], line)?;
                let pg = parse_preg(rest[2], line)?;
                let (xbase, xidx) = parse_mem(&rest[3..], line)?;
                Inst::St2D {
                    zt,
                    zt2,
                    pg,
                    xbase,
                    xidx,
                }
            }
            "fmul" => Inst::Fmul {
                zd: parse_zreg(rest[0], line)?,
                zn: parse_zreg(rest[1], line)?,
                zm: parse_zreg(rest[2], line)?,
            },
            "fmla" => Inst::Fmla {
                zd: parse_zreg(rest[0], line)?,
                pg: parse_preg(rest[1], line)?,
                zn: parse_zreg(rest[2], line)?,
                zm: parse_zreg(rest[3], line)?,
            },
            "fnmls" => Inst::Fnmls {
                zd: parse_zreg(rest[0], line)?,
                pg: parse_preg(rest[1], line)?,
                zn: parse_zreg(rest[2], line)?,
                zm: parse_zreg(rest[3], line)?,
            },
            "fcmla" => Inst::Fcmla {
                zd: parse_zreg(rest[0], line)?,
                pg: parse_preg(rest[1], line)?,
                zn: parse_zreg(rest[2], line)?,
                zm: parse_zreg(rest[3], line)?,
                rot: parse_rot(rest[4], line)?,
            },
            other => return err(line, format!("unknown mnemonic `{other}`")),
        };
        insts.push(inst);
    }
    Ok(Program::new(name, insts))
}

/// `mov` is overloaded: scalar, scalar-immediate, predicate, vector,
/// vector-immediate. Disambiguate on the operand prefixes.
fn parse_mov(rest: &[&str], line: usize) -> Result<Inst, ParseError> {
    let dst = rest[0].trim_end_matches(',');
    let src = rest[1];
    if dst.starts_with('p') {
        return Ok(Inst::MovP {
            pd: parse_preg(dst, line)?,
            pn: parse_preg(src, line)?,
        });
    }
    if dst.starts_with('z') {
        if src.starts_with('#') {
            return Ok(Inst::DupImm {
                zd: parse_zreg(dst, line)?,
                imm: parse_imm(src, line)? as f64,
            });
        }
        return Ok(Inst::MovZ {
            zd: parse_zreg(dst, line)?,
            zn: parse_zreg(src, line)?,
        });
    }
    if src.starts_with('#') {
        return Ok(Inst::MovXImm {
            xd: parse_xreg(dst, line)?,
            imm: parse_imm(src, line)?,
        });
    }
    Ok(Inst::MovX {
        xd: parse_xreg(dst, line)?,
        xn: parse_xreg(src, line)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::listings;

    /// Listing IV-A exactly as the paper prints it (Section IV-A).
    const PAPER_IV_A: &str = r#"
        mov x8, xzr
        whilelo p1.d, xzr, x0
        ptrue p0.d
    .LBB0_4:
        ld1d {z0.d}, p1/z, [x1, x8, lsl #3]
        ld1d {z1.d}, p1/z, [x2, x8, lsl #3]
        fmul z0.d, z1.d, z0.d
        st1d {z0.d}, p1, [x3, x8, lsl #3]
        incd x8
        whilelo p2.d, x8, x0
        brkns p2.b, p0/z, p1.b, p2.b
        mov p1.b, p2.b
        b.mi .LBB0_4
        ret
    "#;

    /// Listing IV-D exactly as the paper prints it (Section IV-D).
    const PAPER_IV_D: &str = r#"
        ptrue p0.d
        ld1d {z0.d}, p0/z, [x1]
        ld1d {z1.d}, p0/z, [x2]
        mov z2.d, #0
        fcmla z2.d, p0/m, z0.d, z1.d, #90
        fcmla z2.d, p0/m, z0.d, z1.d, #0
        st1d {z2.d}, p0, [x3]
        ret
    "#;

    #[test]
    fn paper_text_iv_a_parses_to_the_encoded_listing() {
        let parsed = parse("IV-A", PAPER_IV_A).unwrap();
        assert_eq!(parsed.insts, listings::mult_real_program().insts);
    }

    #[test]
    fn paper_text_iv_d_parses_to_the_encoded_listing() {
        let parsed = parse("IV-D", PAPER_IV_D).unwrap();
        assert_eq!(
            parsed.insts,
            listings::mult_cplx_fcmla_fixed_program().insts
        );
    }

    #[test]
    fn disassembly_round_trips_through_the_parser() {
        for (_, program) in listings::all_listings() {
            let asm = program.disassemble();
            let reparsed = parse(&program.name, &asm).unwrap();
            assert_eq!(reparsed.insts, program.insts, "{}", program.name);
        }
    }

    #[test]
    fn parsed_program_executes_correctly() {
        use sve::VectorLength;
        let program = parse("IV-A", PAPER_IV_A).unwrap();
        let mut m = crate::Machine::new(VectorLength::of(512), 1 << 16);
        let x: Vec<f64> = (0..37).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = (0..37).map(|i| 3.0 - i as f64 * 0.25).collect();
        let xa = m.alloc_f64_slice(&x);
        let ya = m.alloc_f64_slice(&y);
        let za = m.alloc(8 * 37);
        m.set_x(0, 37);
        m.set_x(1, xa);
        m.set_x(2, ya);
        m.set_x(3, za);
        let _ = m.ctx; // keep context
        crate::run(&mut m, &program);
        let z = m.mem.load_f64_slice(za, 37);
        let want = listings::mult_real_ref(&x, &y);
        assert_eq!(z, want);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = parse("c", "// header\n  ret ; trailing\n\n// footer\n").unwrap();
        assert_eq!(p.insts, vec![Inst::Ret]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("bad", "mov x8, xzr\nbogus z0.d\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = parse("bad", "b.mi .Lnowhere\n").unwrap_err();
        assert!(e.message.contains("unknown label"));
        let e = parse("bad", "fcmla z0.d, p0/m, z1.d, z2.d, #45\n").unwrap_err();
        assert!(e.message.contains("rotation"));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let e = parse("dup", ".L0:\nret\n.L0:\nret\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }
}
