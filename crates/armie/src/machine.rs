//! Machine state: register files, flags and byte-addressed memory.

use sve::{PReg, PredFlags, SveCtx, VReg, VectorLength};

/// Byte-addressed little-endian memory with a bump allocator, standing in
/// for the process address space of the emulated program.
#[derive(Debug, Default)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Memory of `size` zeroed bytes.
    pub fn new(size: usize) -> Self {
        Memory {
            bytes: vec![0; size],
        }
    }

    /// Total size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Read an `f64` at byte address `addr`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        let a = addr as usize;
        let b: [u8; 8] = self.bytes[a..a + 8]
            .try_into()
            .expect("read_f64 within bounds");
        f64::from_le_bytes(b)
    }

    /// Write an `f64` at byte address `addr`.
    pub fn write_f64(&mut self, addr: u64, v: f64) {
        let a = addr as usize;
        self.bytes[a..a + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Copy a whole `f64` slice to `addr`.
    pub fn store_f64_slice(&mut self, addr: u64, data: &[f64]) {
        for (i, &v) in data.iter().enumerate() {
            self.write_f64(addr + 8 * i as u64, v);
        }
    }

    /// Read `n` `f64` values starting at `addr`.
    pub fn load_f64_slice(&self, addr: u64, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.read_f64(addr + 8 * i as u64)).collect()
    }
}

/// The emulated CPU: scalar registers `x0..x30` (+`xzr`), vector registers
/// `z0..z31`, predicate registers `p0..p15`, NZCV flags, and a program
/// counter. Vector semantics (and instruction accounting) are delegated to
/// an [`SveCtx`], so the emulator and the intrinsics layer can never
/// disagree on what an instruction does.
#[derive(Debug)]
pub struct Machine {
    /// Scalar register file (index 31 is the zero register).
    x: [u64; 32],
    /// Vector register file.
    pub(crate) z: [VReg; 32],
    /// Predicate register file.
    pub(crate) p: [PReg; 16],
    /// Condition flags (N, Z, C, V).
    pub flags: PredFlags,
    /// Program counter (instruction index).
    pub pc: usize,
    /// Memory image.
    pub mem: Memory,
    /// The SVE "silicon" this machine implements.
    pub ctx: SveCtx,
    next_alloc: u64,
}

impl Machine {
    /// A machine with `mem_bytes` of memory at vector length `vl`.
    pub fn new(vl: VectorLength, mem_bytes: usize) -> Self {
        Machine {
            x: [0; 32],
            z: [VReg::zeroed(); 32],
            p: [PReg::none(); 16],
            flags: PredFlags {
                n: false,
                z: false,
                c: false,
                v: false,
            },
            pc: 0,
            mem: Memory::new(mem_bytes),
            ctx: SveCtx::new(vl),
            next_alloc: 64, // keep address 0 unmapped-ish for debugging
        }
    }

    /// A machine whose SVE context carries an injected toolchain fault.
    pub fn with_ctx(ctx: SveCtx, mem_bytes: usize) -> Self {
        let mut m = Self::new(ctx.vl(), mem_bytes);
        m.ctx = ctx;
        m
    }

    /// The configured vector length.
    pub fn vl(&self) -> VectorLength {
        self.ctx.vl()
    }

    /// Read scalar register `id` (`xzr` reads zero).
    #[inline]
    pub fn x(&self, id: u8) -> u64 {
        if id == 31 {
            0
        } else {
            self.x[id as usize]
        }
    }

    /// Write scalar register `id` (writes to `xzr` are discarded).
    #[inline]
    pub fn set_x(&mut self, id: u8, v: u64) {
        if id != 31 {
            self.x[id as usize] = v;
        }
    }

    /// Read vector register `id`.
    pub fn zreg(&self, id: u8) -> &VReg {
        &self.z[id as usize]
    }

    /// Read predicate register `id`.
    pub fn preg(&self, id: u8) -> &PReg {
        &self.p[id as usize]
    }

    /// Bump-allocate `bytes` of memory, 256-byte aligned (the maximum
    /// vector length, matching the paper's `alignas(SVE_VECTOR_LENGTH)`).
    pub fn alloc(&mut self, bytes: usize) -> u64 {
        let addr = (self.next_alloc + 255) & !255;
        self.next_alloc = addr + bytes as u64;
        assert!(
            (self.next_alloc as usize) <= self.mem.len(),
            "emulated memory exhausted"
        );
        addr
    }

    /// Allocate and initialize an `f64` array; returns its address.
    pub fn alloc_f64_slice(&mut self, data: &[f64]) -> u64 {
        let addr = self.alloc(8 * data.len());
        self.mem.store_f64_slice(addr, data);
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xzr_reads_zero_and_swallows_writes() {
        let mut m = Machine::new(VectorLength::of(256), 1 << 12);
        m.set_x(31, 123);
        assert_eq!(m.x(31), 0);
        m.set_x(5, 7);
        assert_eq!(m.x(5), 7);
    }

    #[test]
    fn memory_round_trips() {
        let mut mem = Memory::new(128);
        mem.write_f64(16, 3.25);
        assert_eq!(mem.read_f64(16), 3.25);
        mem.store_f64_slice(24, &[1.0, 2.0, 3.0]);
        assert_eq!(mem.load_f64_slice(24, 3), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = Machine::new(VectorLength::of(128), 1 << 14);
        let a = m.alloc_f64_slice(&[1.0; 10]);
        let b = m.alloc_f64_slice(&[2.0; 10]);
        assert_eq!(a % 256, 0);
        assert_eq!(b % 256, 0);
        assert!(b >= a + 80);
        assert_eq!(m.mem.read_f64(a), 1.0);
        assert_eq!(m.mem.read_f64(b), 2.0);
    }

    #[test]
    #[should_panic(expected = "memory exhausted")]
    fn alloc_beyond_memory_panics() {
        let mut m = Machine::new(VectorLength::of(128), 1 << 10);
        let _ = m.alloc(2 << 10);
        let _ = m.alloc(1);
    }
}
