//! The interpreter — the emulator proper.
//!
//! Executes a [`Program`] against a [`Machine`], one instruction per step,
//! exactly as ArmIE executed the paper's compiled listings. Vector
//! arithmetic delegates to the `sve` intrinsics so the two levels of the
//! stack cannot drift apart; loads/stores respect predication (inactive
//! lanes touch no memory). Every executed instruction is tallied in the
//! machine's [`sve::Counters`].

use crate::inst::{Cond, Inst, Program};
use crate::machine::Machine;
use sve::intrinsics as sv;
use sve::{Opcode, PReg, VReg};

/// Why execution stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Halt {
    /// A `ret` was executed.
    Ret,
    /// The program counter ran past the last instruction.
    End,
    /// The step budget was exhausted (runaway loop guard).
    StepLimit,
}

/// Execution report.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Why the program stopped.
    pub halt: Halt,
    /// Dynamically executed instruction count.
    pub steps: u64,
}

/// Default step budget: generous for the listings, small enough to catch
/// infinite loops in tests quickly.
pub const DEFAULT_STEP_LIMIT: u64 = 100_000_000;

/// Execute `program` on `machine` from `pc = 0` until halt.
pub fn run(machine: &mut Machine, program: &Program) -> RunReport {
    run_with(machine, program, DEFAULT_STEP_LIMIT, |_, _| {})
}

/// Execute with a per-step observer (used by the tracing front-end).
pub fn run_with(
    machine: &mut Machine,
    program: &Program,
    step_limit: u64,
    mut observe: impl FnMut(usize, &Inst),
) -> RunReport {
    machine.pc = 0;
    let mut steps = 0u64;
    loop {
        if steps >= step_limit {
            return RunReport {
                halt: Halt::StepLimit,
                steps,
            };
        }
        let Some(&inst) = program.insts.get(machine.pc) else {
            return RunReport {
                halt: Halt::End,
                steps,
            };
        };
        observe(machine.pc, &inst);
        steps += 1;
        if step(machine, inst) {
            return RunReport {
                halt: Halt::Ret,
                steps,
            };
        }
    }
}

/// Execute `program` recording a line per executed instruction (pc and
/// disassembly), for the instruction-audit binaries.
pub fn run_traced(machine: &mut Machine, program: &Program) -> (RunReport, Vec<String>) {
    let mut trace = Vec::new();
    let report = run_with(machine, program, DEFAULT_STEP_LIMIT, |pc, inst| {
        trace.push(format!("{pc:4}: {inst}"));
    });
    (report, trace)
}

/// Effective address of the listings' `[xbase, xidx, lsl #3]` operand.
fn ea(m: &Machine, xbase: u8, xidx: u8) -> u64 {
    m.x(xbase).wrapping_add(m.x(xidx) << 3)
}

/// Execute one instruction; returns `true` on `ret`. Advances `pc`.
fn step(m: &mut Machine, inst: Inst) -> bool {
    let vl = m.vl();
    let lanes = vl.lanes64();
    let mut next_pc = m.pc + 1;
    match inst {
        Inst::MovX { xd, xn } => {
            m.ctx.exec(Opcode::ScalarAlu);
            let v = m.x(xn);
            m.set_x(xd, v);
        }
        Inst::MovXImm { xd, imm } => {
            m.ctx.exec(Opcode::ScalarAlu);
            m.set_x(xd, imm);
        }
        Inst::Lsl { xd, xn, shift } => {
            m.ctx.exec(Opcode::ScalarAlu);
            let v = m.x(xn) << shift;
            m.set_x(xd, v);
        }
        Inst::AddXImm { xd, xn, imm } => {
            m.ctx.exec(Opcode::ScalarAlu);
            let v = m.x(xn).wrapping_add(imm);
            m.set_x(xd, v);
        }
        Inst::IncD { xd } => {
            m.ctx.exec(Opcode::Incd);
            let v = m.x(xd).wrapping_add(lanes as u64);
            m.set_x(xd, v);
        }
        Inst::CmpX { xn, xm } => {
            m.ctx.exec(Opcode::ScalarAlu);
            let (a, b) = (m.x(xn), m.x(xm));
            let diff = a.wrapping_sub(b);
            m.flags.n = (diff as i64) < 0;
            m.flags.z = a == b;
            m.flags.c = a >= b; // no borrow
            m.flags.v = false;
        }
        Inst::B { cond, target } => {
            m.ctx.exec(Opcode::Branch);
            let taken = match cond {
                Cond::Mi => m.flags.n,
                Cond::Lo => !m.flags.c,
                Cond::Always => true,
            };
            if taken {
                next_pc = target;
            }
        }
        Inst::Ret => {
            m.ctx.exec(Opcode::Branch);
            return true;
        }
        Inst::Ptrue { pd } => {
            m.p[pd as usize] = sv::svptrue::<f64>(&m.ctx);
        }
        Inst::Whilelo { pd, xn, xm } => {
            let (p, flags) = sv::svwhilelt_with_flags::<f64>(&m.ctx, m.x(xn), m.x(xm));
            m.p[pd as usize] = p;
            m.flags = flags;
        }
        Inst::Brkns { pd, pg, pn, pm } => {
            let (p, flags) = sv::svbrkn_s(
                &m.ctx,
                &m.p[pg as usize],
                &m.p[pn as usize],
                &m.p[pm as usize],
            );
            m.p[pd as usize] = p;
            m.flags = flags;
        }
        Inst::MovP { pd, pn } => {
            m.ctx.exec(Opcode::MovP);
            m.p[pd as usize] = m.p[pn as usize];
        }
        Inst::DupImm { zd, imm } => {
            m.z[zd as usize] = sv::svdup::<f64>(&m.ctx, imm);
        }
        Inst::MovZ { zd, zn } => {
            m.ctx.exec(Opcode::MovZ);
            m.z[zd as usize] = m.z[zn as usize];
        }
        Inst::Movprfx { zd, zn } => {
            m.ctx.exec(Opcode::Movprfx);
            m.z[zd as usize] = m.z[zn as usize];
        }
        Inst::Ld1D {
            zt,
            pg,
            xbase,
            xidx,
        } => {
            m.ctx.exec(Opcode::Ld1);
            let base = ea(m, xbase, xidx);
            let p = m.p[pg as usize];
            let mut out = VReg::zeroed();
            for e in 0..lanes {
                if p.elem_active::<f64>(e) {
                    out.set_lane(e, m.mem.read_f64(base + 8 * e as u64));
                }
            }
            m.z[zt as usize] = out;
        }
        Inst::Ld2D {
            zt,
            zt2,
            pg,
            xbase,
            xidx,
        } => {
            m.ctx.exec(Opcode::Ld2);
            let base = ea(m, xbase, xidx);
            let p = m.p[pg as usize];
            let (mut a, mut b) = (VReg::zeroed(), VReg::zeroed());
            for e in 0..lanes {
                if p.elem_active::<f64>(e) {
                    a.set_lane(e, m.mem.read_f64(base + 16 * e as u64));
                    b.set_lane(e, m.mem.read_f64(base + 16 * e as u64 + 8));
                }
            }
            m.z[zt as usize] = a;
            m.z[zt2 as usize] = b;
        }
        Inst::St1D {
            zt,
            pg,
            xbase,
            xidx,
        } => {
            m.ctx.exec(Opcode::St1);
            let base = ea(m, xbase, xidx);
            let p = m.p[pg as usize];
            let v = m.z[zt as usize];
            for e in 0..lanes {
                if p.elem_active::<f64>(e) {
                    m.mem.write_f64(base + 8 * e as u64, v.lane(e));
                }
            }
        }
        Inst::St2D {
            zt,
            zt2,
            pg,
            xbase,
            xidx,
        } => {
            m.ctx.exec(Opcode::St2);
            let base = ea(m, xbase, xidx);
            let p = m.p[pg as usize];
            let (a, b) = (m.z[zt as usize], m.z[zt2 as usize]);
            for e in 0..lanes {
                if p.elem_active::<f64>(e) {
                    m.mem.write_f64(base + 16 * e as u64, a.lane(e));
                    m.mem.write_f64(base + 16 * e as u64 + 8, b.lane(e));
                }
            }
        }
        Inst::Fmul { zd, zn, zm } => {
            // Unpredicated form: all lanes.
            let pg = PReg::ptrue::<f64>(vl);
            m.z[zd as usize] =
                sv::svmul_x::<f64>(&m.ctx, &pg, &m.z[zn as usize], &m.z[zm as usize]);
        }
        Inst::Fmla { zd, pg, zn, zm } => {
            m.z[zd as usize] = sv::svmla_m::<f64>(
                &m.ctx,
                &m.p[pg as usize],
                &m.z[zd as usize],
                &m.z[zn as usize],
                &m.z[zm as usize],
            );
        }
        Inst::Fnmls { zd, pg, zn, zm } => {
            m.z[zd as usize] = sv::svnmls_m::<f64>(
                &m.ctx,
                &m.p[pg as usize],
                &m.z[zd as usize],
                &m.z[zn as usize],
                &m.z[zm as usize],
            );
        }
        Inst::Fcmla {
            zd,
            pg,
            zn,
            zm,
            rot,
        } => {
            m.z[zd as usize] = sv::svcmla::<f64>(
                &m.ctx,
                &m.p[pg as usize],
                &m.z[zd as usize],
                &m.z[zn as usize],
                &m.z[zm as usize],
                rot,
            );
        }
    }
    m.pc = next_pc;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::XZR;
    use sve::VectorLength;

    fn machine() -> Machine {
        Machine::new(VectorLength::of(256), 1 << 16)
    }

    #[test]
    fn scalar_moves_and_alu() {
        let mut m = machine();
        let prog = Program::new(
            "scalar",
            vec![
                Inst::MovXImm { xd: 0, imm: 5 },
                Inst::Lsl {
                    xd: 1,
                    xn: 0,
                    shift: 3,
                },
                Inst::AddXImm {
                    xd: 2,
                    xn: 1,
                    imm: 2,
                },
                Inst::MovX { xd: 3, xn: XZR },
                Inst::Ret,
            ],
        );
        let r = run(&mut m, &prog);
        assert_eq!(r.halt, Halt::Ret);
        assert_eq!(m.x(1), 40);
        assert_eq!(m.x(2), 42);
        assert_eq!(m.x(3), 0);
    }

    #[test]
    fn incd_advances_by_lane_count() {
        let mut m = machine(); // VL256: 4 d-lanes
        let prog = Program::new(
            "incd",
            vec![Inst::IncD { xd: 0 }, Inst::IncD { xd: 0 }, Inst::Ret],
        );
        run(&mut m, &prog);
        assert_eq!(m.x(0), 8);
    }

    #[test]
    fn cmp_blo_loop_terminates() {
        // x0 counts 0,4,8,...; loop while x0 < x1 = 12 (three iterations).
        let mut m = machine();
        m.set_x(1, 12);
        let prog = Program::new(
            "loop",
            vec![
                Inst::IncD { xd: 0 },
                Inst::AddXImm {
                    xd: 2,
                    xn: 2,
                    imm: 1,
                }, // iteration counter
                Inst::CmpX { xn: 0, xm: 1 },
                Inst::B {
                    cond: Cond::Lo,
                    target: 0,
                },
                Inst::Ret,
            ],
        );
        let r = run(&mut m, &prog);
        assert_eq!(r.halt, Halt::Ret);
        assert_eq!(m.x(2), 3);
    }

    #[test]
    fn runaway_loop_hits_step_limit() {
        let mut m = machine();
        let prog = Program::new(
            "spin",
            vec![Inst::B {
                cond: Cond::Always,
                target: 0,
            }],
        );
        let r = run_with(&mut m, &prog, 100, |_, _| {});
        assert_eq!(r.halt, Halt::StepLimit);
        assert_eq!(r.steps, 100);
    }

    #[test]
    fn falling_off_the_end_halts() {
        let mut m = machine();
        let prog = Program::new("empty", vec![Inst::MovXImm { xd: 0, imm: 1 }]);
        let r = run(&mut m, &prog);
        assert_eq!(r.halt, Halt::End);
    }

    #[test]
    fn vector_load_compute_store() {
        let mut m = machine();
        let x_addr = m.alloc_f64_slice(&[1.0, 2.0, 3.0, 4.0]);
        let z_addr = m.alloc(32);
        m.set_x(1, x_addr);
        m.set_x(3, z_addr);
        let prog = Program::new(
            "square",
            vec![
                Inst::Ptrue { pd: 0 },
                Inst::MovX { xd: 8, xn: XZR },
                Inst::Ld1D {
                    zt: 0,
                    pg: 0,
                    xbase: 1,
                    xidx: 8,
                },
                Inst::Fmul {
                    zd: 1,
                    zn: 0,
                    zm: 0,
                },
                Inst::St1D {
                    zt: 1,
                    pg: 0,
                    xbase: 3,
                    xidx: 8,
                },
                Inst::Ret,
            ],
        );
        run(&mut m, &prog);
        assert_eq!(m.mem.load_f64_slice(z_addr, 4), vec![1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    fn ld2d_deinterleaves_in_memory_order() {
        let mut m = machine();
        let addr = m.alloc_f64_slice(&[1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
        m.set_x(2, addr);
        let prog = Program::new(
            "ld2",
            vec![
                Inst::Ptrue { pd: 0 },
                Inst::MovX { xd: 9, xn: XZR },
                Inst::Ld2D {
                    zt: 0,
                    zt2: 1,
                    pg: 0,
                    xbase: 2,
                    xidx: 9,
                },
                Inst::Ret,
            ],
        );
        run(&mut m, &prog);
        assert_eq!(m.zreg(0).to_vec::<f64>(m.vl()), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(
            m.zreg(1).to_vec::<f64>(m.vl()),
            vec![10.0, 20.0, 30.0, 40.0]
        );
    }

    #[test]
    fn trace_captures_dynamic_stream() {
        let mut m = machine();
        let prog = Program::new("t", vec![Inst::MovXImm { xd: 0, imm: 3 }, Inst::Ret]);
        let (report, trace) = run_traced(&mut m, &prog);
        assert_eq!(report.steps, 2);
        assert_eq!(trace.len(), 2);
        assert!(trace[0].contains("mov x0, #3"));
        assert!(trace[1].contains("ret"));
    }

    #[test]
    fn counters_tally_executed_instructions() {
        let mut m = machine();
        let prog = Program::new(
            "count",
            vec![
                Inst::Ptrue { pd: 0 },
                Inst::DupImm { zd: 0, imm: 0.0 },
                Inst::Fcmla {
                    zd: 0,
                    pg: 0,
                    zn: 1,
                    zm: 2,
                    rot: sve::intrinsics::Rot::R90,
                },
                Inst::Fcmla {
                    zd: 0,
                    pg: 0,
                    zn: 1,
                    zm: 2,
                    rot: sve::intrinsics::Rot::R0,
                },
                Inst::Ret,
            ],
        );
        run(&mut m, &prog);
        assert_eq!(m.ctx.counters().get(Opcode::Fcmla), 2);
        assert_eq!(m.ctx.counters().get(Opcode::Ptrue), 1);
        assert_eq!(m.ctx.counters().get(Opcode::Dup), 1);
    }
}
