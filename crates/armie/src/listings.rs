//! The paper's Section IV assembly listings, instruction for instruction.
//!
//! Each constructor returns the binary code the paper shows being generated
//! by armclang 18.3 (`-Ofast -march=armv8-a+sve`), as a [`Program`] for the
//! emulator; each `run_*` helper sets up the AAPCS argument registers
//! (`x0` = element count, `x1`/`x2` = input arrays, `x3` = output array),
//! executes under a chosen vector length — possibly with an injected
//! toolchain fault — and returns the output array plus the machine for
//! instruction-count inspection.
//!
//! All four kernels compute `z[i] = x[i] * y[i]`, differing in data type and
//! code generation strategy:
//!
//! | listing | data | strategy |
//! |---|---|---|
//! | IV-A | real `double` | VLA loop, auto-vectorized |
//! | IV-B | `std::complex<double>` | VLA loop, auto-vectorized: `ld2d` + real FMAs |
//! | IV-C | interleaved complex | VLA loop, ACLE `FCMLA` |
//! | IV-D | interleaved complex | fixed-length, loop-free ACLE `FCMLA` |

use crate::exec::{run, RunReport};
use crate::inst::{Cond, Inst, Program, XZR};
use crate::machine::Machine;
use sve::intrinsics::Rot;
use sve::SveCtx;

/// Result of running a listing.
#[derive(Debug)]
pub struct ListingRun {
    /// The output array `z`.
    pub z: Vec<f64>,
    /// Halt reason and dynamic instruction count.
    pub report: RunReport,
    /// The machine after execution (counters, registers, memory).
    pub machine: Machine,
}

/// Listing IV-A — `mult_real`: `z[i] = x[i] * y[i]` over `double[n]`,
/// the compiler's VLA loop with `whilelo`/`brkns` predication.
pub fn mult_real_program() -> Program {
    Program::new(
        "mult_real (listing IV-A)",
        vec![
            /* 0 */ Inst::MovX { xd: 8, xn: XZR },
            /* 1 */
            Inst::Whilelo {
                pd: 1,
                xn: XZR,
                xm: 0,
            },
            /* 2 */ Inst::Ptrue { pd: 0 },
            // .LBB0_4:
            /* 3 */
            Inst::Ld1D {
                zt: 0,
                pg: 1,
                xbase: 1,
                xidx: 8,
            },
            /* 4 */
            Inst::Ld1D {
                zt: 1,
                pg: 1,
                xbase: 2,
                xidx: 8,
            },
            /* 5 */
            Inst::Fmul {
                zd: 0,
                zn: 1,
                zm: 0,
            },
            /* 6 */
            Inst::St1D {
                zt: 0,
                pg: 1,
                xbase: 3,
                xidx: 8,
            },
            /* 7 */ Inst::IncD { xd: 8 },
            /* 8 */
            Inst::Whilelo {
                pd: 2,
                xn: 8,
                xm: 0,
            },
            /* 9 */
            Inst::Brkns {
                pd: 2,
                pg: 0,
                pn: 1,
                pm: 2,
            },
            /* 10 */ Inst::MovP { pd: 1, pn: 2 },
            /* 11 */
            Inst::B {
                cond: Cond::Mi,
                target: 3,
            },
            /* 12 */ Inst::Ret,
        ],
    )
}

/// Listing IV-B — `mult_cplx`, auto-vectorized: complex multiply through
/// `ld2d` structure loads and real-arithmetic FMAs ("the compiler does not
/// exploit the full SVE ISA ... due to the lack of support for complex
/// arithmetics in the LLVM 5 backend").
pub fn mult_cplx_autovec_program() -> Program {
    Program::new(
        "mult_cplx auto-vectorized (listing IV-B)",
        vec![
            /* 0 */ Inst::MovX { xd: 8, xn: XZR },
            /* 1 */
            Inst::Whilelo {
                pd: 0,
                xn: XZR,
                xm: 0,
            },
            /* 2 */ Inst::Ptrue { pd: 1 },
            // .LBB2_7:
            /* 3 */
            Inst::Lsl {
                xd: 9,
                xn: 8,
                shift: 1,
            },
            /* 4 */
            Inst::Ld2D {
                zt: 0,
                zt2: 1,
                pg: 0,
                xbase: 2,
                xidx: 9,
            },
            /* 5 */
            Inst::Ld2D {
                zt: 2,
                zt2: 3,
                pg: 0,
                xbase: 1,
                xidx: 9,
            },
            /* 6 */ Inst::IncD { xd: 8 },
            /* 7 */
            Inst::Whilelo {
                pd: 2,
                xn: 8,
                xm: 0,
            },
            /* 8 */
            Inst::Fmul {
                zd: 4,
                zn: 2,
                zm: 1,
            },
            /* 9 */
            Inst::Fmul {
                zd: 5,
                zn: 3,
                zm: 1,
            },
            /* 10 */ Inst::Movprfx { zd: 7, zn: 4 },
            /* 11 */
            Inst::Fmla {
                zd: 7,
                pg: 1,
                zn: 3,
                zm: 0,
            },
            /* 12 */ Inst::Movprfx { zd: 6, zn: 5 },
            /* 13 */
            Inst::Fnmls {
                zd: 6,
                pg: 1,
                zn: 2,
                zm: 0,
            },
            /* 14 */
            Inst::St2D {
                zt: 6,
                zt2: 7,
                pg: 0,
                xbase: 3,
                xidx: 9,
            },
            /* 15 */
            Inst::Brkns {
                pd: 2,
                pg: 1,
                pn: 0,
                pm: 2,
            },
            /* 16 */ Inst::MovP { pd: 0, pn: 2 },
            /* 17 */
            Inst::B {
                cond: Cond::Mi,
                target: 3,
            },
            /* 18 */ Inst::Ret,
        ],
    )
}

/// Listing IV-C — `mult_cplx` via ACLE `FCMLA`, VLA loop. The paper's
/// listing enters with `x8 = 2n` already computed; the leading `lsl`
/// materializes it from the argument register.
pub fn mult_cplx_fcmla_vla_program() -> Program {
    Program::new(
        "mult_cplx ACLE FCMLA, VLA loop (listing IV-C)",
        vec![
            /* 0 */
            Inst::Lsl {
                xd: 8,
                xn: 0,
                shift: 1,
            }, // x8 = 2n (prologue)
            /* 1 */ Inst::MovX { xd: 9, xn: XZR },
            /* 2 */ Inst::DupImm { zd: 0, imm: 0.0 },
            // .LBB3_2:
            /* 3 */
            Inst::Whilelo {
                pd: 0,
                xn: 9,
                xm: 8,
            },
            /* 4 */
            Inst::Ld1D {
                zt: 1,
                pg: 0,
                xbase: 1,
                xidx: 9,
            },
            /* 5 */
            Inst::Ld1D {
                zt: 2,
                pg: 0,
                xbase: 2,
                xidx: 9,
            },
            /* 6 */ Inst::MovZ { zd: 3, zn: 0 },
            /* 7 */
            Inst::Fcmla {
                zd: 3,
                pg: 0,
                zn: 1,
                zm: 2,
                rot: Rot::R90,
            },
            /* 8 */
            Inst::Fcmla {
                zd: 3,
                pg: 0,
                zn: 1,
                zm: 2,
                rot: Rot::R0,
            },
            /* 9 */
            Inst::St1D {
                zt: 3,
                pg: 0,
                xbase: 3,
                xidx: 9,
            },
            /* 10 */ Inst::IncD { xd: 9 },
            /* 11 */ Inst::CmpX { xn: 9, xm: 8 },
            /* 12 */
            Inst::B {
                cond: Cond::Lo,
                target: 3,
            },
            /* 13 */ Inst::Ret,
        ],
    )
}

/// Listing IV-D — `mult_cplx` via ACLE `FCMLA`, fixed-length and loop-free:
/// "for small arrays of the size of the SVE vector length it is possible to
/// omit the loop overhead implied by the VLA programming model."
pub fn mult_cplx_fcmla_fixed_program() -> Program {
    Program::new(
        "mult_cplx ACLE FCMLA, fixed-length (listing IV-D)",
        vec![
            /* 0 */ Inst::Ptrue { pd: 0 },
            /* 1 */
            Inst::Ld1D {
                zt: 0,
                pg: 0,
                xbase: 1,
                xidx: XZR,
            },
            /* 2 */
            Inst::Ld1D {
                zt: 1,
                pg: 0,
                xbase: 2,
                xidx: XZR,
            },
            /* 3 */ Inst::DupImm { zd: 2, imm: 0.0 },
            /* 4 */
            Inst::Fcmla {
                zd: 2,
                pg: 0,
                zn: 0,
                zm: 1,
                rot: Rot::R90,
            },
            /* 5 */
            Inst::Fcmla {
                zd: 2,
                pg: 0,
                zn: 0,
                zm: 1,
                rot: Rot::R0,
            },
            /* 6 */
            Inst::St1D {
                zt: 2,
                pg: 0,
                xbase: 3,
                xidx: XZR,
            },
            /* 7 */ Inst::Ret,
        ],
    )
}

/// All four listings, with short ids matching the paper's section numbers.
pub fn all_listings() -> Vec<(&'static str, Program)> {
    vec![
        ("IV-A", mult_real_program()),
        ("IV-B", mult_cplx_autovec_program()),
        ("IV-C", mult_cplx_fcmla_vla_program()),
        ("IV-D", mult_cplx_fcmla_fixed_program()),
    ]
}

fn run_kernel(ctx: SveCtx, program: &Program, n_arg: u64, x: &[f64], y: &[f64]) -> ListingRun {
    let out_len = x.len();
    let bytes = 4096 + 8 * (x.len() + y.len() + out_len) + 1024;
    let mut m = Machine::with_ctx(ctx, bytes.next_power_of_two());
    let xa = m.alloc_f64_slice(x);
    let ya = m.alloc_f64_slice(y);
    let za = m.alloc(8 * out_len);
    m.set_x(0, n_arg);
    m.set_x(1, xa);
    m.set_x(2, ya);
    m.set_x(3, za);
    // Profile the emulated execution. The machine is borrowed mutably by
    // `run`, so the span cannot hold `&m.ctx` — attribute the instruction
    // delta manually from a snapshot taken just before execution.
    let mut span = qcd_trace::SpanGuard::enter(&format!("armie.{}", program.name), None);
    let base = qcd_trace::snapshot_counters(&m.ctx);
    let report = run(&mut m, program);
    span.add_counters_since(&m.ctx, &base);
    qcd_trace::record_bytes(8 * (x.len() + y.len()) as u64, 8 * out_len as u64);
    drop(span);
    let z = m.mem.load_f64_slice(za, out_len);
    ListingRun {
        z,
        report,
        machine: m,
    }
}

/// Run listing IV-A: `z[i] = x[i] * y[i]` for real arrays of length `n`.
pub fn run_mult_real(ctx: SveCtx, x: &[f64], y: &[f64]) -> ListingRun {
    assert_eq!(x.len(), y.len());
    run_kernel(ctx, &mult_real_program(), x.len() as u64, x, y)
}

/// Run listing IV-B: complex multiply of `n` interleaved (re,im) pairs
/// (slices have length `2n`), auto-vectorized code.
pub fn run_mult_cplx_autovec(ctx: SveCtx, x: &[f64], y: &[f64]) -> ListingRun {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len() % 2, 0);
    run_kernel(
        ctx,
        &mult_cplx_autovec_program(),
        (x.len() / 2) as u64,
        x,
        y,
    )
}

/// Run listing IV-C: complex multiply via FCMLA, VLA loop.
pub fn run_mult_cplx_fcmla_vla(ctx: SveCtx, x: &[f64], y: &[f64]) -> ListingRun {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len() % 2, 0);
    run_kernel(
        ctx,
        &mult_cplx_fcmla_vla_program(),
        (x.len() / 2) as u64,
        x,
        y,
    )
}

/// Run listing IV-D: complex multiply via FCMLA on exactly one vector
/// register's worth of data (`x.len()` must equal the 64-bit lane count,
/// and the binary "will only be operating correctly on matching SVE
/// hardware").
pub fn run_mult_cplx_fcmla_fixed(ctx: SveCtx, x: &[f64], y: &[f64]) -> ListingRun {
    assert_eq!(x.len(), y.len());
    assert_eq!(
        x.len(),
        ctx.vl().lanes64(),
        "listing IV-D processes exactly one full vector"
    );
    run_kernel(ctx, &mult_cplx_fcmla_fixed_program(), 0, x, y)
}

/// Scalar reference: real pairwise multiply.
pub fn mult_real_ref(x: &[f64], y: &[f64]) -> Vec<f64> {
    x.iter().zip(y).map(|(a, b)| a * b).collect()
}

/// Scalar reference: complex pairwise multiply over interleaved (re,im)
/// data.
pub fn mult_cplx_ref(x: &[f64], y: &[f64]) -> Vec<f64> {
    let mut z = vec![0.0; x.len()];
    for p in 0..x.len() / 2 {
        let (xr, xi) = (x[2 * p], x[2 * p + 1]);
        let (yr, yi) = (y[2 * p], y[2 * p + 1]);
        z[2 * p] = xr * yr - xi * yi;
        z[2 * p + 1] = xr * yi + xi * yr;
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use sve::VectorLength;

    fn data(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let y: Vec<f64> = (0..n).map(|i| 2.0 - (i as f64) * 0.25).collect();
        (x, y)
    }

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(p, q)| (p - q).abs() <= 1e-12 * q.abs().max(1.0))
    }

    #[test]
    fn listing_a_matches_reference_across_vls_and_sizes() {
        for vl in VectorLength::sweep() {
            for n in [0usize, 1, 3, 7, 8, 13, 64, 100] {
                let (x, y) = data(n);
                let run = run_mult_real(SveCtx::new(vl), &x, &y);
                assert!(close(&run.z, &mult_real_ref(&x, &y)), "IV-A vl={vl} n={n}");
            }
        }
    }

    #[test]
    fn listing_b_matches_reference_across_vls_and_sizes() {
        for vl in VectorLength::sweep() {
            for n in [0usize, 1, 2, 5, 8, 17, 50] {
                let (x, y) = data(2 * n);
                let run = run_mult_cplx_autovec(SveCtx::new(vl), &x, &y);
                assert!(close(&run.z, &mult_cplx_ref(&x, &y)), "IV-B vl={vl} n={n}");
            }
        }
    }

    #[test]
    fn listing_c_matches_reference_across_vls_and_sizes() {
        for vl in VectorLength::sweep() {
            for n in [0usize, 1, 2, 5, 8, 17, 50] {
                let (x, y) = data(2 * n);
                let run = run_mult_cplx_fcmla_vla(SveCtx::new(vl), &x, &y);
                assert!(close(&run.z, &mult_cplx_ref(&x, &y)), "IV-C vl={vl} n={n}");
            }
        }
    }

    #[test]
    fn listing_d_matches_reference_at_its_native_vl() {
        for vl in VectorLength::sweep() {
            let (x, y) = data(vl.lanes64());
            let run = run_mult_cplx_fcmla_fixed(SveCtx::new(vl), &x, &y);
            assert!(close(&run.z, &mult_cplx_ref(&x, &y)), "IV-D vl={vl}");
        }
    }

    #[test]
    fn listings_b_and_c_agree_with_each_other() {
        let vl = VectorLength::of(512);
        let (x, y) = data(34);
        let b = run_mult_cplx_autovec(SveCtx::new(vl), &x, &y);
        let c = run_mult_cplx_fcmla_vla(SveCtx::new(vl), &x, &y);
        assert!(close(&b.z, &c.z));
    }

    #[test]
    fn fcmla_needs_fewer_arithmetic_and_move_instructions() {
        // The paper's Section III-D/IV point: without FCMLA, complex
        // multiplication costs extra instructions (4 real FMAs + 2 movprfx
        // per vector of complex numbers, vs 2 FCMLA per vector of doubles =
        // 4 per vector of complex numbers, with no moves) plus structure
        // loads/stores instead of contiguous ones.
        use sve::{OpClass, Opcode};
        let vl = VectorLength::of(512);
        let (x, y) = data(2 * 64);
        let b = run_mult_cplx_autovec(SveCtx::new(vl), &x, &y);
        let c = run_mult_cplx_fcmla_vla(SveCtx::new(vl), &x, &y);
        let bc = b.machine.ctx.counters();
        let cc = c.machine.ctx.counters();
        let b_arith_and_moves = bc.total_class(OpClass::FpArith)
            + bc.total_class(OpClass::FpComplex)
            + bc.get(Opcode::Movprfx);
        let c_arith_and_moves = cc.total_class(OpClass::FpArith)
            + cc.total_class(OpClass::FpComplex)
            + cc.get(Opcode::Movprfx);
        assert!(
            c_arith_and_moves < b_arith_and_moves,
            "FCMLA {c_arith_and_moves} vs autovec {b_arith_and_moves}"
        );
        // And it avoids the structure load/store forms entirely.
        assert_eq!(cc.total_class(OpClass::LoadStruct), 0);
        assert!(bc.total_class(OpClass::LoadStruct) > 0);
    }

    #[test]
    fn cost_models_decide_the_fcmla_vs_real_arithmetic_race() {
        // Section V-E: "It is not guaranteed that the FCMLA instruction
        // outperforms alternative implementations of complex arithmetics."
        // Under the fcmla-fast profile the FCMLA kernel wins; under
        // fcmla-slow the auto-vectorized real-arithmetic kernel wins.
        use sve::CostModel;
        let vl = VectorLength::of(512);
        let (x, y) = data(2 * 240);
        let b = run_mult_cplx_autovec(SveCtx::new(vl), &x, &y);
        let c = run_mult_cplx_fcmla_vla(SveCtx::new(vl), &x, &y);
        let fast_b = b.machine.ctx.cycles(CostModel::FcmlaFast);
        let fast_c = c.machine.ctx.cycles(CostModel::FcmlaFast);
        let slow_b = b.machine.ctx.cycles(CostModel::FcmlaSlow);
        let slow_c = c.machine.ctx.cycles(CostModel::FcmlaSlow);
        assert!(fast_c < fast_b, "fcmla-fast: {fast_c} !< {fast_b}");
        assert!(slow_c > slow_b, "fcmla-slow: {slow_c} !> {slow_b}");
    }

    #[test]
    fn fixed_version_is_loop_free() {
        let vl = VectorLength::of(1024);
        let (x, y) = data(vl.lanes64());
        let d = run_mult_cplx_fcmla_fixed(SveCtx::new(vl), &x, &y);
        // 8 static instructions, 8 dynamic: no loop overhead at all.
        assert_eq!(d.report.steps, 8);
    }

    #[test]
    fn dynamic_instructions_scale_inversely_with_vl() {
        // Same workload, wider vectors -> fewer executed instructions; the
        // core promise of the wide-vector ISA for LQCD (paper Section I).
        let (x, y) = data(2 * 240);
        let narrow = run_mult_cplx_fcmla_vla(SveCtx::new(VectorLength::of(128)), &x, &y);
        let wide = run_mult_cplx_fcmla_vla(SveCtx::new(VectorLength::of(2048)), &x, &y);
        assert!(wide.report.steps * 8 < narrow.report.steps);
    }

    #[test]
    fn injected_toolchain_fault_breaks_only_tail_iterations() {
        // Reproduces the Section V-D phenomenon: with a tail-predication
        // miscompile at VL512, sizes that divide the vector length still
        // pass while others fail.
        let vl = VectorLength::of(512);
        let fault = sve::ToolchainFault::TailPredicationBug(vl);
        // 2n = 32 doubles = 4 full vectors: immune.
        let (x, y) = data(32);
        let ok = run_mult_cplx_fcmla_vla(SveCtx::with_fault(vl, fault), &x, &y);
        assert!(close(&ok.z, &mult_cplx_ref(&x, &y)));
        // 2n = 34 doubles: final partial vector is corrupted.
        let (x, y) = data(34);
        let bad = run_mult_cplx_fcmla_vla(SveCtx::with_fault(vl, fault), &x, &y);
        assert!(!close(&bad.z, &mult_cplx_ref(&x, &y)));
    }

    #[test]
    fn disassembly_contains_paper_mnemonics() {
        let asm = mult_cplx_autovec_program().disassemble();
        for needle in ["ld2d", "st2d", "fnmls", "movprfx", "brkns", "whilelo"] {
            assert!(asm.contains(needle), "{needle} missing from\n{asm}");
        }
        let asm = mult_cplx_fcmla_vla_program().disassemble();
        assert!(asm.contains("fcmla"));
        assert!(asm.contains("#90"));
    }
}
