//! The AArch64 + SVE instruction subset the paper's listings use.
//!
//! Every variant corresponds to a mnemonic appearing in Section IV of the
//! paper (plus the handful of scalar instructions around them). The
//! [`std::fmt::Display`] impl prints in the paper's assembly style so a
//! disassembly of our programs can be compared line by line with the
//! listings.

use sve::intrinsics::Rot;

/// A general-purpose register `x0`..`x30`; index 31 is `xzr`, the zero
/// register (reads 0, writes discarded).
pub type XId = u8;
/// Index of the zero register.
pub const XZR: XId = 31;

/// An SVE vector register `z0`..`z31`.
pub type ZId = u8;

/// An SVE predicate register `p0`..`p15`.
pub type PId = u8;

/// Branch conditions used by the listings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cond {
    /// `b.mi` — negative flag set (whilelo/brkns: first element active).
    Mi,
    /// `b.lo` — unsigned lower (carry clear).
    Lo,
    /// `b` — unconditional.
    Always,
}

/// One instruction. Memory operands follow the listings' addressing modes:
/// `[xbase]` or `[xbase, xidx, lsl #shift]` (byte address
/// `x[base] + (x[idx] << shift)`).
#[derive(Clone, Copy, Debug, PartialEq)]
#[allow(missing_docs)] // field names follow ARM operand conventions (zd/zn/zm/pg/...)
pub enum Inst {
    // ----- scalar -----
    /// `mov xd, xn` (with `xn = xzr` this is the loop-counter zeroing of
    /// listing IV-A line 1).
    MovX { xd: XId, xn: XId },
    /// `mov xd, #imm`.
    MovXImm { xd: XId, imm: u64 },
    /// `lsl xd, xn, #shift` (listing IV-B line 5).
    Lsl { xd: XId, xn: XId, shift: u8 },
    /// `add xd, xn, #imm`.
    AddXImm { xd: XId, xn: XId, imm: u64 },
    /// `incd xd` — advance by the number of 64-bit lanes (listing IV-A
    /// line 9); the quintessential VLA instruction.
    IncD { xd: XId },
    /// `cmp xn, xm` — sets NZCV for `b.lo` (listing IV-C line 12).
    CmpX { xn: XId, xm: XId },
    /// Conditional/unconditional branch to an instruction index.
    B { cond: Cond, target: usize },
    /// `ret` — halt.
    Ret,

    // ----- predicates -----
    /// `ptrue pd.d`.
    Ptrue { pd: PId },
    /// `whilelo pd.d, xn, xm` — sets NZCV.
    Whilelo { pd: PId, xn: XId, xm: XId },
    /// `brkns pd.b, pg/z, pn.b, pm.b` — sets NZCV (listing IV-A line 11).
    Brkns { pd: PId, pg: PId, pn: PId, pm: PId },
    /// `mov pd.b, pn.b`.
    MovP { pd: PId, pn: PId },

    // ----- vector moves -----
    /// `mov zd.d, #imm` — broadcast immediate (listing IV-C line 2).
    DupImm { zd: ZId, imm: f64 },
    /// `mov zd.d, zn.d`.
    MovZ { zd: ZId, zn: ZId },
    /// `movprfx zd, zn` (listing IV-B lines 12/14).
    Movprfx { zd: ZId, zn: ZId },

    // ----- memory -----
    /// `ld1d {zt.d}, pg/z, [xbase, xidx, lsl #3]`.
    Ld1D {
        zt: ZId,
        pg: PId,
        xbase: XId,
        xidx: XId,
    },
    /// `ld2d {zt.d, zt2.d}, pg/z, [xbase, xidx, lsl #3]`.
    Ld2D {
        zt: ZId,
        zt2: ZId,
        pg: PId,
        xbase: XId,
        xidx: XId,
    },
    /// `st1d {zt.d}, pg, [xbase, xidx, lsl #3]`.
    St1D {
        zt: ZId,
        pg: PId,
        xbase: XId,
        xidx: XId,
    },
    /// `st2d {zt.d, zt2.d}, pg, [xbase, xidx, lsl #3]`.
    St2D {
        zt: ZId,
        zt2: ZId,
        pg: PId,
        xbase: XId,
        xidx: XId,
    },

    // ----- arithmetic -----
    /// `fmul zd.d, zn.d, zm.d` — unpredicated.
    Fmul { zd: ZId, zn: ZId, zm: ZId },
    /// `fmla zd.d, pg/m, zn.d, zm.d` — `zd += zn * zm`.
    Fmla { zd: ZId, pg: PId, zn: ZId, zm: ZId },
    /// `fnmls zd.d, pg/m, zn.d, zm.d` — `zd = zn * zm - zd`.
    Fnmls { zd: ZId, pg: PId, zn: ZId, zm: ZId },
    /// `fcmla zd.d, pg/m, zn.d, zm.d, #rot` (listings IV-C/IV-D).
    Fcmla {
        zd: ZId,
        pg: PId,
        zn: ZId,
        zm: ZId,
        rot: Rot,
    },
}

fn rot_imm(rot: Rot) -> u32 {
    match rot {
        Rot::R0 => 0,
        Rot::R90 => 90,
        Rot::R180 => 180,
        Rot::R270 => 270,
    }
}

fn xname(x: XId) -> String {
    if x == XZR {
        "xzr".to_string()
    } else {
        format!("x{x}")
    }
}

impl std::fmt::Display for Inst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Inst::MovX { xd, xn } => write!(f, "mov {}, {}", xname(xd), xname(xn)),
            Inst::MovXImm { xd, imm } => write!(f, "mov {}, #{imm}", xname(xd)),
            Inst::Lsl { xd, xn, shift } => {
                write!(f, "lsl {}, {}, #{shift}", xname(xd), xname(xn))
            }
            Inst::AddXImm { xd, xn, imm } => {
                write!(f, "add {}, {}, #{imm}", xname(xd), xname(xn))
            }
            Inst::IncD { xd } => write!(f, "incd {}", xname(xd)),
            Inst::CmpX { xn, xm } => write!(f, "cmp {}, {}", xname(xn), xname(xm)),
            Inst::B { cond, target } => match cond {
                Cond::Mi => write!(f, "b.mi .L{target}"),
                Cond::Lo => write!(f, "b.lo .L{target}"),
                Cond::Always => write!(f, "b .L{target}"),
            },
            Inst::Ret => write!(f, "ret"),
            Inst::Ptrue { pd } => write!(f, "ptrue p{pd}.d"),
            Inst::Whilelo { pd, xn, xm } => {
                write!(f, "whilelo p{pd}.d, {}, {}", xname(xn), xname(xm))
            }
            Inst::Brkns { pd, pg, pn, pm } => {
                write!(f, "brkns p{pd}.b, p{pg}/z, p{pn}.b, p{pm}.b")
            }
            Inst::MovP { pd, pn } => write!(f, "mov p{pd}.b, p{pn}.b"),
            Inst::DupImm { zd, imm } => write!(f, "mov z{zd}.d, #{imm}"),
            Inst::MovZ { zd, zn } => write!(f, "mov z{zd}.d, z{zn}.d"),
            Inst::Movprfx { zd, zn } => write!(f, "movprfx z{zd}, z{zn}"),
            Inst::Ld1D {
                zt,
                pg,
                xbase,
                xidx,
            } => write!(
                f,
                "ld1d {{z{zt}.d}}, p{pg}/z, [{}, {}, lsl #3]",
                xname(xbase),
                xname(xidx)
            ),
            Inst::Ld2D {
                zt,
                zt2,
                pg,
                xbase,
                xidx,
            } => write!(
                f,
                "ld2d {{z{zt}.d, z{zt2}.d}}, p{pg}/z, [{}, {}, lsl #3]",
                xname(xbase),
                xname(xidx)
            ),
            Inst::St1D {
                zt,
                pg,
                xbase,
                xidx,
            } => write!(
                f,
                "st1d {{z{zt}.d}}, p{pg}, [{}, {}, lsl #3]",
                xname(xbase),
                xname(xidx)
            ),
            Inst::St2D {
                zt,
                zt2,
                pg,
                xbase,
                xidx,
            } => write!(
                f,
                "st2d {{z{zt}.d, z{zt2}.d}}, p{pg}, [{}, {}, lsl #3]",
                xname(xbase),
                xname(xidx)
            ),
            Inst::Fmul { zd, zn, zm } => write!(f, "fmul z{zd}.d, z{zn}.d, z{zm}.d"),
            Inst::Fmla { zd, pg, zn, zm } => {
                write!(f, "fmla z{zd}.d, p{pg}/m, z{zn}.d, z{zm}.d")
            }
            Inst::Fnmls { zd, pg, zn, zm } => {
                write!(f, "fnmls z{zd}.d, p{pg}/m, z{zn}.d, z{zm}.d")
            }
            Inst::Fcmla {
                zd,
                pg,
                zn,
                zm,
                rot,
            } => write!(
                f,
                "fcmla z{zd}.d, p{pg}/m, z{zn}.d, z{zm}.d, #{}",
                rot_imm(rot)
            ),
        }
    }
}

/// A program: a flat instruction sequence. Branch targets are instruction
/// indices; [`Program::disassemble`] prints labels for every branch target
/// in the paper's `.LBBn` style.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// The instructions, in order.
    pub insts: Vec<Inst>,
    /// Human-readable name (e.g. "mult_real (listing IV-A)").
    pub name: String,
}

impl Program {
    /// Create a named program.
    pub fn new(name: impl Into<String>, insts: Vec<Inst>) -> Self {
        Program {
            insts,
            name: name.into(),
        }
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Paper-style disassembly with `.Ln:` labels at branch targets.
    pub fn disassemble(&self) -> String {
        use std::collections::BTreeSet;
        let targets: BTreeSet<usize> = self
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::B { target, .. } => Some(*target),
                _ => None,
            })
            .collect();
        let mut out = String::new();
        out.push_str(&format!("// {}\n", self.name));
        for (idx, inst) in self.insts.iter().enumerate() {
            if targets.contains(&idx) {
                out.push_str(&format!(".L{idx}:\n"));
            }
            out.push_str(&format!("    {inst}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(Inst::MovX { xd: 8, xn: XZR }.to_string(), "mov x8, xzr");
        assert_eq!(
            Inst::Ld1D {
                zt: 0,
                pg: 1,
                xbase: 1,
                xidx: 8
            }
            .to_string(),
            "ld1d {z0.d}, p1/z, [x1, x8, lsl #3]"
        );
        assert_eq!(
            Inst::Fcmla {
                zd: 3,
                pg: 0,
                zn: 1,
                zm: 2,
                rot: Rot::R90
            }
            .to_string(),
            "fcmla z3.d, p0/m, z1.d, z2.d, #90"
        );
        assert_eq!(
            Inst::Brkns {
                pd: 2,
                pg: 0,
                pn: 1,
                pm: 2
            }
            .to_string(),
            "brkns p2.b, p0/z, p1.b, p2.b"
        );
        assert_eq!(Inst::IncD { xd: 8 }.to_string(), "incd x8");
    }

    #[test]
    fn disassembly_labels_branch_targets() {
        let p = Program::new(
            "loop",
            vec![
                Inst::MovX { xd: 8, xn: XZR },
                Inst::IncD { xd: 8 },
                Inst::B {
                    cond: Cond::Mi,
                    target: 1,
                },
                Inst::Ret,
            ],
        );
        let asm = p.disassemble();
        assert!(asm.contains(".L1:"));
        assert!(asm.contains("b.mi .L1"));
        assert!(asm.contains("// loop"));
    }
}
