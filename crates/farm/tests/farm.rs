//! End-to-end farm tests: a mixed workload runs to completion with a valid
//! status surface, an interrupted service recovers bit-identically, and
//! preemption never perturbs chain results.

use grid::prelude::*;
use qcd_farm::{
    read_done, render_validated_status, validate_status_json, verify_dirs, DoneDigest, Farm,
    FarmConfig, HmcStreamSpec, JobPaths, JobSpec, Priority, SolveSpec,
};
use qcd_hmc::{HmcParams, IntegratorKind};
use qcd_trace::Json;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

fn cfg() -> FarmConfig {
    FarmConfig {
        dims: [4, 4, 4, 4],
        vl_bits: 256,
        backend: SimdBackend::Fcmla,
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qcd-farm-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn stream(name: &str, seed: u64, trajectories: u64, chunk: u64) -> JobSpec {
    JobSpec::Hmc(HmcStreamSpec {
        name: name.into(),
        priority: Priority::Low,
        seed,
        params: HmcParams {
            beta: 5.6,
            n_steps: 4,
            step_size: 0.125,
            integrator: IntegratorKind::Omelyan,
        },
        trajectories,
        chunk,
    })
}

fn burst(name: &str, requests: u64) -> JobSpec {
    JobSpec::Solve(SolveSpec {
        name: name.into(),
        priority: Priority::High,
        gauge_seed: 77,
        mass: 0.2,
        rhs_seeds: (0..requests).map(|i| 500 + i).collect(),
        tol: 1e-6,
        max_iter: 2000,
        subspace: None,
    })
}

#[test]
fn a_mixed_workload_runs_to_completion_with_a_valid_status_surface() {
    let dir = scratch("mixed");
    let farm = Farm::open(&dir, cfg()).unwrap();
    farm.submit(stream("stream-a", 11, 2, 1)).unwrap();
    farm.submit(stream("stream-b", 12, 2, 1)).unwrap();
    farm.submit(burst("burst-0", 6)).unwrap();
    let stop = AtomicBool::new(false);
    let report = farm.run(2, &stop, None).unwrap();
    assert!(farm.all_done(), "every job must reach done");
    assert!(!report.stopped);
    // 2 trajectories/stream at chunk 1, plus plan_batches(6) = [4, 2].
    assert_eq!(report.units, 2 + 2 + 2);

    // Every job left a digest that reads back.
    for name in ["stream-a", "stream-b"] {
        let DoneDigest::Hmc { trajectory, .. } = read_done(&JobPaths::done(&dir, name)).unwrap()
        else {
            panic!("stream digest expected")
        };
        assert_eq!(trajectory, 2);
    }
    let DoneDigest::Solve(reqs) = read_done(&JobPaths::done(&dir, "burst-0")).unwrap() else {
        panic!("solve digest expected")
    };
    assert_eq!(reqs.len(), 6);
    assert!(reqs.iter().enumerate().all(|(i, r)| r.index == i as u64));

    // The status document validates and reports the drained state.
    let doc = render_validated_status(&farm).unwrap();
    let parsed = Json::parse(&doc).unwrap();
    validate_status_json(&parsed).unwrap();
    let jobs = parsed.get("jobs").and_then(Json::as_arr).unwrap();
    assert_eq!(jobs.len(), 3);
    assert!(jobs
        .iter()
        .all(|j| j.get("state").and_then(Json::as_str) == Some("done")));
    assert_eq!(
        parsed.get("units_done").and_then(Json::as_u64),
        Some(report.units)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn an_interrupted_service_recovers_bit_identically() {
    let mix = |farm: &Farm| {
        farm.submit(stream("stream-a", 21, 3, 1)).unwrap();
        farm.submit(stream("stream-b", 22, 3, 1)).unwrap();
        farm.submit(burst("burst-0", 5)).unwrap();
    };

    // Reference: the same mix drained without interruption.
    let ref_dir = scratch("recover-ref");
    let reference = Farm::open(&ref_dir, cfg()).unwrap();
    mix(&reference);
    reference.run(1, &AtomicBool::new(false), None).unwrap();
    assert!(reference.all_done());

    // Interrupted service: the unit budget cuts the run mid-mix, exactly
    // like a SIGTERM at a checkpoint boundary.
    let cut_dir = scratch("recover-cut");
    let first = Farm::open(&cut_dir, cfg()).unwrap();
    mix(&first);
    let report = first.run(1, &AtomicBool::new(false), Some(3)).unwrap();
    assert!(report.stopped, "the budget must stop the service early");
    assert!(!first.all_done(), "work must remain after the cut");
    drop(first);

    // Recovery: reopen the directory and drain what the scan re-enqueues.
    let second = Farm::open(&cut_dir, cfg()).unwrap();
    second.run(1, &AtomicBool::new(false), None).unwrap();
    assert!(second.all_done(), "recovery must finish every job");

    verify_dirs(&ref_dir, &cut_dir).unwrap();
    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&cut_dir).ok();
}

#[test]
fn a_shared_subspace_deflates_farm_bursts_bit_identically() {
    // Build the subspace for the exact operator the bursts solve against
    // (gauge seed 77, mass 0.2) and park it in the farm directory.
    let dir = scratch("deflated");
    std::fs::create_dir_all(&dir).unwrap();
    let grid = cfg().grid();
    let op = WilsonDirac::new(random_gauge(grid.clone(), 77), 0.2);
    let (sub, _) = qcd_deflate::build_subspace(&op, 4, 99);
    sub.save(&JobPaths::subspace(&dir, "shared"), Precision::F64)
        .unwrap();

    // Two bursts share the one subspace; a third runs undeflated.
    let deflated = |name: &str, seeds: std::ops::Range<u64>| {
        JobSpec::Solve(SolveSpec {
            name: name.into(),
            priority: Priority::Normal,
            gauge_seed: 77,
            mass: 0.2,
            rhs_seeds: seeds.map(|i| 500 + i).collect(),
            tol: 1e-6,
            max_iter: 2000,
            subspace: Some("shared".into()),
        })
    };
    let farm = Farm::open(&dir, cfg()).unwrap();
    farm.submit(deflated("defl-a", 0..3)).unwrap();
    farm.submit(deflated("defl-b", 3..5)).unwrap();
    farm.submit(burst("plain", 2)).unwrap();
    farm.run(2, &AtomicBool::new(false), None).unwrap();
    assert!(farm.all_done());

    // Every deflated request digest matches a standalone defl_cg solve of
    // the same seed, regardless of which job/batch carried it.
    let reload =
        qcd_deflate::Subspace::load(&JobPaths::subspace(&dir, "shared"), &grid, 0.2).unwrap();
    let expect = |seed: u64| {
        let b = FermionField::random(grid.clone(), 500 + seed);
        let (x, rep) = qcd_deflate::defl_cg(&op, &reload, &b, 1e-6, 2000);
        (
            rep.iterations as u64,
            rep.residual.to_bits(),
            x.norm2().to_bits(),
        )
    };
    for (name, seeds) in [("defl-a", 0..3u64), ("defl-b", 3..5)] {
        let DoneDigest::Solve(reqs) = read_done(&JobPaths::done(&dir, name)).unwrap() else {
            panic!("solve digest expected for {name}")
        };
        for (slot, seed) in seeds.enumerate() {
            let (iters, res, norm) = expect(seed);
            assert_eq!(reqs[slot].iterations, iters, "{name} req {slot}");
            assert_eq!(reqs[slot].residual_bits, res, "{name} req {slot}");
            assert_eq!(reqs[slot].norm2_bits, norm, "{name} req {slot}");
        }
    }

    // The plain burst is unaffected by deflated neighbours.
    let DoneDigest::Solve(plain) = read_done(&JobPaths::done(&dir, "plain")).unwrap() else {
        panic!("solve digest expected")
    };
    let (x, rep) = cg(&op, &FermionField::random(grid.clone(), 500), 1e-6, 2000);
    assert_eq!(plain[0].iterations, rep.iterations as u64);
    assert_eq!(plain[0].residual_bits, rep.residual.to_bits());
    assert_eq!(plain[0].norm2_bits, x.norm2().to_bits());

    // A burst naming a missing subspace fails the run as a typed IO error.
    let missing = Farm::open(&scratch("deflated-missing"), cfg()).unwrap();
    missing
        .submit(JobSpec::Solve(SolveSpec {
            name: "orphan".into(),
            priority: Priority::Normal,
            gauge_seed: 77,
            mass: 0.2,
            rhs_seeds: vec![900],
            tol: 1e-6,
            max_iter: 2000,
            subspace: Some("nowhere".into()),
        }))
        .unwrap();
    assert!(missing.run(1, &AtomicBool::new(false), None).is_err());
    std::fs::remove_dir_all(missing.dir()).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn preemption_checkpoints_the_stream_without_changing_its_results() {
    // Reference: the stream alone, uninterrupted, one giant chunk.
    let ref_dir = scratch("preempt-ref");
    let reference = Farm::open(&ref_dir, cfg()).unwrap();
    reference.submit(stream("stream-a", 31, 8, 8)).unwrap();
    reference.run(1, &AtomicBool::new(false), None).unwrap();
    assert!(reference.all_done());

    // Contended: the same stream on one worker, with a high-priority burst
    // submitted while the chunk is mid-flight. The burst must preempt the
    // stream at a trajectory boundary and run first.
    let dir = scratch("preempt");
    let farm = Farm::open(&dir, cfg()).unwrap();
    farm.submit(stream("stream-a", 31, 8, 8)).unwrap();
    let stop = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        let handle = scope.spawn(|| farm.run(1, &stop, None));
        std::thread::sleep(Duration::from_millis(120));
        farm.submit(burst("burst-hi", 4)).unwrap();
        handle.join().unwrap().unwrap()
    });
    assert!(farm.all_done(), "both jobs must finish");
    assert!(
        report.preemptions >= 1,
        "the high-priority burst must preempt the running chunk"
    );

    // The preempted-and-resumed chain is bit-identical to the
    // uninterrupted one; so is its digest.
    for artifact in [JobPaths::chain, JobPaths::done] {
        let a = std::fs::read(artifact(&ref_dir, "stream-a")).unwrap();
        let b = std::fs::read(artifact(&dir, "stream-a")).unwrap();
        assert_eq!(a, b, "stream artifacts must be byte-identical");
    }
    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}
