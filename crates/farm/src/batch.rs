//! Batch-coalescing policy: how pending solve requests become
//! [`FermionBlock`](grid::prelude::FermionBlock) batches.
//!
//! The block solver's per-RHS bit-identity guarantee means batch shape is
//! purely a throughput decision, so the policy is a standalone pure
//! function: greedily carve the preferred widths ([`PREFERRED_WIDTHS`],
//! largest first — each link load is amortised over the whole batch), and
//! let whatever remains ride as one final undersized batch rather than
//! wait for traffic that may never come.

/// Batch widths the scheduler prefers, in descending order.
pub const PREFERRED_WIDTHS: [usize; 3] = [16, 8, 4];

/// Split `pending` requests into batch widths: greedy largest-fit over
/// [`PREFERRED_WIDTHS`], then one remainder batch (< 4) if anything is
/// left. The widths sum to `pending` exactly.
pub fn plan_batches(pending: usize) -> Vec<usize> {
    let mut plan = Vec::new();
    let mut left = pending;
    for &w in &PREFERRED_WIDTHS {
        while left >= w {
            plan.push(w);
            left -= w;
        }
    }
    if left > 0 {
        plan.push(left);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_cover_exactly_the_pending_count() {
        for pending in 0..200 {
            let plan = plan_batches(pending);
            assert_eq!(plan.iter().sum::<usize>(), pending);
            for &w in &plan {
                assert!((1..=16).contains(&w));
            }
        }
    }

    #[test]
    fn greedy_largest_fit_shapes() {
        assert!(plan_batches(0).is_empty());
        assert_eq!(plan_batches(3), [3]);
        assert_eq!(plan_batches(4), [4]);
        assert_eq!(plan_batches(6), [4, 2]);
        assert_eq!(plan_batches(10), [8, 2]);
        assert_eq!(plan_batches(16), [16]);
        assert_eq!(plan_batches(29), [16, 8, 4, 1]);
        assert_eq!(plan_batches(48), [16, 16, 16]);
    }

    #[test]
    fn at_most_one_batch_below_the_smallest_preferred_width() {
        for pending in 0..200 {
            let small = plan_batches(pending).iter().filter(|&&w| w < 4).count();
            assert!(small <= 1, "pending {pending}");
        }
    }
}
