//! Job specifications and their on-disk form.
//!
//! Every job the farm accepts is fully described by a small, deterministic
//! *spec*: an HMC stream is `(seed, physics params, target trajectories)`,
//! a solve burst is `(gauge seed, mass, per-request RHS seeds, tolerance)`.
//! Because the whole stack is counter-based-RNG deterministic, the spec IS
//! the job — a crashed farm can reconstruct every pending work unit from
//! spec files alone and reproduce the original results bit for bit, which
//! is what makes `kill -9` recovery testable by byte comparison.
//!
//! Specs are persisted as `qcd-io/v1` containers (`<name>.job.qio`): a
//! `farm.job` record carrying the spec fields followed by a `farm.config`
//! record pinning the lattice geometry. Finished jobs get a `farm.done`
//! container holding the result digest (final trajectory + plaquette bits
//! for streams; per-request iteration counts, residual bits, and solution
//! norms for solves). All scalars cross the disk as IEEE-754 raw bits, so
//! digests are byte-comparable across runs.

use grid::prelude::*;
use qcd_hmc::{HmcParams, IntegratorKind};
use qcd_io::{Container, IoError, Record, Result};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Record type of the job-spec payload (first record of `*.job.qio`, so a
/// directory scan classifies spec files as `Other("farm.job")`).
pub const JOB_RECORD: &str = "farm.job";

/// Record type of the lattice-geometry record inside a spec container.
pub const CONFIG_RECORD: &str = "farm.config";

/// Record type of the result digest (first record of `*.done.qio`).
pub const DONE_RECORD: &str = "farm.done";

/// Scheduling priority. Higher drains first; FIFO within a level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Background work (ensemble generation usually runs here).
    Low = 0,
    /// The default.
    Normal = 1,
    /// Preempts lower-priority work at the next checkpoint boundary.
    High = 2,
}

impl Priority {
    /// Stable lowercase name for status output.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    fn from_u8(v: u8) -> Result<Priority> {
        match v {
            0 => Ok(Priority::Low),
            1 => Ok(Priority::Normal),
            2 => Ok(Priority::High),
            other => Err(bad(format!("unknown priority tag {other}"))),
        }
    }
}

/// The lattice every job of one farm runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FarmConfig {
    /// Lattice extents.
    pub dims: [usize; 4],
    /// SVE vector length in bits.
    pub vl_bits: usize,
    /// Complex-arithmetic backend.
    pub backend: SimdBackend,
}

impl FarmConfig {
    /// Build the grid this configuration describes.
    pub fn grid(&self) -> Arc<Grid> {
        Grid::new(self.dims, VectorLength::of(self.vl_bits), self.backend)
    }
}

/// An HMC ensemble stream: advance a Markov chain to `trajectories`,
/// checkpointing every `chunk` trajectories.
#[derive(Clone, Debug, PartialEq)]
pub struct HmcStreamSpec {
    /// Job name — the file stem of its spec/checkpoint/done containers.
    pub name: String,
    /// Scheduling priority.
    pub priority: Priority,
    /// Chain seed (cold start).
    pub seed: u64,
    /// Physics parameters.
    pub params: HmcParams,
    /// Target trajectory count.
    pub trajectories: u64,
    /// Trajectories per work unit — the preemption/checkpoint granularity.
    pub chunk: u64,
}

/// A burst of inversion requests against one gauge background. Request `i`
/// inverts on `FermionField::random(grid, rhs_seeds[i])`; results are
/// digested in request order regardless of how the scheduler batches them.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveSpec {
    /// Job name — the file stem of its spec/done containers.
    pub name: String,
    /// Scheduling priority.
    pub priority: Priority,
    /// Seed of the gauge background the operator is built on.
    pub gauge_seed: u64,
    /// Wilson mass parameter.
    pub mass: f64,
    /// One RHS seed per request.
    pub rhs_seeds: Vec<u64>,
    /// Relative residual target.
    pub tol: f64,
    /// Iteration budget per solve.
    pub max_iter: u64,
    /// Stem of a shared low-mode subspace checkpoint
    /// (`<stem>.subspace.qio` in the farm directory, written by
    /// `qcd_deflate::Subspace::save`). When set, every batch of this job
    /// runs the deflated solver against that subspace — still bit-identical
    /// to standalone `defl_cg` solves of the same requests. The subspace
    /// must match the job's lattice and mass; mismatches are typed errors
    /// at batch execution.
    pub subspace: Option<String>,
}

/// Any job the farm schedules.
#[derive(Clone, Debug, PartialEq)]
pub enum JobSpec {
    /// An ensemble stream.
    Hmc(HmcStreamSpec),
    /// A solve burst.
    Solve(SolveSpec),
}

impl JobSpec {
    /// The job's name (file stem of its containers).
    pub fn name(&self) -> &str {
        match self {
            JobSpec::Hmc(s) => &s.name,
            JobSpec::Solve(s) => &s.name,
        }
    }

    /// The job's scheduling priority.
    pub fn priority(&self) -> Priority {
        match self {
            JobSpec::Hmc(s) => s.priority,
            JobSpec::Solve(s) => s.priority,
        }
    }

    /// Stable kind name for status output.
    pub fn kind_name(&self) -> &'static str {
        match self {
            JobSpec::Hmc(_) => "hmc-stream",
            JobSpec::Solve(_) => "solve",
        }
    }

    /// Total progress units: trajectories for streams, requests for solves.
    pub fn target(&self) -> u64 {
        match self {
            JobSpec::Hmc(s) => s.trajectories,
            JobSpec::Solve(s) => s.rhs_seeds.len() as u64,
        }
    }

    /// Reject names that cannot serve as file stems. Dots are reserved for
    /// the `<name>.job.qio` / `<name>.chain.qio` suffix scheme.
    pub fn validate_name(&self) -> Result<()> {
        let ok_stem = |s: &str| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        };
        let name = self.name();
        if !ok_stem(name) {
            return Err(bad(format!(
                "job name `{name}` must be non-empty [A-Za-z0-9_-]"
            )));
        }
        if let JobSpec::Solve(SolveSpec {
            subspace: Some(stem),
            ..
        }) = self
        {
            if !ok_stem(stem) {
                return Err(bad(format!(
                    "subspace stem `{stem}` must be non-empty [A-Za-z0-9_-]"
                )));
            }
        }
        Ok(())
    }
}

/// Paths of a job's on-disk artifacts inside the farm directory.
pub struct JobPaths;

impl JobPaths {
    /// The spec container.
    pub fn spec(dir: &Path, name: &str) -> PathBuf {
        dir.join(format!("{name}.job.qio"))
    }

    /// The chain checkpoint (HMC streams only).
    pub fn chain(dir: &Path, name: &str) -> PathBuf {
        dir.join(format!("{name}.chain.qio"))
    }

    /// The result digest written on completion.
    pub fn done(dir: &Path, name: &str) -> PathBuf {
        dir.join(format!("{name}.done.qio"))
    }

    /// A shared low-mode subspace checkpoint (referenced by
    /// [`SolveSpec::subspace`]; written by `qcd_deflate::Subspace::save`).
    pub fn subspace(dir: &Path, stem: &str) -> PathBuf {
        dir.join(format!("{stem}.subspace.qio"))
    }
}

fn bad(msg: String) -> IoError {
    IoError::BadRecord {
        record: JOB_RECORD.to_string(),
        msg,
    }
}

/// Little-endian spec payload writer.
#[derive(Default)]
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.0.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian payload reader.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(bad(format!("payload too short for {what}")));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }
    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }
    fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }
    fn str(&mut self, what: &str) -> Result<String> {
        let len = self.u64(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad(format!("{what} is not UTF-8")))
    }
    fn done(&self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(bad(format!(
                "{} trailing bytes after the last field",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn config_record(cfg: &FarmConfig) -> Record {
    let mut e = Enc::default();
    for d in cfg.dims {
        e.u64(d as u64);
    }
    e.u64(cfg.vl_bits as u64);
    e.str(cfg.backend.name());
    Record::new(CONFIG_RECORD, e.0)
}

fn config_from_record(r: &Record) -> Result<FarmConfig> {
    let mut d = Dec::new(&r.payload);
    let mut dims = [0usize; 4];
    for dim in &mut dims {
        *dim = d.u64("lattice extent")? as usize;
    }
    let vl_bits = d.u64("vector length")? as usize;
    let backend_name = d.str("backend name")?;
    d.done()?;
    let backend = [
        SimdBackend::Fcmla,
        SimdBackend::RealArith,
        SimdBackend::GenericAutovec,
    ]
    .into_iter()
    .find(|b| b.name() == backend_name)
    .ok_or_else(|| bad(format!("unknown backend `{backend_name}`")))?;
    Ok(FarmConfig {
        dims,
        vl_bits,
        backend,
    })
}

fn job_record(spec: &JobSpec) -> Record {
    let mut e = Enc::default();
    match spec {
        JobSpec::Hmc(s) => {
            e.u8(0);
            e.str(&s.name);
            e.u8(s.priority as u8);
            e.u64(s.seed);
            e.f64(s.params.beta);
            e.u64(s.params.n_steps as u64);
            e.f64(s.params.step_size);
            e.u8(match s.params.integrator {
                IntegratorKind::Leapfrog => 0,
                IntegratorKind::Omelyan => 1,
            });
            e.u64(s.trajectories);
            e.u64(s.chunk);
        }
        JobSpec::Solve(s) => {
            e.u8(1);
            e.str(&s.name);
            e.u8(s.priority as u8);
            e.u64(s.gauge_seed);
            e.f64(s.mass);
            e.f64(s.tol);
            e.u64(s.max_iter);
            match &s.subspace {
                None => e.u8(0),
                Some(stem) => {
                    e.u8(1);
                    e.str(stem);
                }
            }
            e.u64(s.rhs_seeds.len() as u64);
            for &seed in &s.rhs_seeds {
                e.u64(seed);
            }
        }
    }
    Record::new(JOB_RECORD, e.0)
}

fn job_from_record(r: &Record) -> Result<JobSpec> {
    let mut d = Dec::new(&r.payload);
    let kind = d.u8("job kind tag")?;
    let name = d.str("job name")?;
    let priority = Priority::from_u8(d.u8("priority tag")?)?;
    let spec = match kind {
        0 => {
            let seed = d.u64("chain seed")?;
            let beta = d.f64("beta")?;
            let n_steps = d.u64("n_steps")? as usize;
            let step_size = d.f64("step_size")?;
            let integrator = match d.u8("integrator tag")? {
                0 => IntegratorKind::Leapfrog,
                1 => IntegratorKind::Omelyan,
                other => return Err(bad(format!("unknown integrator tag {other}"))),
            };
            let trajectories = d.u64("trajectory target")?;
            let chunk = d.u64("chunk size")?;
            JobSpec::Hmc(HmcStreamSpec {
                name,
                priority,
                seed,
                params: HmcParams {
                    beta,
                    n_steps,
                    step_size,
                    integrator,
                },
                trajectories,
                chunk,
            })
        }
        1 => {
            let gauge_seed = d.u64("gauge seed")?;
            let mass = d.f64("mass")?;
            let tol = d.f64("tolerance")?;
            let max_iter = d.u64("iteration budget")?;
            let subspace = match d.u8("subspace flag")? {
                0 => None,
                1 => Some(d.str("subspace stem")?),
                other => return Err(bad(format!("unknown subspace flag {other}"))),
            };
            let n = d.u64("request count")? as usize;
            let mut rhs_seeds = Vec::with_capacity(n);
            for _ in 0..n {
                rhs_seeds.push(d.u64("RHS seed")?);
            }
            JobSpec::Solve(SolveSpec {
                name,
                priority,
                gauge_seed,
                mass,
                rhs_seeds,
                tol,
                max_iter,
                subspace,
            })
        }
        other => return Err(bad(format!("unknown job kind tag {other}"))),
    };
    d.done()?;
    Ok(spec)
}

/// Persist a spec as `<name>.job.qio` (atomic write). The `farm.job` record
/// comes first so [`qcd_io::scan_checkpoints`] classifies the file by it.
pub fn write_spec(dir: &Path, cfg: &FarmConfig, spec: &JobSpec) -> Result<()> {
    spec.validate_name()?;
    let mut c = Container::new();
    c.push(job_record(spec));
    c.push(config_record(cfg));
    c.write_atomic(&JobPaths::spec(dir, spec.name()))?;
    Ok(())
}

/// Load a spec container back, validating CRCs and the geometry record.
pub fn read_spec(path: &Path) -> Result<(FarmConfig, JobSpec)> {
    let c = Container::open(path)?;
    let spec = job_from_record(c.expect(JOB_RECORD)?)?;
    let cfg = config_from_record(c.expect(CONFIG_RECORD)?)?;
    Ok((cfg, spec))
}

/// Result digest of one completed solve request.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestDigest {
    /// Request index inside its job (its position in `rhs_seeds`).
    pub index: u64,
    /// CG iterations of this request (identical to a standalone solve).
    pub iterations: u64,
    /// Final relative residual, raw bits.
    pub residual_bits: u64,
    /// Solution `‖x‖²`, raw bits — a cheap deterministic checksum.
    pub norm2_bits: u64,
}

/// Result digest of a completed job — the byte-comparable proof of what a
/// run produced.
#[derive(Clone, Debug, PartialEq)]
pub enum DoneDigest {
    /// Stream digest: where the chain ended.
    Hmc {
        /// Final trajectory count.
        trajectory: u64,
        /// Final average plaquette, raw bits.
        plaquette_bits: u64,
        /// Accepted trajectories.
        accepted: u64,
    },
    /// Solve digest: one entry per request, in request order.
    Solve(Vec<RequestDigest>),
}

fn done_record(digest: &DoneDigest) -> Record {
    let mut e = Enc::default();
    match digest {
        DoneDigest::Hmc {
            trajectory,
            plaquette_bits,
            accepted,
        } => {
            e.u8(0);
            e.u64(*trajectory);
            e.u64(*plaquette_bits);
            e.u64(*accepted);
        }
        DoneDigest::Solve(reqs) => {
            e.u8(1);
            e.u64(reqs.len() as u64);
            for r in reqs {
                e.u64(r.index);
                e.u64(r.iterations);
                e.u64(r.residual_bits);
                e.u64(r.norm2_bits);
            }
        }
    }
    Record::new(DONE_RECORD, e.0)
}

fn done_from_record(r: &Record) -> Result<DoneDigest> {
    let mut d = Dec::new(&r.payload);
    let digest = match d.u8("digest kind tag")? {
        0 => DoneDigest::Hmc {
            trajectory: d.u64("trajectory")?,
            plaquette_bits: d.u64("plaquette bits")?,
            accepted: d.u64("accepted count")?,
        },
        1 => {
            let n = d.u64("request count")? as usize;
            let mut reqs = Vec::with_capacity(n);
            for _ in 0..n {
                reqs.push(RequestDigest {
                    index: d.u64("request index")?,
                    iterations: d.u64("iterations")?,
                    residual_bits: d.u64("residual bits")?,
                    norm2_bits: d.u64("norm2 bits")?,
                });
            }
            DoneDigest::Solve(reqs)
        }
        other => return Err(bad(format!("unknown digest kind tag {other}"))),
    };
    d.done()?;
    Ok(digest)
}

/// Atomically write `<name>.done.qio` marking a job complete.
pub fn write_done(dir: &Path, name: &str, digest: &DoneDigest) -> Result<()> {
    let mut c = Container::new();
    c.push(done_record(digest));
    c.write_atomic(&JobPaths::done(dir, name))?;
    Ok(())
}

/// Read a result digest back.
pub fn read_done(path: &Path) -> Result<DoneDigest> {
    let c = Container::open(path)?;
    done_from_record(c.expect(DONE_RECORD)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FarmConfig {
        FarmConfig {
            dims: [4, 4, 4, 4],
            vl_bits: 256,
            backend: SimdBackend::Fcmla,
        }
    }

    fn hmc_spec() -> JobSpec {
        JobSpec::Hmc(HmcStreamSpec {
            name: "stream-a".into(),
            priority: Priority::Low,
            seed: 17,
            params: HmcParams {
                beta: 5.6,
                n_steps: 8,
                step_size: 0.0625,
                integrator: IntegratorKind::Omelyan,
            },
            trajectories: 12,
            chunk: 3,
        })
    }

    fn solve_spec() -> JobSpec {
        JobSpec::Solve(SolveSpec {
            name: "burst_0".into(),
            priority: Priority::High,
            gauge_seed: 91,
            mass: 0.2,
            rhs_seeds: vec![5, 6, 7],
            tol: 1e-8,
            max_iter: 2000,
            subspace: None,
        })
    }

    #[test]
    fn specs_round_trip_through_their_containers() {
        let dir = std::env::temp_dir().join(format!("qcd-farm-spec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for spec in [hmc_spec(), solve_spec()] {
            write_spec(&dir, &cfg(), &spec).unwrap();
            let (back_cfg, back) = read_spec(&JobPaths::spec(&dir, spec.name())).unwrap();
            assert_eq!(back_cfg, cfg());
            assert_eq!(back, spec);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn done_digests_round_trip() {
        let dir = std::env::temp_dir().join(format!("qcd-farm-done-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let digests = [
            DoneDigest::Hmc {
                trajectory: 12,
                plaquette_bits: 0.58f64.to_bits(),
                accepted: 11,
            },
            DoneDigest::Solve(vec![RequestDigest {
                index: 0,
                iterations: 61,
                residual_bits: 1e-9f64.to_bits(),
                norm2_bits: 42.0f64.to_bits(),
            }]),
        ];
        for (i, digest) in digests.iter().enumerate() {
            let name = format!("job{i}");
            write_done(&dir, &name, digest).unwrap();
            let back = read_done(&JobPaths::done(&dir, &name)).unwrap();
            assert_eq!(&back, digest);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_job_names_are_rejected() {
        for name in ["", "a/b", "a.b", "x y", "../up"] {
            let JobSpec::Hmc(mut s) = hmc_spec() else {
                unreachable!()
            };
            s.name = name.into();
            assert!(
                JobSpec::Hmc(s).validate_name().is_err(),
                "name `{name}` must be rejected"
            );
        }
    }

    #[test]
    fn truncated_spec_payloads_are_typed_errors() {
        let rec = job_record(&hmc_spec());
        for cut in [0, 1, 9, rec.payload.len() - 1] {
            let torn = Record::new(JOB_RECORD, rec.payload[..cut].to_vec());
            assert!(job_from_record(&torn).is_err(), "cut at {cut} must fail");
        }
    }
}
