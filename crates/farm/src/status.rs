//! The status surface: a validated `qcd-farm/v1` JSON document.
//!
//! One document answers "what is the farm doing": per-job state and
//! progress, queue depths by priority, worker utilization, and the
//! batch-fill histogram (from the `farm.batch.fill` metric) that shows
//! whether coalescing is actually happening. The same renderer backs the
//! `--status-json` dump and the `/status` HTTP endpoint, and every
//! document is parse-back validated before it leaves the process — CI
//! greps this schema tag from the artifact.

use crate::scheduler::Farm;
use qcd_trace::Json;

/// Schema identifier of the status document.
pub const STATUS_SCHEMA: &str = "qcd-farm/v1";

/// Render the farm's current state as a `qcd-farm/v1` document.
pub fn status_json(farm: &Farm) -> Json {
    let (workers, busy_ns, wall_ns, units, preemptions) = farm.worker_stats();
    let utilization = if workers > 0 && wall_ns > 0 {
        (busy_ns as f64 / (workers as f64 * wall_ns as f64)).min(1.0)
    } else {
        0.0
    };
    let depths = farm.queue_depths();
    let jobs = farm
        .job_views()
        .into_iter()
        .map(|j| {
            Json::Obj(vec![
                ("id".into(), Json::Str(j.name)),
                ("kind".into(), Json::Str(j.kind.into())),
                ("state".into(), Json::Str(j.state.name().into())),
                ("priority".into(), Json::Str(j.priority.name().into())),
                ("progress".into(), Json::Num(j.progress as f64)),
                ("target".into(), Json::Num(j.target as f64)),
            ])
        })
        .collect();
    let fill = qcd_metrics::metrics_snapshot()
        .histograms
        .get("farm.batch.fill")
        .map(|h| {
            Json::Obj(vec![
                ("count".into(), Json::Num(h.count as f64)),
                ("min".into(), Json::Num(h.min as f64)),
                ("max".into(), Json::Num(h.max as f64)),
                (
                    "p50".into(),
                    Json::Num(h.percentile(0.5).unwrap_or(0) as f64),
                ),
            ])
        })
        .unwrap_or(Json::Null);
    Json::Obj(vec![
        ("schema".into(), Json::Str(STATUS_SCHEMA.into())),
        ("jobs".into(), Json::Arr(jobs)),
        (
            "queue_depth".into(),
            Json::Obj(vec![
                ("low".into(), Json::Num(depths[0] as f64)),
                ("normal".into(), Json::Num(depths[1] as f64)),
                ("high".into(), Json::Num(depths[2] as f64)),
            ]),
        ),
        (
            "workers".into(),
            Json::Obj(vec![
                ("count".into(), Json::Num(workers as f64)),
                ("busy_ns".into(), Json::Num(busy_ns as f64)),
                ("wall_ns".into(), Json::Num(wall_ns as f64)),
                ("utilization".into(), Json::Num(utilization)),
            ]),
        ),
        ("units_done".into(), Json::Num(units as f64)),
        ("preemptions".into(), Json::Num(preemptions as f64)),
        ("batch_fill".into(), fill),
    ])
}

/// Validate a parsed document against the `qcd-farm/v1` schema.
pub fn validate_status_json(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(STATUS_SCHEMA) => {}
        Some(other) => return Err(format!("schema `{other}` != `{STATUS_SCHEMA}`")),
        None => return Err("missing `schema`".into()),
    }
    let jobs = doc
        .get("jobs")
        .and_then(Json::as_arr)
        .ok_or("missing array `jobs`")?;
    for (i, job) in jobs.iter().enumerate() {
        for key in ["id", "kind", "state", "priority"] {
            if job.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("`jobs[{i}].{key}` missing or not a string"));
            }
        }
        let (progress, target) = (
            job.get("progress").and_then(Json::as_u64),
            job.get("target").and_then(Json::as_u64),
        );
        match (progress, target) {
            (Some(p), Some(t)) if p <= t => {}
            (Some(p), Some(t)) => {
                return Err(format!("`jobs[{i}]` progress {p} exceeds target {t}"))
            }
            _ => return Err(format!("`jobs[{i}]` progress/target missing or negative")),
        }
        if job.get("state").and_then(Json::as_str) == Some("done") && progress != target {
            return Err(format!("`jobs[{i}]` is done but progress != target"));
        }
    }
    let depth = doc.get("queue_depth").ok_or("missing `queue_depth`")?;
    for key in ["low", "normal", "high"] {
        if depth.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("`queue_depth.{key}` missing or negative"));
        }
    }
    let workers = doc.get("workers").ok_or("missing `workers`")?;
    for key in ["count", "busy_ns", "wall_ns"] {
        if workers.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("`workers.{key}` missing or negative"));
        }
    }
    let util = workers
        .get("utilization")
        .and_then(Json::as_f64)
        .ok_or("missing `workers.utilization`")?;
    if !(0.0..=1.0).contains(&util) {
        return Err(format!("`workers.utilization` {util} outside [0, 1]"));
    }
    for key in ["units_done", "preemptions"] {
        if doc.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("`{key}` missing or negative"));
        }
    }
    match doc.get("batch_fill") {
        None => return Err("missing `batch_fill`".into()),
        Some(Json::Null) => {} // no solve batch has run yet
        Some(fill) => {
            for key in ["count", "min", "max", "p50"] {
                if fill.get(key).and_then(Json::as_u64).is_none() {
                    return Err(format!("`batch_fill.{key}` missing or negative"));
                }
            }
        }
    }
    Ok(())
}

/// Render, parse back, validate, and return the document text — the only
/// path status output takes to disk or the HTTP endpoint.
pub fn render_validated_status(farm: &Farm) -> Result<String, String> {
    let json = status_json(farm);
    let text = json.render();
    let parsed = Json::parse(&text)
        .map_err(|e| format!("emitted status does not parse: {} at byte {}", e.msg, e.at))?;
    validate_status_json(&parsed)?;
    if parsed != json {
        return Err("status JSON round-trip did not reproduce the document".into());
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(extra: &str) -> String {
        format!(
            r#"{{"schema":"qcd-farm/v1",
                "jobs":[{{"id":"s0","kind":"hmc-stream","state":"done",
                          "priority":"low","progress":4,"target":4}}],
                "queue_depth":{{"low":0,"normal":1,"high":0}},
                "workers":{{"count":2,"busy_ns":100,"wall_ns":100,"utilization":0.5}},
                "units_done":3,"preemptions":1{extra}}}"#
        )
    }

    #[test]
    fn a_wellformed_document_validates() {
        let parsed = Json::parse(&doc(r#","batch_fill":null"#)).unwrap();
        validate_status_json(&parsed).unwrap();
        let with_fill =
            Json::parse(&doc(r#","batch_fill":{"count":2,"min":4,"max":8,"p50":8}"#)).unwrap();
        validate_status_json(&with_fill).unwrap();
    }

    #[test]
    fn malformed_documents_are_rejected_with_the_offending_path() {
        let cases = [
            (
                doc(r#","batch_fill":null"#).replace("qcd-farm/v1", "qcd-farm/v2"),
                "schema",
            ),
            (
                doc(r#","batch_fill":null"#).replace(r#""progress":4"#, r#""progress":9"#),
                "exceeds target",
            ),
            (
                doc(r#","batch_fill":null"#)
                    .replace(r#""utilization":0.5"#, r#""utilization":1.7"#),
                "utilization",
            ),
            (
                doc(r#","batch_fill":null"#).replace(r#""normal":1"#, r#""normal":-1"#),
                "queue_depth.normal",
            ),
            (doc(""), "batch_fill"),
        ];
        for (text, needle) in cases {
            let err = validate_status_json(&Json::parse(&text).unwrap()).unwrap_err();
            assert!(err.contains(needle), "expected `{needle}` in `{err}`");
        }
    }
}
