//! The work queue: priority-ordered, FIFO within a level, condvar-blocking.
//!
//! Scheduling is deterministic: units drain strictly by `(priority desc,
//! sequence asc)`, where the sequence number is assigned at push time. With
//! one worker the execution order is therefore a pure function of the
//! submission order, which the recovery tests rely on.

use crate::job::Priority;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// What one dequeued unit of work is.
#[derive(Clone, Debug, PartialEq)]
pub enum UnitPayload {
    /// Advance an HMC stream by up to `count` trajectories from its
    /// current checkpoint.
    HmcChunk {
        /// Trajectories to run in this unit.
        count: u64,
    },
    /// Solve a coalesced batch of requests from one solve job.
    SolveBatch {
        /// Request indices (into the job's `rhs_seeds`) in this batch.
        indices: Vec<usize>,
    },
}

/// One schedulable unit.
#[derive(Clone, Debug)]
pub struct WorkUnit {
    /// Name of the job this unit belongs to.
    pub job: String,
    /// Scheduling priority (inherited from the job).
    pub priority: Priority,
    /// FIFO sequence, assigned by the queue at push time.
    pub seq: u64,
    /// What to do.
    pub payload: UnitPayload,
}

#[derive(Default)]
struct Inner {
    units: VecDeque<WorkUnit>,
    next_seq: u64,
    closed: bool,
}

/// A blocking multi-producer multi-consumer priority queue.
#[derive(Default)]
pub struct WorkQueue {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl WorkQueue {
    /// An empty open queue.
    pub fn new() -> Self {
        WorkQueue::default()
    }

    /// Enqueue a unit; returns its assigned sequence number.
    pub fn push(&self, job: String, priority: Priority, payload: UnitPayload) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = inner.next_seq;
        inner.next_seq += 1;
        // Insert keeping (priority desc, seq asc) order: after every unit
        // with priority >= this one.
        let at = inner
            .units
            .iter()
            .position(|u| u.priority < priority)
            .unwrap_or(inner.units.len());
        inner.units.insert(
            at,
            WorkUnit {
                job,
                priority,
                seq,
                payload,
            },
        );
        drop(inner);
        self.cv.notify_one();
        seq
    }

    /// Dequeue the highest-priority unit, blocking until one is available,
    /// the queue is closed, or `stop` is raised. `None` means "shut down".
    pub fn pop(&self, stop: &AtomicBool) -> Option<WorkUnit> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if stop.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(unit) = inner.units.pop_front() {
                return Some(unit);
            }
            if inner.closed {
                return None;
            }
            // Bounded wait so a stop flag raised without a matching notify
            // (e.g. from a signal-file poller) is still observed promptly.
            let (guard, _) = self
                .cv
                .wait_timeout(inner, Duration::from_millis(20))
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Highest priority currently waiting, if any.
    pub fn top_priority(&self) -> Option<Priority> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.units.front().map(|u| u.priority)
    }

    /// Units waiting at each priority level, `[low, normal, high]`.
    pub fn depths(&self) -> [usize; 3] {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut d = [0; 3];
        for u in &inner.units {
            d[u.priority as usize] += 1;
        }
        d
    }

    /// Close the queue: blocked and future `pop`s return `None` once the
    /// backlog drains. Push after close is ignored.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        drop(inner);
        self.cv.notify_all();
    }

    /// Whether any units are waiting.
    pub fn is_empty(&self) -> bool {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.units.is_empty()
    }

    /// Wake all blocked consumers (used when raising a stop flag).
    pub fn kick(&self) {
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(n: u64) -> UnitPayload {
        UnitPayload::HmcChunk { count: n }
    }

    #[test]
    fn drains_by_priority_then_fifo() {
        let q = WorkQueue::new();
        q.push("a".into(), Priority::Low, unit(1));
        q.push("b".into(), Priority::High, unit(2));
        q.push("c".into(), Priority::Normal, unit(3));
        q.push("d".into(), Priority::High, unit(4));
        q.push("e".into(), Priority::Normal, unit(5));
        q.close();
        let stop = AtomicBool::new(false);
        let order: Vec<String> = std::iter::from_fn(|| q.pop(&stop).map(|u| u.job)).collect();
        assert_eq!(order, ["b", "d", "c", "e", "a"]);
    }

    #[test]
    fn sequence_numbers_are_monotone_and_depths_counted() {
        let q = WorkQueue::new();
        let s1 = q.push("a".into(), Priority::Low, unit(1));
        let s2 = q.push("b".into(), Priority::High, unit(2));
        assert!(s2 > s1);
        assert_eq!(q.depths(), [1, 0, 1]);
        assert_eq!(q.top_priority(), Some(Priority::High));
    }

    #[test]
    fn stop_flag_unblocks_a_waiting_pop() {
        let q = WorkQueue::new();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| q.pop(&stop));
            std::thread::sleep(Duration::from_millis(30));
            stop.store(true, Ordering::SeqCst);
            q.kick();
            assert!(handle.join().unwrap().is_none());
        });
    }

    #[test]
    fn close_drains_the_backlog_first() {
        let q = WorkQueue::new();
        q.push("a".into(), Priority::Normal, unit(1));
        q.close();
        let stop = AtomicBool::new(false);
        assert_eq!(q.pop(&stop).unwrap().job, "a");
        assert!(q.pop(&stop).is_none());
    }
}
