//! The farm benchmark: what does request coalescing buy, and what does the
//! worker pool scale like — exported as a `qcd-bench-farm/v1` document and
//! gated like `bench_diff`.
//!
//! The headline number is **model-derived**, not wall-clock: trace-span
//! byte accounting of one batched `block_cg` dispatch vs sixteen
//! one-at-a-time dispatches of the same requests. Gauge links are loaded
//! once per site regardless of batch width, so bytes-per-RHS falls as the
//! batch fills; on the bandwidth-bound hardware the paper targets,
//! RHS-throughput scales as its inverse. The gate
//! ([`check_coalescing`]) requires at least [`COALESCE_TARGET`]× at a
//! 16-request batch — the farm's whole reason to coalesce. Wall-clock
//! figures (dispatch times, jobs/s per worker count) ride along for
//! context and only ever warn in the diff gate.

use crate::batch::plan_batches;
use crate::job::{FarmConfig, HmcStreamSpec, JobSpec, Priority, SolveSpec};
use crate::scheduler::Farm;
use grid::prelude::*;
use qcd_hmc::HmcParams;
use qcd_trace::Json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Schema identifier of the exported benchmark document.
pub const FARM_BENCH_SCHEMA: &str = "qcd-bench-farm/v1";

/// Required RHS-throughput gain (bytes-per-RHS model) of a 16-wide batch
/// over one-at-a-time dispatch.
pub const COALESCE_TARGET: f64 = 1.3;

/// One coalescing leg: the same 16 requests dispatched in batches of
/// `nrhs`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoalesceLeg {
    /// Batch width of this leg.
    pub nrhs: usize,
    /// Trace-span bytes moved per RHS per dispatch (model metric).
    pub bytes_per_rhs: f64,
    /// Wall time to serve all requests at this width.
    pub wall_ns: u64,
    /// RHS-iterations retired per second (wall metric).
    pub rhs_per_sec: f64,
    /// `bytes_per_rhs(N=1) / bytes_per_rhs` — the bandwidth-bound
    /// RHS-throughput model (model metric).
    pub model_speedup: f64,
}

/// One worker-pool leg: the same job mix drained by `workers` threads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkerLeg {
    /// Pool size.
    pub workers: usize,
    /// Wall time to drain the mix.
    pub wall_ns: u64,
    /// Work units executed.
    pub units: u64,
    /// Units per second (wall metric).
    pub units_per_sec: f64,
}

/// A complete farm benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct FarmBench {
    /// Lattice extents.
    pub dims: [usize; 4],
    /// SVE vector length in bits.
    pub vl_bits: u64,
    /// Complex-arithmetic backend name.
    pub backend: String,
    /// CG iterations each probe dispatch runs (fixed, so legs compare
    /// equal work).
    pub probe_iters: usize,
    /// Concurrent solve requests the coalescing legs serve.
    pub requests: usize,
    /// Coalescing legs, batch width ascending (N=1 first).
    pub coalesce: Vec<CoalesceLeg>,
    /// `model_speedup` of the widest leg — the gated headline.
    pub coalesce_gain: f64,
    /// Mean planned batch width for `requests` pending solves (a pure
    /// function of the batching policy — model metric).
    pub mean_planned_fill: f64,
    /// Worker-pool legs (wall metrics only).
    pub workers: Vec<WorkerLeg>,
}

/// Trace-span bytes of one `block_cg` dispatch at fixed iteration count.
/// The spans land under a uniquely named parent so the subtree sum is
/// race-free against concurrent telemetry.
fn probe_dispatch_bytes(
    op: &WilsonDirac,
    block: &FermionBlock,
    iters: usize,
) -> Result<u64, String> {
    static SPAN_ID: AtomicU64 = AtomicU64::new(0);
    let probe = format!("farm.bench.{}", SPAN_ID.fetch_add(1, Ordering::Relaxed));
    let span = qcd_trace::SpanGuard::enter(&probe, None);
    let _ = block_cg(op, block, 0.0, iters); // tol 0: exactly `iters` sweeps
    let _ = span.finish();
    let prefix = format!("{probe}/");
    let bytes = qcd_trace::snapshot()
        .regions
        .iter()
        .filter(|(path, _)| path.starts_with(&prefix))
        .map(|(_, stat)| stat.bytes_read + stat.bytes_written)
        .sum();
    if bytes == 0 {
        return Err(format!(
            "dispatch probe recorded no telemetry for N={}",
            block.nrhs()
        ));
    }
    Ok(bytes)
}

fn run_coalesce_legs(
    cfg: &FarmConfig,
    requests: usize,
    probe_iters: usize,
    widths: &[usize],
) -> Result<Vec<CoalesceLeg>, String> {
    let g = cfg.grid();
    let op = WilsonDirac::new(random_gauge(g.clone(), 181), 0.2);
    let fields: Vec<FermionField> = (0..requests)
        .map(|j| FermionField::random(g.clone(), 200 + j as u64))
        .collect();
    let volume = g.fdims().iter().product::<usize>() as f64;

    let mut legs = Vec::with_capacity(widths.len());
    for &n in widths {
        if !requests.is_multiple_of(n) {
            return Err(format!(
                "batch width {n} does not divide {requests} requests"
            ));
        }
        let blocks: Vec<FermionBlock> = fields.chunks(n).map(FermionBlock::from_fields).collect();
        let bytes = probe_dispatch_bytes(&op, &blocks[0], probe_iters)?;
        let bytes_per_rhs = bytes as f64 / n as f64;
        let _ = block_cg(&op, &blocks[0], 0.0, probe_iters); // warm-up
        let t0 = Instant::now();
        for block in &blocks {
            let _ = block_cg(&op, block, 0.0, probe_iters);
        }
        let wall_ns = (t0.elapsed().as_nanos() as u64).max(1);
        legs.push(CoalesceLeg {
            nrhs: n,
            bytes_per_rhs,
            wall_ns,
            rhs_per_sec: volume * requests as f64 * probe_iters as f64 / (wall_ns as f64 / 1e9),
            model_speedup: 1.0,
        });
    }
    let base = legs[0].bytes_per_rhs;
    for leg in &mut legs {
        leg.model_speedup = base / leg.bytes_per_rhs;
    }
    Ok(legs)
}

fn run_worker_legs(
    cfg: &FarmConfig,
    worker_counts: &[usize],
    scratch: &std::path::Path,
) -> Result<Vec<WorkerLeg>, String> {
    let mut legs = Vec::with_capacity(worker_counts.len());
    for &workers in worker_counts {
        let dir = scratch.join(format!("w{workers}"));
        let farm = Farm::open(&dir, *cfg).map_err(|e| format!("open bench farm: {e}"))?;
        for s in 0..2u64 {
            farm.submit(JobSpec::Hmc(HmcStreamSpec {
                name: format!("bench-stream-{s}"),
                priority: Priority::Low,
                seed: 300 + s,
                params: HmcParams {
                    beta: 5.6,
                    n_steps: 4,
                    step_size: 0.125,
                    integrator: qcd_hmc::IntegratorKind::Omelyan,
                },
                trajectories: 2,
                chunk: 1,
            }))
            .map_err(|e| format!("submit bench stream: {e}"))?;
        }
        farm.submit(JobSpec::Solve(SolveSpec {
            name: "bench-burst".into(),
            priority: Priority::Normal,
            gauge_seed: 181,
            mass: 0.2,
            rhs_seeds: (400..408).collect(),
            tol: 1e-6,
            max_iter: 400,
            subspace: None,
        }))
        .map_err(|e| format!("submit bench burst: {e}"))?;
        let stop = AtomicBool::new(false);
        let t0 = Instant::now();
        let report = farm
            .run(workers, &stop, None)
            .map_err(|e| format!("bench farm run: {e}"))?;
        let wall_ns = (t0.elapsed().as_nanos() as u64).max(1);
        if !farm.all_done() {
            return Err(format!("bench farm with {workers} workers did not drain"));
        }
        legs.push(WorkerLeg {
            workers,
            wall_ns,
            units: report.units,
            units_per_sec: report.units as f64 / (wall_ns as f64 / 1e9),
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    Ok(legs)
}

/// Run the full farm benchmark: coalescing legs at widths 1/4/8/16 over
/// `requests` concurrent solve requests, plus a worker-pool sweep.
/// `scratch` is a directory for the throwaway farm state.
pub fn run_farm_bench(
    cfg: &FarmConfig,
    requests: usize,
    probe_iters: usize,
    worker_counts: &[usize],
    scratch: &std::path::Path,
) -> Result<FarmBench, String> {
    if probe_iters == 0 {
        return Err("probe_iters must be positive".into());
    }
    let widths: Vec<usize> = [1usize, 4, 8, 16]
        .into_iter()
        .filter(|&w| w <= requests && requests.is_multiple_of(w))
        .collect();
    let coalesce = run_coalesce_legs(cfg, requests, probe_iters, &widths)?;
    let coalesce_gain = coalesce.last().map(|l| l.model_speedup).unwrap_or(1.0);
    let plan = plan_batches(requests);
    let mean_planned_fill = if plan.is_empty() {
        0.0
    } else {
        requests as f64 / plan.len() as f64
    };
    let workers = run_worker_legs(cfg, worker_counts, scratch)?;
    Ok(FarmBench {
        dims: cfg.dims,
        vl_bits: cfg.vl_bits as u64,
        backend: cfg.backend.name().to_string(),
        probe_iters,
        requests,
        coalesce,
        coalesce_gain,
        mean_planned_fill,
        workers,
    })
}

/// The CI gate: coalescing 16 concurrent requests must model at least
/// [`COALESCE_TARGET`]× the RHS-throughput of one-at-a-time dispatch.
pub fn check_coalescing(b: &FarmBench) -> Result<(), String> {
    let widest = b
        .coalesce
        .iter()
        .max_by_key(|l| l.nrhs)
        .ok_or("no coalescing legs")?;
    if widest.nrhs >= 16 && widest.model_speedup < COALESCE_TARGET {
        return Err(format!(
            "coalescing model regressed: N={} gives {:.3}x < {COALESCE_TARGET}x target",
            widest.nrhs, widest.model_speedup
        ));
    }
    Ok(())
}

fn coalesce_leg_json(leg: &CoalesceLeg) -> Json {
    Json::Obj(vec![
        ("nrhs".into(), Json::Num(leg.nrhs as f64)),
        ("bytes_per_rhs".into(), Json::Num(leg.bytes_per_rhs)),
        ("wall_ns".into(), Json::Num(leg.wall_ns as f64)),
        ("rhs_per_sec".into(), Json::Num(leg.rhs_per_sec)),
        ("model_speedup".into(), Json::Num(leg.model_speedup)),
    ])
}

fn worker_leg_json(leg: &WorkerLeg) -> Json {
    Json::Obj(vec![
        ("workers".into(), Json::Num(leg.workers as f64)),
        ("wall_ns".into(), Json::Num(leg.wall_ns as f64)),
        ("units".into(), Json::Num(leg.units as f64)),
        ("units_per_sec".into(), Json::Num(leg.units_per_sec)),
    ])
}

/// Render a benchmark as a `qcd-bench-farm/v1` document.
pub fn bench_to_json(b: &FarmBench) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(FARM_BENCH_SCHEMA.into())),
        (
            "lattice".into(),
            Json::Arr(b.dims.iter().map(|&d| Json::Num(d as f64)).collect()),
        ),
        ("vl_bits".into(), Json::Num(b.vl_bits as f64)),
        ("backend".into(), Json::Str(b.backend.clone())),
        ("probe_iters".into(), Json::Num(b.probe_iters as f64)),
        ("requests".into(), Json::Num(b.requests as f64)),
        (
            "coalesce".into(),
            Json::Arr(b.coalesce.iter().map(coalesce_leg_json).collect()),
        ),
        ("coalesce_gain".into(), Json::Num(b.coalesce_gain)),
        ("mean_planned_fill".into(), Json::Num(b.mean_planned_fill)),
        (
            "workers".into(),
            Json::Arr(b.workers.iter().map(worker_leg_json).collect()),
        ),
    ])
}

/// Validate a parsed document against the `qcd-bench-farm/v1` schema.
pub fn validate_farm_bench_json(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(FARM_BENCH_SCHEMA) => {}
        Some(other) => return Err(format!("schema `{other}` != `{FARM_BENCH_SCHEMA}`")),
        None => return Err("missing `schema`".into()),
    }
    let lat = doc
        .get("lattice")
        .and_then(Json::as_arr)
        .ok_or("missing array `lattice`")?;
    if lat.len() != 4 || lat.iter().any(|d| d.as_u64().is_none_or(|v| v == 0)) {
        return Err("`lattice` must be four positive extents".into());
    }
    for field in ["vl_bits", "probe_iters", "requests"] {
        if doc.get(field).and_then(Json::as_u64).is_none_or(|v| v == 0) {
            return Err(format!("`{field}` missing or not a positive integer"));
        }
    }
    if doc.get("backend").and_then(Json::as_str).is_none() {
        return Err("missing string `backend`".into());
    }
    let coalesce = doc
        .get("coalesce")
        .and_then(Json::as_arr)
        .ok_or("missing array `coalesce`")?;
    if coalesce.is_empty() {
        return Err("`coalesce` must hold at least the N=1 leg".into());
    }
    for (i, row) in coalesce.iter().enumerate() {
        if row
            .get("nrhs")
            .and_then(Json::as_u64)
            .is_none_or(|v| v == 0)
        {
            return Err(format!("`coalesce[{i}].nrhs` missing or not positive"));
        }
        for field in ["bytes_per_rhs", "wall_ns", "rhs_per_sec", "model_speedup"] {
            let v = row
                .get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("`coalesce[{i}].{field}` missing or not a number"))?;
            if v <= 0.0 || !v.is_finite() {
                return Err(format!("`coalesce[{i}].{field}` must be positive, got {v}"));
            }
        }
    }
    for field in ["coalesce_gain", "mean_planned_fill"] {
        if !doc
            .get(field)
            .and_then(Json::as_f64)
            .is_some_and(|v| v > 0.0 && v.is_finite())
        {
            return Err(format!("`{field}` missing or not positive"));
        }
    }
    let workers = doc
        .get("workers")
        .and_then(Json::as_arr)
        .ok_or("missing array `workers`")?;
    for (i, row) in workers.iter().enumerate() {
        for field in ["workers", "wall_ns", "units"] {
            if row.get(field).and_then(Json::as_u64).is_none_or(|v| v == 0) {
                return Err(format!("`workers[{i}].{field}` missing or not positive"));
            }
        }
        if !row
            .get("units_per_sec")
            .and_then(Json::as_f64)
            .is_some_and(|v| v > 0.0 && v.is_finite())
        {
            return Err(format!(
                "`workers[{i}].units_per_sec` missing or not positive"
            ));
        }
    }
    Ok(())
}

/// Render, validate by parse-back, and write `BENCH_farm.json`. An invalid
/// document is an error, not an artifact.
pub fn write_validated_bench_json(b: &FarmBench, path: &str) -> Result<(), String> {
    let json = bench_to_json(b);
    let doc = json.render();
    let parsed = Json::parse(&doc)
        .map_err(|e| format!("emitted JSON does not parse: {} at byte {}", e.msg, e.at))?;
    validate_farm_bench_json(&parsed)?;
    if parsed != json {
        return Err("JSON round-trip did not reproduce the benchmark document".into());
    }
    std::fs::write(path, doc).map_err(|e| format!("write {path}: {e}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FarmConfig {
        FarmConfig {
            dims: [4, 4, 4, 4],
            vl_bits: 256,
            backend: SimdBackend::Fcmla,
        }
    }

    #[test]
    fn coalescing_model_shows_gain_and_the_document_validates() {
        let g = cfg();
        let legs = run_coalesce_legs(&g, 16, 2, &[1, 4, 8, 16]).unwrap();
        assert_eq!(legs[0].nrhs, 1);
        assert_eq!(legs[0].model_speedup, 1.0);
        // Link loads amortise over the batch: bytes per RHS must strictly
        // fall, so the model speedup strictly grows.
        for pair in legs.windows(2) {
            assert!(
                pair[1].bytes_per_rhs < pair[0].bytes_per_rhs,
                "bytes/RHS must fall with batch width: {pair:?}"
            );
        }
        let gain = legs.last().unwrap().model_speedup;
        assert!(
            gain >= COALESCE_TARGET,
            "16-wide coalescing model {gain:.3}x below the {COALESCE_TARGET}x target"
        );
    }

    #[test]
    fn the_gate_flags_a_forged_regression() {
        let leg = |nrhs, speedup| CoalesceLeg {
            nrhs,
            bytes_per_rhs: 100.0,
            wall_ns: 1,
            rhs_per_sec: 1.0,
            model_speedup: speedup,
        };
        let mut bench = FarmBench {
            dims: [4, 4, 4, 4],
            vl_bits: 256,
            backend: "sve-fcmla".into(),
            probe_iters: 2,
            requests: 16,
            coalesce: vec![leg(1, 1.0), leg(16, 1.5)],
            coalesce_gain: 1.5,
            mean_planned_fill: 16.0,
            workers: vec![],
        };
        check_coalescing(&bench).unwrap();
        bench.coalesce[1].model_speedup = 1.1;
        assert!(check_coalescing(&bench).unwrap_err().contains("regressed"));
    }

    #[test]
    fn schema_validation_rejects_malformed_documents() {
        let bad = Json::parse(r#"{"schema":"qcd-bench-farm/v2"}"#).unwrap();
        assert!(validate_farm_bench_json(&bad)
            .unwrap_err()
            .contains("schema"));
        let minimal = Json::parse(
            r#"{"schema":"qcd-bench-farm/v1","lattice":[4,4,4,4],"vl_bits":256,
                "backend":"sve-fcmla","probe_iters":2,"requests":16,
                "coalesce":[{"nrhs":1,"bytes_per_rhs":10.0,"wall_ns":5,
                             "rhs_per_sec":1.0,"model_speedup":1.0}],
                "coalesce_gain":1.5,"mean_planned_fill":16.0,
                "workers":[{"workers":1,"wall_ns":5,"units":3,"units_per_sec":1.0}]}"#,
        )
        .unwrap();
        validate_farm_bench_json(&minimal).unwrap();
        let Json::Obj(mut members) = minimal.clone() else {
            panic!("document must be an object")
        };
        members.retain(|(k, _)| k != "coalesce_gain");
        assert!(validate_farm_bench_json(&Json::Obj(members))
            .unwrap_err()
            .contains("coalesce_gain"));
    }
}
