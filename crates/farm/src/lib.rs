//! `qcd-farm` — an async ensemble/solve job service over checkpointable
//! work units.
//!
//! A lattice campaign is a mix of long-running Markov-chain streams and
//! bursty inversion requests competing for the same node. This crate turns
//! that mix into a *job farm*: a worker pool drains a priority queue of
//! **checkpointable work units**, where
//!
//! * an HMC stream ([`HmcStreamSpec`]) is executed as a chain of
//!   `chunk`-trajectory units, each snapshotting through `qcd-io` at its
//!   boundary, and
//! * a solve burst ([`SolveSpec`]) is coalesced by [`plan_batches`] into
//!   multi-RHS `block_cg` dispatches (preferring widths 16/8/4) whose
//!   per-request results are bit-identical to solo solves, so batching is
//!   purely a throughput decision.
//!
//! Three properties fall out of the determinism stack underneath:
//!
//! 1. **Preemption is free of rework** — a high-priority submission raises
//!    a running low-priority worker's yield flag; the chunk checkpoints at
//!    the next trajectory boundary and its remainder is re-enqueued, with
//!    no change to any chain result.
//! 2. **`kill -9` recovery is byte-exact** — [`Farm::open`] rescans the
//!    farm directory, clears torn temp files, and re-enqueues every spec
//!    without a result digest; the recovered run's chain checkpoints and
//!    digests are byte-identical to an uninterrupted run's
//!    ([`verify_dirs`] is the acceptance check).
//! 3. **The status surface is validated** — [`status_json`] renders a
//!    `qcd-farm/v1` document (job states, queue depths, worker
//!    utilization, batch-fill histogram) that is parse-back validated
//!    before it leaves the process.
//!
//! The `qcd_farm` binary wraps all of this behind flags; the
//! [`bench`] module exports the `qcd-bench-farm/v1` coalescing benchmark
//! that CI gates at [`bench::COALESCE_TARGET`]× RHS-throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bench;
pub mod job;
pub mod queue;
pub mod scheduler;
pub mod status;

pub use batch::{plan_batches, PREFERRED_WIDTHS};
pub use job::{
    read_done, read_spec, write_done, write_spec, DoneDigest, FarmConfig, HmcStreamSpec, JobPaths,
    JobSpec, Priority, RequestDigest, SolveSpec,
};
pub use queue::{UnitPayload, WorkQueue, WorkUnit};
pub use scheduler::{verify_dirs, Farm, JobState, JobView, RunReport};
pub use status::{render_validated_status, status_json, validate_status_json, STATUS_SCHEMA};
