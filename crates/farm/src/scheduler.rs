//! The farm scheduler: a worker pool draining the priority queue of
//! checkpointable work units, with cooperative preemption and crash
//! recovery.
//!
//! # State machine
//!
//! Jobs move `Pending → Running → Done`; the unit of scheduling is never a
//! whole job but a *checkpointable chunk* of one:
//!
//! * an **HMC stream** is a sequence of `HmcChunk` units. Exactly one unit
//!   per stream is in flight at a time (two workers must never touch the
//!   same chain); each unit loads the chain from its checkpoint, advances
//!   up to `chunk` trajectories behind the paper-stack determinism
//!   guarantees, snapshots at the boundary, and — if trajectories remain —
//!   enqueues the stream's next unit.
//! * a **solve burst** is split by [`plan_batches`] into independent
//!   `SolveBatch` units that may run concurrently; each coalesces its
//!   requests into one `FermionBlock` dispatch and demultiplexes the
//!   per-request results (bit-identical to solo solves, so the batch shape
//!   is invisible in the answers).
//!
//! # Preemption
//!
//! Every running worker exposes an [`AtomicBool`] yield flag. When a unit
//! is pushed while all workers are busy, the scheduler raises the flag of
//! the lowest-priority running slot strictly below the new unit's
//! priority. An HMC chunk polls the flag at trajectory boundaries (the
//! [`qcd_hmc::MarkovChain::run_trajectories`] contract), checkpoints, and
//! re-enqueues its remainder — so preemption never loses an accepted
//! trajectory and never changes chain results. Solve batches are the
//! preemption granularity for solve jobs (they are short and run to
//! completion).
//!
//! # Crash recovery
//!
//! The farm directory is the only durable state: spec files
//! (`<name>.job.qio`), chain checkpoints (`<name>.chain.qio`), and result
//! digests (`<name>.done.qio`). [`Farm::open`] rescans it with
//! [`qcd_io::scan_checkpoints`], deletes torn `*.tmp` debris, and
//! re-enqueues every spec without a digest — streams resume from their
//! last checkpoint, solve bursts re-run from spec (deterministic, so the
//! re-run reproduces the lost results exactly). A `kill -9` therefore
//! costs at most the trajectories since the last chunk boundary, and the
//! recovered run's chain and digest files are byte-identical to an
//! uninterrupted run's.

use crate::batch::plan_batches;
use crate::job::{
    read_done, read_spec, write_done, write_spec, DoneDigest, FarmConfig, JobPaths, JobSpec,
    Priority, RequestDigest,
};
use crate::queue::{UnitPayload, WorkQueue, WorkUnit};
use grid::prelude::*;
use grid::requests::{solve_cg_requests, SolveRequest};
use qcd_hmc::{average_plaquette_fast, MarkovChain};
use qcd_io::{scan_checkpoints, CheckpointKind, IoError};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Lifecycle of one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker (or for its next chunk to be picked up).
    Pending,
    /// At least one of its units is executing right now.
    Running,
    /// Digest written; nothing left to do.
    Done,
}

impl JobState {
    /// Stable lowercase name for status output.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }
}

/// Bookkeeping for one job.
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    /// Trajectories done (streams) or requests answered (solves).
    progress: u64,
    /// Per-request digests collected so far (solve jobs only).
    results: Vec<Option<RequestDigest>>,
}

/// A worker slot visible to the preemption logic.
struct Slot {
    priority: Priority,
    yield_flag: Arc<AtomicBool>,
}

/// Point-in-time public view of one job, for the status surface.
#[derive(Clone, Debug)]
pub struct JobView {
    /// Job name.
    pub name: String,
    /// `"hmc-stream"` or `"solve"`.
    pub kind: &'static str,
    /// Lifecycle state.
    pub state: JobState,
    /// Scheduling priority.
    pub priority: Priority,
    /// Progress units completed.
    pub progress: u64,
    /// Progress units at completion.
    pub target: u64,
}

/// Counters a finished (or stopped) [`Farm::run`] hands back.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunReport {
    /// Work units executed to completion.
    pub units: u64,
    /// Preemptions performed (yield flags honoured by a running chunk).
    pub preemptions: u64,
    /// True when the run ended on the stop flag rather than on drain.
    pub stopped: bool,
}

/// The job service: queue, worker coordination, and durable state rooted
/// in one directory.
pub struct Farm {
    cfg: FarmConfig,
    dir: PathBuf,
    queue: WorkQueue,
    jobs: Mutex<BTreeMap<String, JobEntry>>,
    slots: Mutex<Vec<Option<Slot>>>,
    /// Units queued or executing; at zero the queue closes and `run`
    /// drains out.
    outstanding: AtomicU64,
    busy_ns: AtomicU64,
    units_done: AtomicU64,
    preemptions: AtomicU64,
    workers: AtomicU64,
    run_started: Mutex<Option<Instant>>,
}

impl Farm {
    /// Open (or create) a farm rooted at `dir`, recovering every job the
    /// directory already holds: specs without a digest are re-enqueued,
    /// streams resume from their chain checkpoints, stale `*.tmp` debris
    /// is deleted. Spec files whose embedded lattice differs from `cfg`
    /// are an error — mixing geometries in one farm is never intended.
    pub fn open(dir: &Path, cfg: FarmConfig) -> Result<Farm, IoError> {
        std::fs::create_dir_all(dir).map_err(IoError::Io)?;
        let farm = Farm {
            cfg,
            dir: dir.to_path_buf(),
            queue: WorkQueue::new(),
            jobs: Mutex::new(BTreeMap::new()),
            slots: Mutex::new(Vec::new()),
            outstanding: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            units_done: AtomicU64::new(0),
            preemptions: AtomicU64::new(0),
            workers: AtomicU64::new(0),
            run_started: Mutex::new(None),
        };
        farm.recover()?;
        Ok(farm)
    }

    /// The lattice configuration every job runs on.
    pub fn config(&self) -> &FarmConfig {
        &self.cfg
    }

    /// The durable-state directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn recover(&self) -> Result<(), IoError> {
        let report = scan_checkpoints(&self.dir)?;
        for tmp in &report.stale_tmp {
            std::fs::remove_file(tmp).ok();
        }
        // Chain progress by job name, from validated chain checkpoints.
        let mut chain_progress: BTreeMap<String, u64> = BTreeMap::new();
        for entry in &report.entries {
            if entry.kind == CheckpointKind::HmcChain && entry.crc_valid {
                if let Some(name) = entry.job_id.strip_suffix(".chain") {
                    chain_progress.insert(name.to_string(), entry.progress);
                }
            }
        }
        for entry in &report.entries {
            if entry.kind != CheckpointKind::Other(crate::job::JOB_RECORD.to_string())
                || !entry.crc_valid
            {
                continue;
            }
            let (spec_cfg, spec) = read_spec(&entry.path)?;
            if spec_cfg != self.cfg {
                return Err(IoError::BadRecord {
                    record: crate::job::JOB_RECORD.to_string(),
                    msg: format!(
                        "spec `{}` was written for a different lattice configuration",
                        spec.name()
                    ),
                });
            }
            let name = spec.name().to_string();
            let done_path = JobPaths::done(&self.dir, &name);
            let done = done_path.exists() && read_done(&done_path).is_ok();
            let progress = if done {
                spec.target()
            } else {
                *chain_progress.get(&name).unwrap_or(&0)
            };
            qcd_metrics::counter("farm.jobs.recovered").inc();
            qcd_metrics::record_event(
                "farm.recover",
                &name,
                &[
                    ("progress", progress as f64),
                    ("done", if done { 1.0 } else { 0.0 }),
                ],
            );
            self.track(
                spec.clone(),
                if done {
                    JobState::Done
                } else {
                    JobState::Pending
                },
                progress,
            );
            if !done {
                self.enqueue_job(&spec);
            }
        }
        Ok(())
    }

    fn track(&self, spec: JobSpec, state: JobState, progress: u64) {
        let results = match &spec {
            JobSpec::Solve(s) => vec![None; s.rhs_seeds.len()],
            JobSpec::Hmc(_) => Vec::new(),
        };
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.insert(
            spec.name().to_string(),
            JobEntry {
                spec,
                state,
                progress,
                results,
            },
        );
    }

    /// Enqueue the schedulable units of a (new or recovered) job.
    fn enqueue_job(&self, spec: &JobSpec) {
        match spec {
            JobSpec::Hmc(s) => {
                self.push_unit(
                    s.name.clone(),
                    s.priority,
                    UnitPayload::HmcChunk { count: s.chunk },
                );
            }
            JobSpec::Solve(s) => {
                let mut next = 0;
                for width in plan_batches(s.rhs_seeds.len()) {
                    self.push_unit(
                        s.name.clone(),
                        s.priority,
                        UnitPayload::SolveBatch {
                            indices: (next..next + width).collect(),
                        },
                    );
                    next += width;
                }
            }
        }
    }

    fn push_unit(&self, job: String, priority: Priority, payload: UnitPayload) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        let seq = self.queue.push(job.clone(), priority, payload);
        qcd_metrics::record_event("farm.schedule", &job, &[("seq", seq as f64)]);
        self.maybe_preempt(priority);
    }

    /// If every worker is busy and one of them runs lower-priority work,
    /// ask the lowest-priority such slot to yield at its next checkpoint
    /// boundary.
    fn maybe_preempt(&self, incoming: Priority) {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if slots.is_empty() || slots.iter().any(|s| s.is_none()) {
            return; // an idle worker will pick the unit up directly
        }
        let victim = slots
            .iter()
            .flatten()
            .filter(|s| s.priority < incoming && !s.yield_flag.load(Ordering::SeqCst))
            .min_by_key(|s| s.priority);
        if let Some(v) = victim {
            let _span = qcd_trace::span!("farm.preempt");
            v.yield_flag.store(true, Ordering::SeqCst);
            qcd_metrics::counter("farm.preempt").inc();
        }
    }

    /// Submit a job: persist its spec, then enqueue its units. Rejects
    /// duplicate names (the name is the durable identity).
    pub fn submit(&self, spec: JobSpec) -> Result<(), IoError> {
        spec.validate_name()?;
        {
            let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
            if jobs.contains_key(spec.name()) {
                return Err(IoError::BadRecord {
                    record: crate::job::JOB_RECORD.to_string(),
                    msg: format!("job `{}` already exists", spec.name()),
                });
            }
        }
        write_spec(&self.dir, &self.cfg, &spec)?;
        qcd_metrics::counter("farm.jobs.submitted").inc();
        self.track(spec.clone(), JobState::Pending, 0);
        self.enqueue_job(&spec);
        Ok(())
    }

    /// Raise the stop flag "properly": mark it, ask every running chunk to
    /// yield at its next trajectory boundary (each will checkpoint), and
    /// wake blocked workers. Never loses an accepted trajectory.
    pub fn request_stop(&self, stop: &AtomicBool) {
        stop.store(true, Ordering::SeqCst);
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        for slot in slots.iter().flatten() {
            slot.yield_flag.store(true, Ordering::SeqCst);
        }
        drop(slots);
        self.queue.kick();
    }

    /// Run `workers` threads until the queue drains, `stop` is raised, or
    /// `max_units` work units have executed (the deterministic
    /// "interrupted service" lever the recovery tests use).
    pub fn run(
        &self,
        workers: usize,
        stop: &AtomicBool,
        max_units: Option<u64>,
    ) -> Result<RunReport, IoError> {
        assert!(workers >= 1, "the farm needs at least one worker");
        self.workers.store(workers as u64, Ordering::SeqCst);
        *self.run_started.lock().unwrap_or_else(|e| e.into_inner()) = Some(Instant::now());
        {
            let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
            slots.clear();
            slots.resize_with(workers, || None);
        }
        if self.outstanding.load(Ordering::SeqCst) == 0 {
            self.queue.close();
        }
        let budget = AtomicU64::new(max_units.unwrap_or(u64::MAX));
        let preempt_base = self.preemptions.load(Ordering::SeqCst);
        let first_error: Mutex<Option<IoError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let budget = &budget;
                let first_error = &first_error;
                scope.spawn(move || {
                    while let Some(unit) = self.next_unit(w, stop, budget) {
                        let t0 = Instant::now();
                        let result = self.execute(w, &unit, stop);
                        self.busy_ns
                            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::SeqCst);
                        self.clear_slot(w);
                        if let Err(e) = result {
                            eprintln!("farm: unit for job `{}` failed: {e}", unit.job);
                            qcd_metrics::counter("farm.unit.errors").inc();
                            let mut slot = first_error.lock().unwrap_or_else(|e| e.into_inner());
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            self.request_stop(stop);
                        }
                        self.units_done.fetch_add(1, Ordering::SeqCst);
                        if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
                            self.queue.close();
                        }
                    }
                });
            }
        });
        if let Some(e) = first_error.lock().unwrap_or_else(|e| e.into_inner()).take() {
            return Err(e);
        }
        Ok(RunReport {
            units: self.units_done.load(Ordering::SeqCst),
            preemptions: self.preemptions.load(Ordering::SeqCst) - preempt_base,
            stopped: stop.load(Ordering::SeqCst),
        })
    }

    /// Pop the next unit and claim this worker's slot for it.
    fn next_unit(&self, worker: usize, stop: &AtomicBool, budget: &AtomicU64) -> Option<WorkUnit> {
        // A zero budget behaves like SIGTERM: stop the whole pool so the
        // cut is deterministic under a single worker.
        if budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
            .is_err()
        {
            self.request_stop(stop);
            return None;
        }
        let _span = qcd_trace::span!("farm.schedule");
        let unit = self.queue.pop(stop)?;
        let yield_flag = Arc::new(AtomicBool::new(false));
        {
            let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
            slots[worker] = Some(Slot {
                priority: unit.priority,
                yield_flag: yield_flag.clone(),
            });
        }
        self.set_state(&unit.job, JobState::Running);
        Some(unit)
    }

    fn clear_slot(&self, worker: usize) {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots[worker] = None;
    }

    fn set_state(&self, name: &str, state: JobState) {
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = jobs.get_mut(name) {
            if entry.state != JobState::Done {
                entry.state = state;
            }
        }
    }

    fn yield_flag_of(&self, worker: usize) -> Arc<AtomicBool> {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots[worker]
            .as_ref()
            .map(|s| s.yield_flag.clone())
            .expect("executing worker owns a slot")
    }

    fn execute(&self, worker: usize, unit: &WorkUnit, stop: &AtomicBool) -> Result<(), IoError> {
        match &unit.payload {
            UnitPayload::HmcChunk { count } => self.run_hmc_chunk(worker, unit, *count, stop),
            UnitPayload::SolveBatch { indices } => self.run_solve_batch(unit, indices),
        }
    }

    fn run_hmc_chunk(
        &self,
        worker: usize,
        unit: &WorkUnit,
        count: u64,
        stop: &AtomicBool,
    ) -> Result<(), IoError> {
        let spec = {
            let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
            match &jobs.get(&unit.job).expect("queued job is tracked").spec {
                JobSpec::Hmc(s) => s.clone(),
                JobSpec::Solve(_) => unreachable!("HmcChunk queued for a solve job"),
            }
        };
        let grid = self.cfg.grid();
        let chain_path = JobPaths::chain(&self.dir, &spec.name);
        let mut chain = if chain_path.exists() {
            MarkovChain::load(&chain_path, &grid)?.0
        } else {
            MarkovChain::cold_start(grid, spec.params, spec.seed)
        };
        let remaining = spec.trajectories.saturating_sub(chain.trajectory());
        let k = remaining.min(count) as usize;
        let yield_flag = self.yield_flag_of(worker);
        let outcome = chain.run_trajectories(k, &yield_flag, Some(&chain_path))?;
        let trajectory = chain.trajectory();
        {
            let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = jobs.get_mut(&unit.job) {
                entry.progress = trajectory;
            }
        }
        let preempted = outcome.stopped && !stop.load(Ordering::SeqCst);
        if preempted {
            self.preemptions.fetch_add(1, Ordering::SeqCst);
            qcd_metrics::record_event(
                "farm.preempt",
                &unit.job,
                &[("trajectory", trajectory as f64)],
            );
        }
        if trajectory >= spec.trajectories {
            let accepted = chain.accept_history().iter().filter(|&&a| a).count() as u64;
            write_done(
                &self.dir,
                &spec.name,
                &DoneDigest::Hmc {
                    trajectory,
                    plaquette_bits: average_plaquette_fast(chain.links()).to_bits(),
                    accepted,
                },
            )?;
            self.finish(&unit.job);
        } else if !stop.load(Ordering::SeqCst) {
            // Chain the stream's next unit (also covers the preempted
            // remainder). On stop, recovery re-enqueues from the
            // checkpoint instead.
            self.set_state(&unit.job, JobState::Pending);
            self.push_unit(
                unit.job.clone(),
                unit.priority,
                UnitPayload::HmcChunk { count: spec.chunk },
            );
        }
        Ok(())
    }

    fn run_solve_batch(&self, unit: &WorkUnit, indices: &[usize]) -> Result<(), IoError> {
        let spec = {
            let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
            match &jobs.get(&unit.job).expect("queued job is tracked").spec {
                JobSpec::Solve(s) => s.clone(),
                JobSpec::Hmc(_) => unreachable!("SolveBatch queued for an HMC job"),
            }
        };
        let grid = self.cfg.grid();
        let span = qcd_trace::span!("farm.batch", grid.engine().ctx());
        qcd_metrics::histogram("farm.batch.fill").record(indices.len() as u64);
        qcd_metrics::record_event("farm.batch", &unit.job, &[("nrhs", indices.len() as f64)]);
        let op = WilsonDirac::new(random_gauge(grid.clone(), spec.gauge_seed), spec.mass);
        let requests: Vec<SolveRequest> = indices
            .iter()
            .map(|&i| SolveRequest {
                id: i as u64,
                rhs: FermionField::random(grid.clone(), spec.rhs_seeds[i]),
            })
            .collect();
        let outcomes = match &spec.subspace {
            None => solve_cg_requests(&op, &requests, spec.tol, spec.max_iter as usize),
            Some(stem) => {
                // Shared low-mode subspace: load the `defl.*` checkpoint
                // (validated against this job's lattice and mass) and run
                // the deflated batch solver. Each outcome remains
                // bit-identical to a standalone `defl_cg` of its RHS.
                let sub = qcd_deflate::Subspace::load(
                    &JobPaths::subspace(&self.dir, stem),
                    &grid,
                    spec.mass,
                )?;
                qcd_deflate::solve_deflated_requests(
                    &op,
                    &sub,
                    &requests,
                    spec.tol,
                    spec.max_iter as usize,
                )
            }
        };
        drop(span);
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let entry = jobs.get_mut(&unit.job).expect("queued job is tracked");
        for out in outcomes {
            entry.results[out.id as usize] = Some(RequestDigest {
                index: out.id,
                iterations: out.report.iterations as u64,
                residual_bits: out.report.residual.to_bits(),
                norm2_bits: out.solution.norm2().to_bits(),
            });
        }
        entry.progress = entry.results.iter().flatten().count() as u64;
        let complete = entry.progress == spec.rhs_seeds.len() as u64;
        let digest =
            complete.then(|| DoneDigest::Solve(entry.results.iter().flatten().cloned().collect()));
        drop(jobs);
        if let Some(digest) = digest {
            write_done(&self.dir, &spec.name, &digest)?;
            self.finish(&unit.job);
        }
        Ok(())
    }

    fn finish(&self, name: &str) {
        {
            let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = jobs.get_mut(name) {
                entry.state = JobState::Done;
            }
        }
        qcd_metrics::counter("farm.jobs.completed").inc();
        qcd_metrics::record_event("farm.done", name, &[]);
    }

    /// Point-in-time views of every tracked job, name-sorted.
    pub fn job_views(&self) -> Vec<JobView> {
        let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.iter()
            .map(|(name, e)| JobView {
                name: name.clone(),
                kind: e.spec.kind_name(),
                state: e.state,
                priority: e.spec.priority(),
                progress: e.progress,
                target: e.spec.target(),
            })
            .collect()
    }

    /// Units waiting at each priority level, `[low, normal, high]`.
    pub fn queue_depths(&self) -> [usize; 3] {
        self.queue.depths()
    }

    /// `(workers, busy_ns, wall_ns, units, preemptions)` for the status
    /// surface. Utilization = `busy / (workers × wall)`.
    pub fn worker_stats(&self) -> (u64, u64, u64, u64, u64) {
        let wall = self
            .run_started
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map(|t| t.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        (
            self.workers.load(Ordering::SeqCst),
            self.busy_ns.load(Ordering::SeqCst),
            wall,
            self.units_done.load(Ordering::SeqCst),
            self.preemptions.load(Ordering::SeqCst),
        )
    }

    /// True when every tracked job reached [`JobState::Done`].
    pub fn all_done(&self) -> bool {
        let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.values().all(|e| e.state == JobState::Done)
    }
}

/// Byte-compare the durable results (`*.chain.qio`, `*.done.qio`) of two
/// farm directories — the recovery acceptance check. Container writes are
/// deterministic, so equal state means equal bytes; any difference, extra
/// file, or missing file is reported.
pub fn verify_dirs(a: &Path, b: &Path) -> Result<(), String> {
    let list = |dir: &Path| -> Result<Vec<String>, String> {
        let mut names = Vec::new();
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".chain.qio") || name.ends_with(".done.qio") {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    };
    let (names_a, names_b) = (list(a)?, list(b)?);
    if names_a != names_b {
        return Err(format!(
            "result sets differ: {} has {names_a:?}, {} has {names_b:?}",
            a.display(),
            b.display()
        ));
    }
    for name in &names_a {
        let read = |dir: &Path| {
            std::fs::read(dir.join(name))
                .map_err(|e| format!("read {name} in {}: {e}", dir.display()))
        };
        if read(a)? != read(b)? {
            return Err(format!("`{name}` differs between the two runs"));
        }
    }
    Ok(())
}
