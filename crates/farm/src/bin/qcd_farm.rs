//! `qcd_farm` — run the job farm as a service process.
//!
//! The binary wraps [`qcd_farm::Farm`] behind flags. A fresh start submits
//! the requested job mix; a restart on an existing `--dir` submits nothing
//! new for names that already exist and instead resumes them from their
//! checkpoints (the crash-recovery path CI exercises with `kill -9`).
//!
//! ```text
//! qcd_farm --dir farm-state [--workers 2] [--l 4] [--vl 256]
//!          [--seed 1] [--hmc-streams 2] [--traj 4] [--chunk 1]
//!          [--beta 5.6] [--steps 6] [--solves 8] [--tol 1e-6]
//!          [--max-units N] [--stop-file PATH] [--http ADDR]
//!          [--status-json PATH|-] [--metrics PATH]
//! qcd_farm --bench PATH [--l 4] [--vl 256] [--bench-iters 4]
//! qcd_farm --dir A --verify-against B
//! ```
//!
//! * `--stop-file PATH` — a poller thread watches for the file and raises
//!   a graceful stop (checkpoint at the next trajectory boundary).
//! * `--http ADDR` — serve the validated `qcd-farm/v1` status document on
//!   `GET /status` while the farm runs.
//! * `--status-json PATH` — write the final validated status document
//!   (`-` for stdout).
//! * `--metrics PATH` — dump the validated `qcd-metrics/v1` JSONL
//!   (counters, histograms, flight-recorder ring with the `farm.*` events).
//! * `--bench PATH` — run the coalescing/worker benchmark, enforce the
//!   RHS-throughput gate, and write the validated `qcd-bench-farm/v1`
//!   document instead of running a service.
//! * `--verify-against B` — byte-compare durable results of `--dir`
//!   against farm directory `B` and exit non-zero on any difference.

use grid::prelude::*;
use qcd_farm::{
    bench, render_validated_status, verify_dirs, Farm, FarmConfig, HmcStreamSpec, JobSpec,
    Priority, SolveSpec,
};
use qcd_hmc::{HmcParams, IntegratorKind};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

struct Args {
    dir: PathBuf,
    workers: usize,
    l: usize,
    vl: usize,
    seed: u64,
    hmc_streams: usize,
    traj: u64,
    chunk: u64,
    beta: f64,
    steps: usize,
    solves: usize,
    tol: f64,
    max_units: Option<u64>,
    stop_file: Option<PathBuf>,
    http: Option<String>,
    status_json: Option<String>,
    metrics: Option<String>,
    bench: Option<String>,
    bench_iters: usize,
    verify_against: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            dir: PathBuf::from("farm-state"),
            workers: 2,
            l: 4,
            vl: 256,
            seed: 1,
            hmc_streams: 2,
            traj: 4,
            chunk: 1,
            beta: 5.6,
            steps: 6,
            solves: 8,
            tol: 1e-6,
            max_units: None,
            stop_file: None,
            http: None,
            status_json: None,
            metrics: None,
            bench: None,
            bench_iters: 4,
            verify_against: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{flag} needs a {what}"))
        };
        match flag.as_str() {
            "--dir" => out.dir = PathBuf::from(value("path")?),
            "--workers" => out.workers = value("count")?.parse().map_err(|e| format!("{e}"))?,
            "--l" => out.l = value("extent")?.parse().map_err(|e| format!("{e}"))?,
            "--vl" => out.vl = value("bits")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => out.seed = value("seed")?.parse().map_err(|e| format!("{e}"))?,
            "--hmc-streams" => {
                out.hmc_streams = value("count")?.parse().map_err(|e| format!("{e}"))?
            }
            "--traj" => out.traj = value("count")?.parse().map_err(|e| format!("{e}"))?,
            "--chunk" => out.chunk = value("count")?.parse().map_err(|e| format!("{e}"))?,
            "--beta" => out.beta = value("beta")?.parse().map_err(|e| format!("{e}"))?,
            "--steps" => out.steps = value("count")?.parse().map_err(|e| format!("{e}"))?,
            "--solves" => out.solves = value("count")?.parse().map_err(|e| format!("{e}"))?,
            "--tol" => out.tol = value("tolerance")?.parse().map_err(|e| format!("{e}"))?,
            "--max-units" => {
                out.max_units = Some(value("count")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--stop-file" => out.stop_file = Some(PathBuf::from(value("path")?)),
            "--http" => out.http = Some(value("address")?.clone()),
            "--status-json" => out.status_json = Some(value("path")?.clone()),
            "--metrics" => out.metrics = Some(value("path")?.clone()),
            "--bench" => out.bench = Some(value("path")?.clone()),
            "--bench-iters" => {
                out.bench_iters = value("count")?.parse().map_err(|e| format!("{e}"))?
            }
            "--verify-against" => out.verify_against = Some(PathBuf::from(value("path")?)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(out)
}

fn fail(msg: &str) -> ! {
    eprintln!("qcd_farm: {msg}");
    std::process::exit(1);
}

/// Submit the requested job mix, skipping names the directory already
/// holds (the restart path: those jobs were recovered by `Farm::open`).
fn submit_mix(farm: &Farm, args: &Args) {
    let existing: Vec<String> = farm.job_views().into_iter().map(|j| j.name).collect();
    for s in 0..args.hmc_streams {
        let name = format!("stream-{s}");
        if existing.contains(&name) {
            continue;
        }
        let spec = JobSpec::Hmc(HmcStreamSpec {
            name,
            priority: Priority::Low,
            seed: args.seed + s as u64,
            params: HmcParams {
                beta: args.beta,
                n_steps: args.steps,
                step_size: 0.5 / args.steps as f64,
                integrator: IntegratorKind::Omelyan,
            },
            trajectories: args.traj,
            chunk: args.chunk,
        });
        if let Err(e) = farm.submit(spec) {
            fail(&format!("submit stream-{s}: {e}"));
        }
    }
    if args.solves > 0 && !existing.contains(&"burst-0".to_string()) {
        let spec = JobSpec::Solve(SolveSpec {
            name: "burst-0".into(),
            priority: Priority::High,
            gauge_seed: args.seed + 1000,
            mass: 0.2,
            rhs_seeds: (0..args.solves as u64)
                .map(|i| args.seed + 2000 + i)
                .collect(),
            tol: args.tol,
            max_iter: 4000,
            subspace: None,
        });
        if let Err(e) = farm.submit(spec) {
            fail(&format!("submit burst-0: {e}"));
        }
    }
}

/// Serve `GET /status` (any request path gets the status document) until
/// `done` is raised. Minimal single-threaded HTTP/1.1, std only.
fn serve_status(addr: &str, farm: &Farm, done: &AtomicBool) {
    let listener = match std::net::TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("qcd_farm: bind {addr}: {e}");
            return;
        }
    };
    listener.set_nonblocking(true).ok();
    println!("status endpoint on http://{addr}/status");
    while !done.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream.set_nonblocking(false).ok();
                stream
                    .set_read_timeout(Some(Duration::from_millis(200)))
                    .ok();
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
                let (code, body) = match render_validated_status(farm) {
                    Ok(doc) => ("200 OK", doc),
                    Err(e) => ("500 Internal Server Error", format!("{{\"error\":{e:?}}}")),
                };
                let _ = write!(
                    stream,
                    "HTTP/1.1 {code}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("qcd_farm: accept: {e}");
                return;
            }
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("qcd_farm: {e}");
            std::process::exit(2);
        }
    };
    // Deliberately no span observer here: the flight ring is bounded, and
    // a service run emits enough span closes to evict the farm.* events
    // (recovery, scheduling, batching) that a postmortem dump is for. The
    // solver/HMC smoke binaries cover span-level profiling.
    let cfg = FarmConfig {
        dims: [args.l; 4],
        vl_bits: args.vl,
        backend: SimdBackend::Fcmla,
    };

    if let Some(path) = &args.bench {
        let scratch = std::env::temp_dir().join(format!("qcd-farm-bench-{}", std::process::id()));
        let b = match bench::run_farm_bench(&cfg, 16, args.bench_iters, &[1, 2], &scratch) {
            Ok(b) => b,
            Err(e) => fail(&e),
        };
        std::fs::remove_dir_all(&scratch).ok();
        println!(
            "FARM BENCHMARK — request coalescing and worker scaling\n\
             lattice {:?}, VL{} {}, {} probe iterations, {} requests\n",
            b.dims, b.vl_bits, b.backend, b.probe_iters, b.requests
        );
        println!(
            "{:<6} {:>16} {:>14} {:>16}",
            "nrhs", "bytes/RHS", "model speedup", "RHS-iters/s"
        );
        for leg in &b.coalesce {
            println!(
                "{:<6} {:>16.0} {:>13.2}x {:>16.0}",
                leg.nrhs, leg.bytes_per_rhs, leg.model_speedup, leg.rhs_per_sec
            );
        }
        println!(
            "\n{:<9} {:>12} {:>8} {:>12}",
            "workers", "wall ms", "units", "units/s"
        );
        for leg in &b.workers {
            println!(
                "{:<9} {:>12.1} {:>8} {:>12.2}",
                leg.workers,
                leg.wall_ns as f64 / 1e6,
                leg.units,
                leg.units_per_sec
            );
        }
        if let Err(e) = bench::check_coalescing(&b) {
            fail(&e);
        }
        println!(
            "\ncoalescing gain at N=16: {:.2}x (target {:.1}x) — PASS",
            b.coalesce_gain,
            bench::COALESCE_TARGET
        );
        if let Err(e) = bench::write_validated_bench_json(&b, path) {
            fail(&e);
        }
        println!(
            "wrote validated {} document to {path}",
            bench::FARM_BENCH_SCHEMA
        );
        return;
    }

    if let Some(other) = &args.verify_against {
        match verify_dirs(&args.dir, other) {
            Ok(()) => {
                println!(
                    "{} and {} hold byte-identical results",
                    args.dir.display(),
                    other.display()
                );
                return;
            }
            Err(e) => fail(&e),
        }
    }

    let farm = match Farm::open(&args.dir, cfg) {
        Ok(f) => f,
        Err(e) => fail(&format!("open {}: {e}", args.dir.display())),
    };
    submit_mix(&farm, &args);
    println!(
        "farm `{}`: {} jobs, {} workers",
        args.dir.display(),
        farm.job_views().len(),
        args.workers
    );

    let stop = AtomicBool::new(false);
    let done = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        if let Some(path) = &args.stop_file {
            scope.spawn(|| {
                while !done.load(Ordering::SeqCst) {
                    if path.exists() {
                        println!("stop file {} seen; draining at checkpoints", path.display());
                        farm.request_stop(&stop);
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            });
        }
        if let Some(addr) = &args.http {
            scope.spawn(|| serve_status(addr, &farm, &done));
        }
        let report = farm.run(args.workers, &stop, args.max_units);
        done.store(true, Ordering::SeqCst);
        report
    });
    let report = match report {
        Ok(r) => r,
        Err(e) => fail(&format!("run: {e}")),
    };

    for job in farm.job_views() {
        println!(
            "  {:<16} {:<10} {:<8} {:>4}/{}",
            job.name,
            job.kind,
            job.state.name(),
            job.progress,
            job.target
        );
    }
    println!(
        "{} unit(s), {} preemption(s){}",
        report.units,
        report.preemptions,
        if report.stopped {
            ", stopped early (checkpointed)"
        } else {
            ""
        }
    );

    match render_validated_status(&farm) {
        Ok(doc) => match args.status_json.as_deref() {
            Some("-") => println!("{doc}"),
            Some(path) => {
                if let Err(e) = std::fs::write(path, &doc) {
                    fail(&format!("write {path}: {e}"));
                }
                println!(
                    "wrote validated {} status to {path}",
                    qcd_farm::STATUS_SCHEMA
                );
            }
            None => {}
        },
        Err(e) => fail(&format!("status document: {e}")),
    }

    if let Some(path) = &args.metrics {
        let doc = qcd_metrics::dump_all_jsonl();
        if let Err(e) = qcd_metrics::validate_jsonl(&doc) {
            fail(&format!("metrics dump failed validation: {e}"));
        }
        if let Err(e) = std::fs::write(path, &doc) {
            fail(&format!("write {path}: {e}"));
        }
        println!(
            "wrote validated {} metrics dump to {path}",
            qcd_metrics::SCHEMA
        );
    }
}
