//! The flight recorder: a bounded ring of structured events for postmortem.
//!
//! Long runs append events (span closes, solver health events, `qcd-io`
//! faults, checkpoint writes, HMC accept/reject) into a fixed-capacity ring;
//! when something goes wrong the last [`FLIGHT_CAP`] events are dumped as
//! `qcd-metrics/v1` JSONL. Recording is a short critical section on a global
//! mutex guarded by an atomic enable flag, so disabled recording costs one
//! relaxed load.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use qcd_trace::{Json, SpanClose};

use crate::SCHEMA;

/// Capacity of the flight-recorder ring; older events are dropped first.
pub const FLIGHT_CAP: usize = 4096;

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightEvent {
    /// Monotonic sequence number (never reset by ring eviction, so gaps
    /// reveal how much history was dropped).
    pub seq: u64,
    /// Microseconds since the recorder first started.
    pub t_us: u64,
    /// Event class: `span`, `health`, `io.error`, `checkpoint.write`,
    /// `hmc.trajectory`, `sampler.frame`, ...
    pub kind: String,
    /// Event-specific label (region path, error variant, accept/reject...).
    pub label: String,
    /// Numeric payload as name/value pairs.
    pub data: Vec<(String, f64)>,
}

struct Ring {
    events: VecDeque<FlightEvent>,
    next_seq: u64,
    dropped: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            events: VecDeque::with_capacity(FLIGHT_CAP),
            next_seq: 0,
            dropped: 0,
        })
    })
}

static ENABLED: AtomicBool = AtomicBool::new(true);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Turn the recorder on or off (on by default). The bench overhead probe
/// measures the enabled/disabled wall-time ratio through this switch.
pub fn set_flight_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the recorder currently accepts events.
pub fn flight_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Append one event to the ring (dropped silently while disabled).
pub fn record_event(kind: &str, label: &str, data: &[(&str, f64)]) {
    if !flight_enabled() {
        return;
    }
    let t_us = epoch().elapsed().as_micros() as u64;
    let mut ring = ring().lock().unwrap();
    let seq = ring.next_seq;
    ring.next_seq += 1;
    if ring.events.len() == FLIGHT_CAP {
        ring.events.pop_front();
        ring.dropped += 1;
    }
    ring.events.push_back(FlightEvent {
        seq,
        t_us,
        kind: kind.to_string(),
        label: label.to_string(),
        data: data.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
    });
}

/// Copy the retained events, oldest first.
pub fn flight_snapshot() -> Vec<FlightEvent> {
    ring().lock().unwrap().events.iter().cloned().collect()
}

/// Number of events evicted from the ring so far.
pub fn flight_dropped() -> u64 {
    ring().lock().unwrap().dropped
}

/// Clear the ring and its counters.
pub fn flight_reset() {
    let mut ring = ring().lock().unwrap();
    ring.events.clear();
    ring.next_seq = 0;
    ring.dropped = 0;
}

/// Render the retained events as `qcd-metrics/v1` JSONL, one event per line.
pub fn flight_dump_jsonl() -> String {
    let mut out = String::new();
    for ev in flight_snapshot() {
        let data: Vec<(String, Json)> = ev
            .data
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v)))
            .collect();
        let line = Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("type".into(), Json::Str("flight".into())),
            ("seq".into(), Json::Num(ev.seq as f64)),
            ("t_us".into(), Json::Num(ev.t_us as f64)),
            ("kind".into(), Json::Str(ev.kind.clone())),
            ("label".into(), Json::Str(ev.label.clone())),
            ("data".into(), Json::Obj(data)),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    out
}

/// Install the `qcd-trace` span observer: every span close becomes a
/// `span` flight event and feeds the `span.<leaf>` wall-time histogram
/// (per-iteration `iter` spans thus yield iteration-latency percentiles).
/// Idempotent.
pub fn install_span_observer() {
    qcd_trace::set_span_observer(Some(Arc::new(|close: &SpanClose| {
        if !flight_enabled() {
            return;
        }
        let leaf = close.path.rsplit('/').next().unwrap_or(&close.path);
        crate::histogram(&format!("span.{leaf}")).record(close.wall_ns);
        record_event(
            "span",
            &close.path,
            &[("wall_ns", close.wall_ns as f64), ("tid", close.tid as f64)],
        );
    })));
}

/// Remove the span observer installed by [`install_span_observer`].
pub fn uninstall_span_observer() {
    qcd_trace::set_span_observer(None);
}

/// Serialize tests (and tools) that assert on the global ring, registry, or
/// observer. Poisoning is ignored: a panicking test must not cascade.
pub fn global_test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
