//! Time-series sampling: periodic snapshots of the metric registry taken at
//! explicit ticks (per solver iteration, per HMC trajectory), rendered into
//! the same `qcd-metrics/v1` JSONL stream as everything else.
//!
//! Ticks are logical, not wall-clock, so sampled series are deterministic
//! and replayable in tests.

use qcd_trace::Json;

use crate::metrics::{metrics_snapshot, MetricsSnapshot};
use crate::recorder::record_event;
use crate::SCHEMA;

/// One captured frame: the tick index it was taken at plus the registry
/// contents at that moment.
#[derive(Clone, Debug)]
pub struct SampleFrame {
    /// Tick count at capture time (1-based: the first tick is 1).
    pub tick: usize,
    /// Registry contents at capture time.
    pub snapshot: MetricsSnapshot,
}

/// Periodic metric sampler. Call [`Sampler::tick`] once per unit of work;
/// every `every` ticks it captures a frame and logs a `sampler.frame`
/// flight event.
pub struct Sampler {
    every: usize,
    ticks: usize,
    frames: Vec<SampleFrame>,
}

impl Sampler {
    /// Sample every `every` ticks.
    pub fn new(every: usize) -> Self {
        assert!(every > 0, "sampler cadence must be positive");
        Sampler {
            every,
            ticks: 0,
            frames: Vec::new(),
        }
    }

    /// Advance one tick, capturing a frame when the cadence comes due.
    pub fn tick(&mut self) {
        self.ticks += 1;
        if self.ticks.is_multiple_of(self.every) {
            self.frames.push(SampleFrame {
                tick: self.ticks,
                snapshot: metrics_snapshot(),
            });
            record_event("sampler.frame", "tick", &[("tick", self.ticks as f64)]);
        }
    }

    /// Ticks observed so far.
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// Frames captured so far.
    pub fn frames(&self) -> &[SampleFrame] {
        &self.frames
    }

    /// Render every frame as `qcd-metrics/v1` JSONL: one `sample` line per
    /// frame, with counters/gauges flattened and histograms reduced to
    /// count/sum/percentiles.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for frame in &self.frames {
            let counters: Vec<(String, Json)> = frame
                .snapshot
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect();
            let gauges: Vec<(String, Json)> = frame
                .snapshot
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect();
            let histograms: Vec<(String, Json)> = frame
                .snapshot
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::Num(h.count as f64)),
                            ("sum".into(), Json::Num(h.sum as f64)),
                            (
                                "p50".into(),
                                h.percentile(0.50)
                                    .map_or(Json::Null, |v| Json::Num(v as f64)),
                            ),
                            (
                                "p90".into(),
                                h.percentile(0.90)
                                    .map_or(Json::Null, |v| Json::Num(v as f64)),
                            ),
                            (
                                "p99".into(),
                                h.percentile(0.99)
                                    .map_or(Json::Null, |v| Json::Num(v as f64)),
                            ),
                        ]),
                    )
                })
                .collect();
            let line = Json::Obj(vec![
                ("schema".into(), Json::Str(SCHEMA.into())),
                ("type".into(), Json::Str("sample".into())),
                ("tick".into(), Json::Num(frame.tick as f64)),
                ("counters".into(), Json::Obj(counters)),
                ("gauges".into(), Json::Obj(gauges)),
                ("histograms".into(), Json::Obj(histograms)),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
        out
    }
}
