//! `qcd-metrics`: stateful observability for the lattice QCD stack.
//!
//! `qcd-trace` (PR 1) answers *where did the time and instructions go* per
//! region. This crate layers the stateful questions on top:
//!
//! * **Metrics** ([`metrics`]): global counters, gauges, and deterministic
//!   log2-bucket histograms with p50/p90/p99, snapshot/reset like the span
//!   registry.
//! * **Health** ([`health`]): a [`HealthMonitor`] consuming per-iteration
//!   relative residuals live, emitting typed [`HealthEvent`]s for stalls,
//!   divergence, and NaN/Inf — surfaced in `SolveReport.health` by the
//!   solvers in `grid`.
//! * **Flight recorder** ([`recorder`]): a bounded ring of structured
//!   events (span closes, health events, `qcd-io` faults, checkpoint
//!   writes, HMC accept/reject) dumped as JSONL for postmortem.
//! * **Sampler** ([`sampler`]): periodic metric snapshots over logical
//!   ticks, for time series across long solves and HMC chains.
//!
//! Everything exports in one line-oriented schema, `qcd-metrics/v1`
//! ([`SCHEMA`]): each line is a self-describing JSON object whose `type`
//! field is one of `counter`, `gauge`, `histogram`, `flight`, or `sample`.
//! The exact layouts are documented in DESIGN.md §11. [`validate_jsonl`]
//! parses a dump back and checks the schema tags — the write paths use it
//! before anything touches disk, mirroring the `qcd-trace` exporters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod health;
pub mod metrics;
pub mod recorder;
pub mod sampler;

pub use health::{
    HealthEvent, HealthEventKind, HealthMonitor, DEFAULT_DIVERGENCE_FACTOR, DEFAULT_STALL_WINDOW,
};
pub use metrics::{
    bucket_index, bucket_upper, counter, gauge, histogram, metrics_reset, metrics_snapshot,
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use recorder::{
    flight_dropped, flight_dump_jsonl, flight_enabled, flight_reset, flight_snapshot,
    global_test_lock, install_span_observer, record_event, set_flight_enabled,
    uninstall_span_observer, FlightEvent, FLIGHT_CAP,
};
pub use sampler::{SampleFrame, Sampler};

use qcd_trace::Json;

/// Schema tag carried by every JSONL line this crate emits.
pub const SCHEMA: &str = "qcd-metrics/v1";

/// Render the full observable state — every registered metric followed by
/// the retained flight events — as one `qcd-metrics/v1` JSONL document.
pub fn dump_all_jsonl() -> String {
    let mut out = metrics_snapshot().to_json_lines();
    out.push_str(&flight_dump_jsonl());
    out
}

/// Check that every line of `text` parses as JSON and carries the
/// `qcd-metrics/v1` schema tag plus a known `type`. Returns the number of
/// lines on success.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in text.lines().enumerate() {
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            other => return Err(format!("line {}: bad schema tag {other:?}", i + 1)),
        }
        match doc.get("type").and_then(Json::as_str) {
            Some("counter" | "gauge" | "histogram" | "flight" | "sample") => {}
            other => return Err(format!("line {}: unknown type {other:?}", i + 1)),
        }
        n += 1;
    }
    Ok(n)
}

/// Finish a solve's health bookkeeping in one call: cap the reported
/// residual history with [`bound_history`] (keeping every health-flagged
/// iteration), feed the `<region>.iterations` histogram and the global
/// `solver.solves` counter, and drain the monitor into its typed event
/// list. Every solver in `grid` — and the deflated solvers in
/// `qcd-deflate` — conclude through here, so solve-level metrics stay
/// uniform across subsystems. The monitor must have observed every entry
/// of `history` (restored prefix replayed, new entries live), so a resumed
/// solve reports exactly what the uninterrupted one would.
pub fn conclude_solver_health(
    region: &str,
    monitor: HealthMonitor,
    history: &[f64],
    iterations: usize,
    cap: usize,
) -> (Vec<f64>, Vec<HealthEvent>) {
    let (capped, _kept) = bound_history(history, &monitor.flagged_iterations(), cap);
    histogram(&format!("{region}.iterations")).record(iterations as u64);
    counter("solver.solves").inc();
    (capped, monitor.into_events())
}

/// Cap a solver residual history for reporting: keep the first and last
/// entries and every `flagged` index (health events), then fill the rest by
/// uniform striding, doubling the stride until the result fits `cap`. The
/// checkpointed history is never capped — only the copy surfaced in
/// `SolveReport.history` — so resume stays bit-identical.
///
/// Returns `(kept_values, kept_indices)`; indices refer to the original
/// history.
pub fn bound_history(history: &[f64], flagged: &[usize], cap: usize) -> (Vec<f64>, Vec<usize>) {
    assert!(cap >= 2, "history cap must keep at least the endpoints");
    if history.len() <= cap {
        return (history.to_vec(), (0..history.len()).collect());
    }
    let last = history.len() - 1;
    let mut keep: Vec<usize> = Vec::new();
    let mut stride = 1usize;
    loop {
        stride *= 2;
        keep.clear();
        keep.push(0);
        keep.extend(flagged.iter().copied().filter(|&i| i <= last));
        keep.extend((0..=last).step_by(stride));
        keep.push(last);
        keep.sort_unstable();
        keep.dedup();
        if keep.len() <= cap {
            break;
        }
    }
    let values = keep.iter().map(|&i| history[i]).collect();
    (values, keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_histories_pass_through_unchanged() {
        let h: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let (v, idx) = bound_history(&h, &[], 512);
        assert_eq!(v, h);
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn capping_keeps_endpoints_and_flagged_entries() {
        let h: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        let flagged = [613, 1777];
        let (v, idx) = bound_history(&h, &flagged, 512);
        assert!(v.len() <= 512, "cap violated: {}", v.len());
        assert_eq!(idx.first(), Some(&0));
        assert_eq!(idx.last(), Some(&1999));
        for f in flagged {
            assert!(idx.contains(&f), "flagged index {f} was dropped");
        }
        for (&i, &val) in idx.iter().zip(v.iter()) {
            assert_eq!(val, h[i], "kept value must come from its index");
        }
        // Indices are strictly increasing — the kept history stays ordered.
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn validate_jsonl_accepts_own_output_and_rejects_garbage() {
        let good = format!(
            "{{\"schema\":\"{SCHEMA}\",\"type\":\"counter\",\"name\":\"x\",\"value\":1}}\n"
        );
        assert_eq!(validate_jsonl(&good), Ok(1));
        assert!(validate_jsonl("not json").is_err());
        assert!(validate_jsonl("{\"schema\":\"other/v1\",\"type\":\"counter\"}").is_err());
        assert!(validate_jsonl(&good.replace("counter", "mystery")).is_err());
    }
}
