//! Solver health monitoring: a small state machine over the per-iteration
//! relative-residual sequence.
//!
//! The monitor is a pure function of the residual history — replaying a
//! checkpointed history through a fresh monitor reproduces exactly the
//! events the uninterrupted solve would have reported, which is what keeps
//! `SolveReport.health` bit-stable across kill/resume.

use crate::recorder::record_event;

/// Default stall window: iterations without a new best relative residual
/// before a [`HealthEventKind::Stall`] fires. Chosen well above the
/// short-range non-monotonicity of CG/BiCGStab on the lattices in this
/// repository, so converging solves report no events.
pub const DEFAULT_STALL_WINDOW: usize = 25;

/// Default divergence factor: a relative residual this many times above the
/// best seen so far fires a [`HealthEventKind::Divergence`].
pub const DEFAULT_DIVERGENCE_FACTOR: f64 = 100.0;

/// What went wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthEventKind {
    /// No new best relative residual for a full window of iterations.
    Stall,
    /// The relative residual blew up far above the best seen so far.
    Divergence,
    /// A NaN or infinity reached the residual reduction.
    NonFinite,
}

impl HealthEventKind {
    /// Stable lowercase name used in JSONL dumps.
    pub fn name(self) -> &'static str {
        match self {
            HealthEventKind::Stall => "stall",
            HealthEventKind::Divergence => "divergence",
            HealthEventKind::NonFinite => "non_finite",
        }
    }
}

/// One detected health episode.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthEvent {
    /// Event class.
    pub kind: HealthEventKind,
    /// Iteration (index into the residual history) at which it fired.
    pub iteration: usize,
    /// Relative residual observed at that iteration.
    pub rel_residual: f64,
}

/// Streaming monitor over a relative-residual sequence. Feed it every
/// history entry in order via [`HealthMonitor::observe`]; episodes are
/// de-duplicated, so a 300-iteration stall yields one event, not 275.
pub struct HealthMonitor {
    label: String,
    stall_window: usize,
    divergence_factor: f64,
    best: f64,
    best_iteration: usize,
    iteration: usize,
    in_stall: bool,
    in_divergence: bool,
    in_non_finite: bool,
    events: Vec<HealthEvent>,
}

impl HealthMonitor {
    /// Monitor with the default thresholds. `label` names the solve in
    /// flight-recorder events (e.g. `solver.cg`, `solver.block_cg[3]`).
    pub fn new(label: &str) -> Self {
        Self::with_thresholds(label, DEFAULT_STALL_WINDOW, DEFAULT_DIVERGENCE_FACTOR)
    }

    /// Monitor with explicit thresholds.
    pub fn with_thresholds(label: &str, stall_window: usize, divergence_factor: f64) -> Self {
        assert!(stall_window > 0, "stall window must be positive");
        HealthMonitor {
            label: label.to_string(),
            stall_window,
            divergence_factor,
            best: f64::INFINITY,
            best_iteration: 0,
            iteration: 0,
            in_stall: false,
            in_divergence: false,
            in_non_finite: false,
            events: Vec::new(),
        }
    }

    /// Feed the next relative residual (history entry `iteration`).
    pub fn observe(&mut self, rel_residual: f64) {
        let iteration = self.iteration;
        self.iteration += 1;
        if !rel_residual.is_finite() {
            if !self.in_non_finite {
                self.in_non_finite = true;
                self.push(HealthEventKind::NonFinite, iteration, rel_residual);
            }
            return;
        }
        self.in_non_finite = false;
        if rel_residual < self.best {
            self.best = rel_residual;
            self.best_iteration = iteration;
            self.in_stall = false;
            self.in_divergence = false;
            return;
        }
        if rel_residual > self.divergence_factor * self.best && !self.in_divergence {
            self.in_divergence = true;
            self.push(HealthEventKind::Divergence, iteration, rel_residual);
        }
        if iteration - self.best_iteration >= self.stall_window && !self.in_stall {
            self.in_stall = true;
            self.push(HealthEventKind::Stall, iteration, rel_residual);
        }
    }

    fn push(&mut self, kind: HealthEventKind, iteration: usize, rel_residual: f64) {
        record_event(
            "health",
            &format!("{}:{}", self.label, kind.name()),
            &[
                ("iteration", iteration as f64),
                ("rel_residual", rel_residual),
            ],
        );
        crate::counter("health.events").inc();
        self.events.push(HealthEvent {
            kind,
            iteration,
            rel_residual,
        });
    }

    /// Feed a whole (checkpointed) history prefix in order.
    pub fn replay(&mut self, history: &[f64]) {
        for &rel in history {
            self.observe(rel);
        }
    }

    /// Events detected so far.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// Consume the monitor, returning its events.
    pub fn into_events(self) -> Vec<HealthEvent> {
        self.events
    }

    /// History indices that carry an event (for downsampling to preserve).
    pub fn flagged_iterations(&self) -> Vec<usize> {
        self.events.iter().map(|e| e.iteration).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events_of(history: &[f64]) -> Vec<HealthEvent> {
        let mut m = HealthMonitor::with_thresholds("test", 5, 100.0);
        m.replay(history);
        m.into_events()
    }

    #[test]
    fn a_converging_history_is_healthy() {
        let history: Vec<f64> = (0..40).map(|i| 1.0 / (1.5f64.powi(i))).collect();
        assert!(events_of(&history).is_empty());
    }

    #[test]
    fn a_plateau_fires_exactly_one_stall() {
        let mut history = vec![1.0, 0.5, 0.25];
        history.extend_from_slice(&[0.3; 20]);
        let events = events_of(&history);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, HealthEventKind::Stall);
        // Best was at index 2; window 5 → fires at index 7.
        assert_eq!(events[0].iteration, 7);
    }

    #[test]
    fn progress_after_a_stall_rearms_the_detector() {
        let mut history = vec![1.0];
        history.extend_from_slice(&[0.9; 6]); // stall #1
        history.push(0.1); // recovery
        history.extend_from_slice(&[0.09; 6]); // stall #2
        let events = events_of(&history);
        let stalls = events
            .iter()
            .filter(|e| e.kind == HealthEventKind::Stall)
            .count();
        assert_eq!(stalls, 2);
    }

    #[test]
    fn divergence_and_non_finite_are_typed() {
        let events = events_of(&[1.0, 0.5, 900.0, f64::NAN, f64::NAN]);
        assert_eq!(events[0].kind, HealthEventKind::Divergence);
        assert_eq!(events[0].iteration, 2);
        let nans: Vec<_> = events
            .iter()
            .filter(|e| e.kind == HealthEventKind::NonFinite)
            .collect();
        assert_eq!(nans.len(), 1, "consecutive NaNs dedupe to one event");
        assert_eq!(nans[0].iteration, 3);
    }

    #[test]
    fn replay_equals_streaming() {
        let history = [1.0, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.01, f64::INFINITY];
        let mut streamed = HealthMonitor::with_thresholds("s", 3, 10.0);
        for &r in &history {
            streamed.observe(r);
        }
        let mut replayed = HealthMonitor::with_thresholds("s", 3, 10.0);
        replayed.replay(&history);
        assert_eq!(streamed.events(), replayed.events());
    }
}
