//! Counters, gauges, and deterministic log2-bucket histograms, registered
//! in a process-global registry with snapshot/reset semantics mirroring the
//! `qcd-trace` span registry.
//!
//! Handles are cheap clones of `Arc<Atomic…>` cells, so the hot path of an
//! instrumented loop is a relaxed atomic add — no lock, no allocation. The
//! registry lock is taken only on first lookup of a name and on
//! snapshot/reset.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use qcd_trace::Json;

use crate::SCHEMA;

/// Number of log2 buckets: bucket `i` (for `i > 0`) holds values in
/// `[2^(i-1), 2^i - 1]`; bucket 0 holds the value 0. Values at or above
/// `2^62` saturate into the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge carrying an `f64` (stored as raw bits).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the gauge value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared histogram storage.
pub(crate) struct HistogramCells {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
        }
    }

    fn zero(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Bucket index for a recorded value: 0 for 0, otherwise the bit width of
/// the value, capped at the last bucket.
pub fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper boundary of a bucket — the value percentiles report, so
/// percentile estimates are deterministic and never under-state a latency.
pub fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else {
        (1u64 << idx) - 1
    }
}

/// A log2-bucket histogram of non-negative integer observations (typically
/// nanoseconds or iteration counts).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Record one observation.
    pub fn record(&self, v: u64) {
        let cells = &self.0;
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(v, Ordering::Relaxed);
        cells.min.fetch_min(v, Ordering::Relaxed);
        cells.max.fetch_max(v, Ordering::Relaxed);
        cells.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

/// One registered metric cell.
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Get or create the counter named `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry().lock().unwrap();
    let metric = reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))));
    match metric {
        Metric::Counter(c) => c.clone(),
        other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
    }
}

/// Get or create the gauge named `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry().lock().unwrap();
    let metric = reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))));
    match metric {
        Metric::Gauge(g) => g.clone(),
        other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
    }
}

/// Get or create the histogram named `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> Histogram {
    let mut reg = registry().lock().unwrap();
    let metric = reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Histogram(Arc::new(HistogramCells::new()))));
    match metric {
        Metric::Histogram(h) => h.clone(),
        other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty buckets as `(index, count)` pairs, index order.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Deterministic percentile estimate: the upper boundary of the first
    /// bucket whose cumulative count reaches `q * count` (q in 0..=1).
    /// `None` when the histogram is empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // Never report past the true extremes.
                return Some(bucket_upper(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

/// Point-in-time copy of the whole metric registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Render as `qcd-metrics/v1` JSON lines: one self-describing object per
    /// metric. Histogram lines carry the non-empty buckets and the
    /// deterministic p50/p90/p99 estimates.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&metric_line(
                name,
                "counter",
                vec![("value".into(), Json::Num(*v as f64))],
            ));
        }
        for (name, v) in &self.gauges {
            out.push_str(&metric_line(
                name,
                "gauge",
                vec![("value".into(), Json::Num(*v))],
            ));
        }
        for (name, h) in &self.histograms {
            let buckets: Vec<Json> = h
                .buckets
                .iter()
                .map(|&(idx, n)| {
                    Json::Obj(vec![
                        ("le".into(), Json::Num(bucket_upper(idx) as f64)),
                        ("count".into(), Json::Num(n as f64)),
                    ])
                })
                .collect();
            let min = if h.count == 0 { 0 } else { h.min };
            out.push_str(&metric_line(
                name,
                "histogram",
                vec![
                    ("count".into(), Json::Num(h.count as f64)),
                    ("sum".into(), Json::Num(h.sum as f64)),
                    ("min".into(), Json::Num(min as f64)),
                    ("max".into(), Json::Num(h.max as f64)),
                    ("p50".into(), percentile_json(h, 0.50)),
                    ("p90".into(), percentile_json(h, 0.90)),
                    ("p99".into(), percentile_json(h, 0.99)),
                    ("buckets".into(), Json::Arr(buckets)),
                ],
            ));
        }
        out
    }
}

fn percentile_json(h: &HistogramSnapshot, q: f64) -> Json {
    match h.percentile(q) {
        Some(v) => Json::Num(v as f64),
        None => Json::Null,
    }
}

fn metric_line(name: &str, kind: &str, rest: Vec<(String, Json)>) -> String {
    let mut members = vec![
        ("schema".to_string(), Json::Str(SCHEMA.into())),
        ("type".to_string(), Json::Str(kind.into())),
        ("name".to_string(), Json::Str(name.into())),
    ];
    members.extend(rest);
    let mut line = Json::Obj(members).render();
    line.push('\n');
    line
}

/// Copy every registered metric.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let reg = registry().lock().unwrap();
    let mut snap = MetricsSnapshot::default();
    for (name, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => {
                snap.counters.insert(name.clone(), c.get());
            }
            Metric::Gauge(g) => {
                snap.gauges.insert(name.clone(), g.get());
            }
            Metric::Histogram(h) => {
                let cells = &h.0;
                let buckets: Vec<(usize, u64)> = cells
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(idx, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n != 0).then_some((idx, n))
                    })
                    .collect();
                snap.histograms.insert(
                    name.clone(),
                    HistogramSnapshot {
                        count: cells.count.load(Ordering::Relaxed),
                        sum: cells.sum.load(Ordering::Relaxed),
                        min: cells.min.load(Ordering::Relaxed),
                        max: cells.max.load(Ordering::Relaxed),
                        buckets,
                    },
                );
            }
        }
    }
    snap
}

/// Zero every registered metric in place. Live handles stay valid — they
/// observe the reset, exactly like spans folding into a cleared registry.
pub fn metrics_reset() {
    let reg = registry().lock().unwrap();
    for metric in reg.values() {
        match metric {
            Metric::Counter(c) => c.0.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.0.store(0f64.to_bits(), Ordering::Relaxed),
            Metric::Histogram(h) => h.0.zero(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_partition_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for idx in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper(idx)), idx);
            assert_eq!(bucket_index(bucket_upper(idx) + 1), idx + 1);
        }
    }

    #[test]
    fn percentiles_are_deterministic_bucket_boundaries() {
        let h = Histogram(Arc::new(HistogramCells::new()));
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = metrics_snapshot_of(&h);
        // p50 of 1..=100 lands in the bucket holding 50 (i.e. [32,63]).
        assert_eq!(snap.percentile(0.50), Some(63));
        assert_eq!(snap.percentile(0.99), Some(100)); // clamped to max
        assert_eq!(snap.percentile(0.0), Some(1)); // clamped to min
    }

    fn metrics_snapshot_of(h: &Histogram) -> HistogramSnapshot {
        let cells = &h.0;
        HistogramSnapshot {
            count: cells.count.load(Ordering::Relaxed),
            sum: cells.sum.load(Ordering::Relaxed),
            min: cells.min.load(Ordering::Relaxed),
            max: cells.max.load(Ordering::Relaxed),
            buckets: cells
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(idx, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n != 0).then_some((idx, n))
                })
                .collect(),
        }
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        };
        assert_eq!(h.percentile(0.5), None);
    }
}
